"""Legacy shim so ``pip install -e .`` works offline (no `wheel` package
available in this environment, so the PEP 660 path cannot build).
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
