"""Legacy shim so ``python setup.py``-era tooling and offline
``pip install -e . --no-build-isolation`` keep working (the containerised
dev environment has no ``wheel`` package, so the PEP 660 editable path
cannot build there).  All real configuration — package metadata, the
``src`` layout, the ``numpy``/``scipy`` dependencies, the ``repro``
console script — lives in pyproject.toml; CI installs with a plain
``pip install -e .``.
"""

from setuptools import setup

setup()
