"""Tests for negative sampling (Section 3.2), curriculum schedule,
matching modules, and the evaluation protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.core import (
    CurriculumSchedule,
    NegativeSampler,
    SemanticNegativeSampler,
    UniformNegativeSampler,
    make_matcher,
)
from repro.core.negative_sampling import EvaluationProtocol, evaluation_features
from repro.graph import HeteroGraph, medical_schema
from repro.text import HashingNgramEmbedder, node_features_for_graph


@pytest.fixture
def kb():
    rng = np.random.default_rng(11)
    schema = medical_schema()
    g = HeteroGraph(schema)
    for t in schema.node_types:
        for i in range(8):
            g.add_node(t, f"{t.lower()} entity {i}")
    for _ in range(80):
        rel_id = int(rng.integers(0, schema.num_relations))
        rel = schema.relation(rel_id)
        s = int(rng.choice(g.nodes_of_type(rel.src_type)))
        d = int(rng.choice(g.nodes_of_type(rel.dst_type)))
        if s != d:
            g.add_edge(s, d, rel_id)
    g.set_features(node_features_for_graph(g, HashingNgramEmbedder(dim=128)))
    return g


class TestUniformSampler:
    def test_excludes_positive(self, kb):
        sampler = UniformNegativeSampler(kb, np.random.default_rng(0))
        for _ in range(20):
            negs = sampler.sample(3, 5)
            assert len(negs) == 5
            assert 3 not in negs

    def test_single_node_kb_rejected(self):
        g = HeteroGraph(medical_schema())
        g.add_node("Drug", "only")
        sampler = UniformNegativeSampler(g, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sampler.sample(0, 1)


class TestSemanticSampler:
    def test_pool_ranked_descending(self, kb):
        sampler = SemanticNegativeSampler(kb, kb.features, np.random.default_rng(0))
        pool = sampler.pool_for(0)
        assert np.all(np.diff(pool.scores) <= 1e-9)
        assert 0 not in pool.candidates

    def test_sample_draws_from_top(self, kb):
        sampler = SemanticNegativeSampler(kb, kb.features, np.random.default_rng(0), top_pool=5)
        pool_top = set(sampler.pool_for(0).candidates[:5].tolist())
        negs = sampler.sample(0, 3)
        assert all(int(n) in pool_top or int(n) != 0 for n in negs)

    def test_hardest_deterministic(self, kb):
        sampler = SemanticNegativeSampler(kb, kb.features, np.random.default_rng(0))
        np.testing.assert_array_equal(sampler.hardest(2, 3), sampler.hardest(2, 3))

    def test_same_type_only_filter(self, kb):
        sampler = SemanticNegativeSampler(
            kb, kb.features, np.random.default_rng(0), same_type_only=True
        )
        pool = sampler.pool_for(0)
        t = kb.node_type(0)
        assert all(kb.node_type(int(c)) == t for c in pool.candidates)

    def test_embedding_size_validated(self, kb):
        with pytest.raises(ValueError):
            SemanticNegativeSampler(kb, np.zeros((3, 8)), np.random.default_rng(0))


class TestCurriculum:
    def test_epoch_zero_is_pure_uniform(self):
        schedule = CurriculumSchedule(max_hard_fraction=0.8, warmup_epochs=10)
        assert schedule.hard_fraction(0) == 0.0

    def test_ramps_to_max(self):
        schedule = CurriculumSchedule(max_hard_fraction=0.8, warmup_epochs=10)
        assert schedule.hard_fraction(5) == pytest.approx(0.4)
        assert schedule.hard_fraction(10) == pytest.approx(0.8)
        assert schedule.hard_fraction(100) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            CurriculumSchedule(max_hard_fraction=1.5)
        with pytest.raises(ValueError):
            CurriculumSchedule(warmup_epochs=0)

    def test_negative_sampler_mixes(self, kb):
        sampler = NegativeSampler(
            kb,
            np.random.default_rng(0),
            initial_embeddings=kb.features,
            use_hard_negatives=True,
        )
        early = sampler.sample(0, 10, epoch=0)
        late = sampler.sample(0, 10, epoch=50)
        assert len(early) == len(late) == 10
        assert 0 not in early and 0 not in late

    def test_hard_negatives_require_embeddings(self, kb):
        with pytest.raises(ValueError):
            NegativeSampler(kb, np.random.default_rng(0), use_hard_negatives=True)


class TestEvaluationProtocol:
    def test_deterministic_across_instances(self, kb):
        a = EvaluationProtocol(kb, 2, seed=7)
        b = EvaluationProtocol(kb, 2, seed=7)
        golds = [0, 5, 9, 0]
        negs_a = [a.negatives(g).tolist() for g in golds]
        negs_b = [b.negatives(g).tolist() for g in golds]
        assert negs_a == negs_b

    def test_different_seeds_differ(self, kb):
        a = EvaluationProtocol(kb, 2, seed=7)
        b = EvaluationProtocol(kb, 2, seed=8)
        golds = list(range(10))
        negs_a = [a.negatives(g).tolist() for g in golds]
        negs_b = [b.negatives(g).tolist() for g in golds]
        assert negs_a != negs_b

    def test_evaluation_features_cached(self, kb):
        f1 = evaluation_features(kb)
        f2 = evaluation_features(kb)
        assert f1 is f2
        assert f1.shape == (kb.num_nodes, 128)


class TestMatchers:
    @pytest.mark.parametrize("name", ["dot", "mlp", "bilinear"])
    def test_shapes_and_gradients(self, name):
        rng = np.random.default_rng(0)
        matcher = make_matcher(name, 8, rng)
        a = Tensor(rng.standard_normal((5, 8)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((5, 8)).astype(np.float32), requires_grad=True)
        out = matcher(a, b)
        assert out.shape == (5,)
        out.sum().backward()
        assert a.grad is not None and b.grad is not None

    def test_unknown_matcher_rejected(self):
        with pytest.raises(ValueError):
            make_matcher("nope", 8, np.random.default_rng(0))

    def test_dot_matcher_monotone_in_similarity(self):
        rng = np.random.default_rng(0)
        matcher = make_matcher("dot", 4, rng)
        v = np.array([[1.0, 0, 0, 0]], dtype=np.float32)
        same = matcher(Tensor(v), Tensor(v)).item()
        opposite = matcher(Tensor(v), Tensor(-v)).item()
        assert same > opposite


_PROPERTY_KB = {}


def _property_kb():
    if "kb" not in _PROPERTY_KB:
        rng = np.random.default_rng(11)
        schema = medical_schema()
        g = HeteroGraph(schema)
        for t in schema.node_types:
            for i in range(5):
                g.add_node(t, f"{t} e{i}")
        for _ in range(30):
            rel_id = int(rng.integers(0, schema.num_relations))
            rel = schema.relation(rel_id)
            s = int(rng.choice(g.nodes_of_type(rel.src_type)))
            d = int(rng.choice(g.nodes_of_type(rel.dst_type)))
            if s != d:
                g.add_edge(s, d, rel_id)
        g.set_features(node_features_for_graph(g, HashingNgramEmbedder(dim=32)))
        _PROPERTY_KB["kb"] = g
    return _PROPERTY_KB["kb"]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16), k=st.integers(1, 6))
def test_property_negatives_never_contain_gold(seed, k):
    kb = _property_kb()
    sampler = SemanticNegativeSampler(kb, kb.features, np.random.default_rng(seed))
    gold = seed % kb.num_nodes
    negs = sampler.sample(gold, k)
    assert gold not in negs
    assert len(negs) == k
