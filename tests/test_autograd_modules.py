"""Tests for Module containers, layers, RNNs, optimisers, serialisation."""

import os

import numpy as np
import pytest

from repro.autograd import (
    GRU,
    MLP,
    SGD,
    Adam,
    Bilinear,
    Dropout,
    Embedding,
    GRUCell,
    LayerNorm,
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    SequenceEncoder,
    Sequential,
    Tensor,
    check_gradients,
    clip_grad_norm,
    functional as F,
    load_state,
    save_state,
    state_allclose,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestModuleTraversal:
    def test_named_parameters_nested(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(2, 3, rng)
                self.stack = ModuleList([Linear(3, 3, rng), Linear(3, 1, rng)])
                self.by_name = ModuleDict({"a": Linear(1, 1, rng)})
                self.free = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)

        net = Net()
        names = dict(net.named_parameters())
        assert "lin.weight" in names
        assert "stack.items.0.weight" in names
        assert "by_name.items.a.bias" in names
        assert "free" in names
        assert net.num_parameters() == sum(p.size for p in net.parameters())

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self, rng):
        a = MLP(4, [8], 2, rng)
        b = MLP(4, [8], 2, np.random.default_rng(99))
        assert not state_allclose(a.state_dict(), b.state_dict())
        b.load_state_dict(a.state_dict())
        assert state_allclose(a.state_dict(), b.state_dict())

    def test_load_state_dict_rejects_mismatch(self, rng):
        a = Linear(2, 3, rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"nope": np.zeros(1)})

    def test_load_state_dict_rejects_bad_shape(self, rng):
        a = Linear(2, 3, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)


class TestLayers:
    def test_linear_shapes_and_grad(self, rng):
        lin = Linear(4, 3, rng)
        x = Tensor(rng.standard_normal((5, 4)).astype(np.float32))
        out = lin(x)
        assert out.shape == (5, 3)
        out.sum().backward()
        assert lin.weight.grad is not None and lin.bias.grad is not None

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([1, 1, 9]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_mlp_hidden_structure(self, rng):
        mlp = MLP(4, [8, 8], 1, rng)
        out = mlp(Tensor(rng.standard_normal((2, 4)).astype(np.float32)))
        assert out.shape == (2, 1)

    def test_bilinear_score(self, rng):
        bil = Bilinear(3, 3, rng)
        a = Tensor(rng.standard_normal((5, 3)).astype(np.float32))
        b = Tensor(rng.standard_normal((5, 3)).astype(np.float32))
        assert bil(a, b).shape == (5,)

    def test_layernorm_normalizes(self, rng):
        ln = LayerNorm(16)
        x = Tensor(rng.standard_normal((4, 16)).astype(np.float32) * 10 + 5)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_eval_is_identity(self, rng):
        drop = Dropout(0.9, rng)
        drop.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_train_scales(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((1000,)), requires_grad=True)
        out = drop(x)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
        assert 300 < len(kept) < 700


class TestRNN:
    def test_gru_cell_shapes(self, rng):
        cell = GRUCell(4, 8, rng)
        h = cell(Tensor(np.zeros((2, 4), dtype=np.float32)), Tensor(np.zeros((2, 8), dtype=np.float32)))
        assert h.shape == (2, 8)

    def test_gru_sequence(self, rng):
        gru = GRU(4, 8, rng)
        x = Tensor(rng.standard_normal((3, 5, 4)).astype(np.float32))
        states, final = gru(x)
        assert states.shape == (3, 5, 8)
        assert final.shape == (3, 8)
        np.testing.assert_allclose(states.data[:, -1, :], final.data)

    def test_gru_gradients_flow(self, rng):
        gru = GRU(3, 4, rng)
        x = Tensor(rng.standard_normal((2, 4, 3)).astype(np.float32), requires_grad=True)
        _, final = gru(x)
        (final * final).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in gru.parameters())

    def test_sequence_encoder_pools(self, rng):
        enc = SequenceEncoder(4, 8, rng)
        out = enc(Tensor(rng.standard_normal((2, 6, 4)).astype(np.float32)))
        assert out.shape == (2, 8)


class TestOptimizers:
    def _quadratic_problem(self, optimizer_factory, steps=200):
        rng = np.random.default_rng(0)
        w = Tensor(rng.standard_normal(5), requires_grad=True, dtype=np.float64)
        target = np.arange(5, dtype=np.float64)
        opt = optimizer_factory([w])
        for _ in range(steps):
            opt.zero_grad()
            loss = ((w - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        return w.data, target

    def test_sgd_converges(self):
        w, target = self._quadratic_problem(lambda p: SGD(p, lr=0.05))
        np.testing.assert_allclose(w, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        w, target = self._quadratic_problem(lambda p: SGD(p, lr=0.02, momentum=0.9))
        np.testing.assert_allclose(w, target, atol=1e-3)

    def test_adam_converges(self):
        w, target = self._quadratic_problem(lambda p: Adam(p, lr=0.1))
        np.testing.assert_allclose(w, target, atol=1e-2)

    def test_weight_decay_shrinks_weights(self):
        w = Tensor(np.ones(3), requires_grad=True)
        opt = Adam([w], lr=0.01, weight_decay=10.0)
        for _ in range(50):
            opt.zero_grad()
            (w * Tensor(np.zeros(3))).sum().backward()
            opt.step()
        assert np.all(np.abs(w.data) < 1.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_clip_grad_norm(self):
        w = Tensor(np.ones(4), requires_grad=True)
        (w * 100.0).sum().backward()
        pre = clip_grad_norm([w], max_norm=1.0)
        assert pre == pytest.approx(200.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-5)

    def test_step_skips_none_grads(self, rng):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([a, b], lr=0.1)
        (a * 2).sum().backward()
        opt.step()
        np.testing.assert_allclose(b.data, 1.0)


class TestSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        model = MLP(3, [4], 2, rng)
        path = os.path.join(tmp_path, "model.npz")
        save_state(model, path)
        other = MLP(3, [4], 2, np.random.default_rng(123))
        load_state(other, path)
        assert state_allclose(model.state_dict(), other.state_dict())


class TestFunctionalExtras:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 6)))
        out = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-6
        )

    def test_bce_matches_manual(self, rng):
        logits = Tensor(rng.standard_normal(10), dtype=np.float64)
        labels = (rng.random(10) > 0.5).astype(np.float64)
        probs = 1 / (1 + np.exp(-logits.data))
        manual = -(labels * np.log(probs) + (1 - labels) * np.log(1 - probs)).mean()
        ours = F.binary_cross_entropy_with_logits(logits, labels).item()
        assert ours == pytest.approx(manual, rel=1e-6)

    def test_bce_pos_weight(self, rng):
        logits = Tensor(np.zeros(2), dtype=np.float64)
        labels = np.array([1.0, 0.0])
        unweighted = F.binary_cross_entropy_with_logits(logits, labels).item()
        weighted = F.binary_cross_entropy_with_logits(logits, labels, pos_weight=3.0).item()
        assert weighted > unweighted

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1])).item()
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cosine_similarity_bounds(self, rng):
        a = Tensor(rng.standard_normal((5, 8)))
        b = Tensor(rng.standard_normal((5, 8)))
        sims = F.cosine_similarity(a, b).data
        assert np.all(sims <= 1.0 + 1e-6) and np.all(sims >= -1.0 - 1e-6)

    def test_l2_normalize_unit_rows(self, rng):
        x = Tensor(rng.standard_normal((4, 8)))
        out = F.l2_normalize(x, axis=1).data
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-5)
