"""Tests for the dataset synthesisers and registry (Table 2)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    PROFILES,
    SPLIT_COUNTS,
    NameFactory,
    compose_snippet_text,
    load_dataset,
    synonyms_for,
    synthesize_dataset,
)
from repro.datasets.registry import SCALE_FLOORS
from repro.graph import InvertedIndex, derive_acronym
from repro.text import parse_cui, validate_snippet

#: Table 2 reference numbers
TABLE2 = {
    "MDX": (35_028, 74_621),
    "MIMIC-III": (22_642, 284_542),
    "NCBI": (753, 1_845),
    "ShARe": (1_719, 12_731),
    "BioCDR": (1_082, 2_857),
}


class TestVocabulary:
    def test_disease_names_unique(self):
        factory = NameFactory(np.random.default_rng(0))
        names = factory.disease_names(500)
        assert len(names) == len(set(names)) == 500

    def test_drug_names_capacity(self):
        factory = NameFactory(np.random.default_rng(0))
        names = factory.drug_names(5000)
        assert len(set(names)) == 5000

    def test_acronym_families_exist(self):
        factory = NameFactory(np.random.default_rng(0))
        names = factory.disease_names(2000)
        acronyms = {}
        for n in names:
            acronyms.setdefault(derive_acronym(n), []).append(n)
        families = [v for k, v in acronyms.items() if k and len(v) >= 2]
        assert families, "compositional naming must produce acronym collisions"

    def test_synonyms_for(self):
        assert "kidney failure" in synonyms_for("renal failure")
        assert synonyms_for("aspirin") == ()

    def test_types_share_no_names(self):
        factory = NameFactory(np.random.default_rng(0))
        a = set(factory.symptom_names(100))
        b = set(factory.adverse_effect_names(100))
        assert not (a & b)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            NameFactory(np.random.default_rng(0)).names_for_type("Starship", 3)


class TestSynthesis:
    def test_deterministic(self):
        a = load_dataset("NCBI", scale=0.2, use_cache=False)
        b = load_dataset("NCBI", scale=0.2, use_cache=False)
        assert a.kb.num_nodes == b.kb.num_nodes
        assert a.kb.num_edges == b.kb.num_edges
        assert [s.text for s in a.snippets[:20]] == [s.text for s in b.snippets[:20]]
        src_a, dst_a, _ = a.kb.edges()
        src_b, dst_b, _ = b.kb.edges()
        np.testing.assert_array_equal(src_a, src_b)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_scaled_sizes_close_to_profile(self, name):
        ds = load_dataset(name, scale=0.1, use_cache=False)
        profile = PROFILES[name].scaled(0.1)
        assert ds.kb.num_nodes == profile.num_nodes
        # Edge budget may fall slightly short on sparse type pairs, and
        # sibling copying adds extras.
        assert ds.kb.num_edges >= 0.8 * profile.num_edges

    def test_full_scale_profiles_match_table2(self):
        for name, (nodes, edges) in TABLE2.items():
            assert PROFILES[name].num_nodes == nodes
            assert PROFILES[name].num_edges == edges

    def test_snippets_valid_and_linked(self):
        ds = load_dataset("ShARe", scale=0.15, use_cache=False)
        for snippet in ds.snippets:
            assert validate_snippet(snippet) == []
            gold = parse_cui(snippet.ambiguous_mention.link_id)
            assert 0 <= gold < ds.kb.num_nodes
            # The gold's category matches the KB node type.
            assert snippet.ambiguous_mention.category == ds.kb.node_type_name(gold)

    def test_splits_partition(self):
        ds = load_dataset("BioCDR", scale=0.15, use_cache=False)
        all_idx = sorted(ds.train_indices + ds.val_indices + ds.test_indices)
        assert len(set(all_idx)) == len(all_idx)
        assert len(all_idx) <= len(ds.snippets)

    def test_ncbi_fixed_split_counts(self):
        counts = SPLIT_COUNTS["NCBI"]
        assert counts == (500, 100, 100)
        ds = load_dataset("NCBI", scale=1.0, use_cache=False)
        assert len(ds.train) == 500 and len(ds.val) == 100 and len(ds.test) == 100

    def test_some_mentions_ambiguous_in_index(self):
        """A healthy fraction of ambiguous mentions must have >= 2 KB
        candidates — otherwise the task degenerates to lookup."""
        ds = load_dataset("MDX", scale=0.08, use_cache=False)
        index = InvertedIndex(ds.kb)
        ambiguous = sum(
            1 for s in ds.snippets if len(index.lookup(s.ambiguous_mention.mention)) >= 2
        )
        assert ambiguous / len(ds.snippets) > 0.2

    def test_scale_floor_applied_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        ds = load_dataset("NCBI", use_cache=False)
        profile = PROFILES["NCBI"].scaled(SCALE_FLOORS["NCBI"])
        assert ds.kb.num_nodes == profile.num_nodes

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("UMLS")


class TestSnippetComposer:
    def test_spans_exact(self):
        rng = np.random.default_rng(0)
        surfaces = ["alpha beta", "gamma", "delta epsilon zeta"]
        text, spans = compose_snippet_text(surfaces, rng)
        for surface, (start, end) in zip(surfaces, spans):
            assert text[start:end] == surface

    def test_single_mention(self):
        rng = np.random.default_rng(0)
        text, spans = compose_snippet_text(["nephrosis"], rng)
        assert len(spans) == 1
        start, end = spans[0]
        assert text[start:end] == "nephrosis"
