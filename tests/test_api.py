"""Tests for the repro.api front door: registries, LinkerConfig, Linker.

Covers the acceptance contract of the facade redesign:

* ``LinkerConfig.from_json(cfg.to_json())`` round-trips for every
  registered component combination (and rejects unknown keys, unknown
  component names, and bad schema versions);
* the registries reject duplicate names and list options on a miss;
* a ``Linker.save`` checkpoint reproduces ``disambiguate_snippet``
  predictions bit-identically after ``Linker.load`` — equal to the
  legacy ``save_pipeline``/``load_pipeline`` path — through both
  ``LinkingService`` and ``AsyncLinkingService``.
"""

import itertools
import json

import pytest

from repro.api import (
    CANDIDATE_GENERATORS,
    CONFIG_SCHEMA_VERSION,
    EMBEDDERS,
    ENCODERS,
    LINKER_CONFIG_FILE,
    NERS,
    Linker,
    LinkerConfig,
    Registry,
    register_encoder,
)
from repro.core import (
    EDPipeline,
    ExactCandidateGenerator,
    FuzzyFallbackCandidateGenerator,
    ModelConfig,
    TrainConfig,
    load_pipeline,
    save_pipeline,
)
from repro.datasets import load_dataset
from repro.serving import ServiceConfig
from repro.text import HashingNgramEmbedder

SMALL_MODEL = dict(variant="graphsage", num_layers=2, feature_dim=32, hidden_dim=32)


def small_config(**overrides) -> LinkerConfig:
    fields = dict(
        model=ModelConfig(**SMALL_MODEL),
        train=TrainConfig(epochs=2, patience=5, seed=0),
    )
    fields.update(overrides)
    return LinkerConfig(**fields)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=0.2, use_cache=False)


@pytest.fixture(scope="module")
def trained(dataset):
    linker = Linker.from_config(small_config(), dataset.kb)
    linker.fit(dataset.train, dataset.val, dataset.test)
    return linker


class TestRegistry:
    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("a", object)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", object)

    def test_builtin_duplicates_rejected(self):
        for registry, name in (
            (CANDIDATE_GENERATORS, "exact"),
            (NERS, "dictionary"),
            (EMBEDDERS, "hashing-ngram"),
        ):
            with pytest.raises(ValueError, match="already registered"):
                registry.register(name, object)

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match=r"exact.*fuzzy"):
            CANDIDATE_GENERATORS.get("nope")

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("decorated")
        class Widget:
            pass

        assert reg.get("decorated") is Widget
        assert "decorated" in reg and len(reg) == 1

    def test_builtin_components_registered(self):
        assert set(CANDIDATE_GENERATORS.names()) >= {"exact", "fuzzy"}
        assert "dictionary" in NERS
        assert "hashing-ngram" in EMBEDDERS


class TestEncoderRegistry:
    def test_paper_variants_present(self):
        assert set(ENCODERS.names()) >= {
            "graphsage", "rgcn", "magnn", "gcn", "gat", "han", "hetgnn",
        }

    def test_registered_encoder_reaches_model_config(self):
        # A new variant is valid in ModelConfig (and thus LinkerConfig)
        # the moment it is registered — no constructor edits.
        with pytest.raises(ValueError, match="unknown variant"):
            ModelConfig(variant="sage-alias")

        register_encoder("sage-alias", ENCODERS.get("graphsage"))
        try:
            config = LinkerConfig(model=ModelConfig(variant="sage-alias", **{
                k: v for k, v in SMALL_MODEL.items() if k != "variant"
            }))
            assert LinkerConfig.from_json(config.to_json()).model.variant == "sage-alias"
        finally:
            del ENCODERS._entries["sage-alias"]

    def test_duplicate_variant_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_encoder("graphsage", ENCODERS.get("graphsage"))


class TestLinkerConfigRoundTrip:
    def test_every_component_combination(self):
        for gen, ner, emb in itertools.product(
            CANDIDATE_GENERATORS.names(), NERS.names(), EMBEDDERS.names()
        ):
            config = small_config(
                candidate_generator=gen, ner=ner, embedder=emb,
                candidate_generator_kwargs={"top_k": 10} if gen == "fuzzy" else {},
            )
            assert LinkerConfig.from_json(config.to_json()).to_dict() == config.to_dict()

    def test_every_encoder_variant(self):
        for variant in ENCODERS.names():
            if getattr(ENCODERS.get(variant), "baseline_cls", None) is not None:
                continue  # baseline systems are not constructible encoders
            config = LinkerConfig(model=ModelConfig(variant=variant))
            assert LinkerConfig.from_json(config.to_json()).to_dict() == config.to_dict()

    def test_service_section_round_trips(self):
        config = small_config(
            service=ServiceConfig(max_batch_size=8, cache_size=0, num_shards=3, top_k=2)
        )
        loaded = LinkerConfig.from_json(config.to_json())
        assert loaded.service == config.service

    def test_shard_backend_round_trips(self):
        config = small_config(
            service=ServiceConfig(num_shards=4, shard_backend="process")
        )
        loaded = LinkerConfig.from_json(config.to_json())
        assert loaded.service.shard_backend == "process"
        assert loaded.to_dict() == config.to_dict()

    def test_unknown_shard_backend_rejected(self):
        with pytest.raises(ValueError, match="shard_backend"):
            ServiceConfig(shard_backend="fibers")
        payload = small_config().to_dict()
        payload["service"]["shard_backend"] = "fibers"
        with pytest.raises(ValueError, match="shard_backend"):
            LinkerConfig.from_dict(payload)

    def test_shard_backend_env_default(self, monkeypatch):
        from repro.serving.workers import SHARD_BACKEND_ENV

        monkeypatch.setenv(SHARD_BACKEND_ENV, "process")
        assert ServiceConfig().shard_backend == "process"
        monkeypatch.delenv(SHARD_BACKEND_ENV)
        assert ServiceConfig().shard_backend == "thread"

    def test_defaults_round_trip(self):
        config = LinkerConfig()
        assert LinkerConfig.from_json(config.to_json()).to_dict() == config.to_dict()

    def test_http_section_round_trips(self):
        from repro.serving import HttpConfig

        config = small_config(
            service=ServiceConfig(
                max_batch_size=8,
                http=HttpConfig(host="0.0.0.0", port=9090, max_batch=64),
            )
        )
        loaded = LinkerConfig.from_json(config.to_json())
        assert loaded.service.http == config.service.http
        assert loaded.to_dict() == config.to_dict()

    def test_bad_http_section_rejected(self):
        from repro.serving import HttpConfig

        with pytest.raises(ValueError, match="port"):
            HttpConfig(port=70000)
        with pytest.raises(ValueError, match="max_body_bytes"):
            HttpConfig(max_body_bytes=16)
        payload = small_config().to_dict()
        payload["service"]["http"] = {"port": 8080, "bogus": 1}
        with pytest.raises(ValueError, match="bad http section"):
            LinkerConfig.from_dict(payload)


class TestLinkerConfigRejection:
    def test_unknown_top_level_key(self):
        payload = LinkerConfig().to_dict()
        payload["frobnicate"] = True
        with pytest.raises(ValueError, match="unknown LinkerConfig keys.*frobnicate"):
            LinkerConfig.from_dict(payload)

    def test_bad_schema_version(self):
        payload = LinkerConfig().to_dict()
        payload["schema_version"] = CONFIG_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported LinkerConfig schema_version"):
            LinkerConfig.from_dict(payload)

    def test_missing_schema_version(self):
        payload = LinkerConfig().to_dict()
        del payload["schema_version"]
        with pytest.raises(ValueError, match="unsupported LinkerConfig schema_version"):
            LinkerConfig.from_dict(payload)

    def test_unknown_component_name(self):
        with pytest.raises(ValueError, match="unknown candidate generator"):
            LinkerConfig(candidate_generator="nope")
        with pytest.raises(ValueError, match="unknown ner"):
            LinkerConfig(ner="nope")
        with pytest.raises(ValueError, match="unknown embedder"):
            LinkerConfig(embedder="nope")

    def test_unknown_nested_model_key(self):
        payload = LinkerConfig().to_dict()
        payload["model"]["frobnicate"] = 1
        with pytest.raises(ValueError, match="bad model section"):
            LinkerConfig.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            LinkerConfig.from_json("{nope")

    def test_incomplete_train_section_rejected(self):
        # A hand-written minimal section must fail with a sited error,
        # not a raw KeyError from deep inside the schedule decoder.
        with pytest.raises(ValueError, match="bad train section.*curriculum"):
            LinkerConfig.from_dict(
                {"schema_version": CONFIG_SCHEMA_VERSION, "train": {"epochs": 10}}
            )

    def test_bogus_curriculum_kind_rejected(self):
        payload = LinkerConfig().to_dict()
        payload["train"]["curriculum"]["kind"] = "cirriculum"
        with pytest.raises(ValueError, match="unknown curriculum kind"):
            LinkerConfig.from_dict(payload)

    def test_non_object_kwargs_rejected(self):
        for key in ("candidate_generator_kwargs", "ner_kwargs", "embedder_kwargs"):
            payload = LinkerConfig().to_dict()
            payload[key] = "oops"
            with pytest.raises(ValueError, match=f"{key}.*must be an object"):
                LinkerConfig.from_dict(payload)

    def test_non_string_component_name_rejected(self):
        payload = LinkerConfig().to_dict()
        payload["candidate_generator"] = ["exact"]
        with pytest.raises(ValueError, match="must be a component name"):
            LinkerConfig.from_dict(payload)

    def test_baseline_variant_rejected(self):
        # Baselines live in the encoder registry (one lookup table for
        # every system) but are not constructible GNN encoders: the
        # variant parses at the ModelConfig level yet a LinkerConfig —
        # a promise that Linker.from_config works — must refuse it.
        model = ModelConfig(variant="NCEL")
        assert model.variant == "NCEL"
        with pytest.raises(ValueError, match="baseline system"):
            LinkerConfig(model=model)


class TestLinkerConstruction:
    def test_matches_direct_pipeline(self, dataset):
        # Same seed, same components -> identical weights and predictions
        # (no training needed: init is deterministic per config.seed).
        linker = Linker.from_config(small_config(), dataset.kb)
        direct = EDPipeline(
            dataset.kb,
            model_config=ModelConfig(**SMALL_MODEL),
            train_config=TrainConfig(epochs=2, patience=5, seed=0),
            embedder=HashingNgramEmbedder(dim=32),
        )
        snippet = dataset.test[0]
        a = linker.disambiguate_snippet(snippet, top_k=5)
        b = direct.disambiguate_snippet(snippet, top_k=5)
        assert a.ranked_entities == b.ranked_entities
        assert a.scores == b.scores

    def test_component_kwargs_bound(self, dataset):
        linker = Linker.from_config(
            small_config(
                candidate_generator="fuzzy",
                candidate_generator_kwargs={"top_k": 7},
            ),
            dataset.kb,
        )
        generator = linker.pipeline.candidate_generator
        assert isinstance(generator, FuzzyFallbackCandidateGenerator)
        assert generator.top_k == 7
        assert linker.pipeline.fuzzy_candidates is True

    def test_exact_generator_by_default(self, dataset):
        linker = Linker.from_config(small_config(), dataset.kb)
        assert isinstance(linker.pipeline.candidate_generator, ExactCandidateGenerator)
        assert linker.pipeline.fuzzy_candidates is False

    def test_deprecated_fuzzy_kwarg_warns_but_works(self, dataset):
        with pytest.warns(DeprecationWarning, match="fuzzy_candidates"):
            pipeline = EDPipeline(
                dataset.kb,
                model_config=ModelConfig(**SMALL_MODEL),
                embedder=HashingNgramEmbedder(dim=32),
                fuzzy_candidates=True,
            )
        assert isinstance(pipeline.candidate_generator, FuzzyFallbackCandidateGenerator)


class TestLinkerPersistence:
    def test_save_writes_self_describing_checkpoint(self, trained, tmp_path):
        trained.save(str(tmp_path))
        assert (tmp_path / LINKER_CONFIG_FILE).exists()
        payload = json.loads((tmp_path / LINKER_CONFIG_FILE).read_text())
        assert payload["schema_version"] == CONFIG_SCHEMA_VERSION
        assert payload["model"]["variant"] == "graphsage"
        # The legacy checkpoint files ride along unchanged.
        for name in ("kb.json", "config.json", "weights.npz"):
            assert (tmp_path / name).exists()

    def test_load_equals_legacy_load_bit_identically(self, dataset, trained, tmp_path):
        """Acceptance: Linker.save/load == save_pipeline/load_pipeline,
        through the facade, the engine, LinkingService, and
        AsyncLinkingService — all bit-identical."""
        facade_dir = str(tmp_path / "facade")
        legacy_dir = str(tmp_path / "legacy")
        trained.save(facade_dir)
        save_pipeline(trained.pipeline, legacy_dir)

        reference = [
            trained.disambiguate_snippet(s, top_k=5) for s in dataset.test[:6]
        ]
        loaded = Linker.load(facade_dir)
        legacy = load_pipeline(legacy_dir)
        for snippet, ref in zip(dataset.test[:6], reference):
            a = loaded.disambiguate_snippet(snippet, top_k=5)
            b = legacy.disambiguate_snippet(snippet, top_k=5)
            assert a.ranked_entities == ref.ranked_entities == b.ranked_entities
            assert a.scores == ref.scores == b.scores

        service = loaded.serve(cache_size=0)
        batched = service.link_batch(dataset.test[:6], top_k=5)
        for ref, prediction in zip(reference, batched):
            assert prediction.ranked_entities == ref.ranked_entities
            assert prediction.scores == ref.scores

        with loaded.serve(async_=True, deadline_ms=15.0, cache_size=0) as async_service:
            futures = [async_service.submit(s) for s in dataset.test[:6]]
            for ref, future in zip(reference, futures):
                prediction = future.result(timeout=30.0)
                assert prediction.ranked_entities == ref.ranked_entities
                assert prediction.scores == ref.scores

    def test_load_legacy_checkpoint_without_linker_json(self, dataset, trained, tmp_path):
        save_pipeline(trained.pipeline, str(tmp_path))
        assert not (tmp_path / LINKER_CONFIG_FILE).exists()
        loaded = Linker.load(str(tmp_path))
        snippet = dataset.test[0]
        a = loaded.disambiguate_snippet(snippet, top_k=3)
        b = trained.disambiguate_snippet(snippet, top_k=3)
        assert a.ranked_entities == b.ranked_entities
        assert a.scores == b.scores
        # The inferred config re-saves as a facade checkpoint.
        assert loaded.config.candidate_generator == "exact"

    def test_mismatched_sections_rejected(self, trained, tmp_path):
        trained.save(str(tmp_path))
        path = tmp_path / LINKER_CONFIG_FILE
        payload = json.loads(path.read_text())
        payload["model"]["num_layers"] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="disagree on the model section"):
            Linker.load(str(tmp_path))


class TestLinkerServe:
    def test_serve_honours_config_service_section(self, dataset, trained):
        service = trained.serve()
        assert service.config == trained.config.service
        service.close()

    def test_serve_overrides(self, trained):
        service = trained.serve(max_batch_size=4, cache_size=0)
        assert service.config.max_batch_size == 4
        assert service.config.cache_size == 0
        # The declarative config is untouched by per-call overrides.
        assert trained.config.service.max_batch_size == ServiceConfig().max_batch_size
        service.close()

    def test_serve_shard_backend_override(self, trained):
        service = trained.serve(shards=2, shard_backend="process", cache_size=0)
        try:
            assert service.config.num_shards == 2
            assert service.config.shard_backend == "process"
            # resolve_shard_backend may degrade to threads on platforms
            # that cannot fork; either way the seam is plumbed through.
            assert service.sharded is not None
            assert service.sharded.backend in ("thread", "process")
        finally:
            service.close()

    def test_linking_service_accepts_linker(self, dataset, trained):
        from repro.serving import LinkingService

        service = LinkingService(trained, ServiceConfig(cache_size=0))
        assert service.pipeline is trained.pipeline
        [p] = service.link_batch(dataset.test[:1], top_k=3)
        q = trained.disambiguate_snippet(dataset.test[0], top_k=3)
        assert p.ranked_entities == q.ranked_entities
        service.close()


class TestTrainedConfigReflectsEngine(object):
    def test_magnn_metapaths_survive_round_trip(self, tmp_path):
        dataset = load_dataset("NCBI", scale=0.2, use_cache=False)
        linker = Linker.from_config(
            LinkerConfig(
                model=ModelConfig(
                    variant="magnn", num_layers=1, feature_dim=16,
                    hidden_dim=16, attention_dim=8,
                ),
                train=TrainConfig(epochs=1, patience=2),
            ),
            dataset.kb,
        )
        # Construction selected data-driven metapaths on the engine copy;
        # the declarative input config stays declarative, the live config
        # reflects the engine.
        assert linker.pipeline.model_config.metapaths is not None
        assert linker.config.model.metapaths is not None
        linker.save(str(tmp_path))
        loaded = Linker.load(str(tmp_path))
        assert loaded.pipeline.model_config.metapaths == linker.pipeline.model_config.metapaths
