"""Tests for Algorithm 1 (query-graph construction + semantic
augmentation) — the paper's first optimisation."""

import numpy as np
import pytest

from repro.core import (
    RELATED,
    build_query_graph,
    related_relation_id,
    with_related_relation,
)
from repro.graph import HeteroGraph, InvertedIndex, medical_schema
from repro.text import HashingNgramEmbedder, MentionAnnotation, Snippet, mint_cui

EMB = HashingNgramEmbedder(dim=16)


@pytest.fixture
def kb():
    schema = with_related_relation(medical_schema())
    g = HeteroGraph(schema)
    g.aspirin = g.add_node("Drug", "aspirin")
    g.nausea = g.add_node("AdverseEffect", "nausea")
    g.arf = g.add_node("Finding", "acute renal failure")
    g.arf2 = g.add_node("Finding", "acute respiratory failure")
    g.proteinuria = g.add_node("Finding", "proteinuria")
    g.nephrotoxicity = g.add_node("Finding", "nephrotoxicity")
    g.add_edge_by_name(g.aspirin, g.nausea, "CAUSE")
    g.add_edge_by_name(g.nausea, g.arf, "HAS")
    g.add_edge_by_name(g.nausea, g.proteinuria, "HAS")
    return g


@pytest.fixture
def snippet(kb):
    """The paper's running example: 'Aspirin can cause nausea indicating
    a potential ARF, nephrotoxicity, and proteinuria'."""
    text = "Aspirin can cause nausea indicating a potential ARF, nephrotoxicity, and proteinuria"
    return Snippet(
        text=text,
        mentions=[
            MentionAnnotation("Aspirin", 0, 7, "Drug", mint_cui(kb.aspirin)),
            MentionAnnotation("nausea", 18, 24, "AdverseEffect", mint_cui(kb.nausea)),
            MentionAnnotation("ARF", 48, 51, "Finding", mint_cui(kb.arf)),
            MentionAnnotation("nephrotoxicity", 53, 67, "Finding", mint_cui(kb.nephrotoxicity)),
            MentionAnnotation("proteinuria", 74, 85, "Finding", mint_cui(kb.proteinuria)),
        ],
        ambiguous_index=2,
    )


class TestRelatedRelation:
    def test_idempotent(self):
        schema = with_related_relation(medical_schema())
        again = with_related_relation(schema)
        assert again is schema

    def test_related_id_resolves(self):
        schema = with_related_relation(medical_schema())
        rid = related_relation_id(schema)
        assert schema.relation(rid).name == RELATED

    def test_missing_related_raises(self):
        with pytest.raises(KeyError):
            related_relation_id(medical_schema())


class TestAugmentedConstruction:
    def test_nodes_are_all_mentions(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        assert qg.graph.num_nodes == 5
        assert qg.mention_surface == "ARF"
        assert qg.gold_entity == kb.arf

    def test_mention_node_is_first(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        assert qg.mention_node == 0
        assert qg.graph.node_name(0) == "ARF"

    def test_kb_edges_copied_with_types(self, kb, snippet):
        """Algorithm 1 lines 6-10: aspirin-CAUSE->nausea must appear."""
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        g = qg.graph
        aspirin_q = next(v for v in range(g.num_nodes) if g.node_name(v) == "Aspirin")
        nausea_q = next(v for v in range(g.num_nodes) if g.node_name(v) == "nausea")
        rel = g.edge_between(aspirin_q, nausea_q)
        assert rel is not None
        assert g.schema.relation(rel).name == "CAUSE"

    def test_unknown_mention_wired_by_schema(self, kb, snippet):
        """Algorithm 1 lines 11-20: the ambiguous 'ARF' (a Finding) links
        to nausea (AdverseEffect) through HAS per the schema."""
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        g = qg.graph
        nausea_q = next(v for v in range(g.num_nodes) if g.node_name(v) == "nausea")
        rel = g.edge_between(nausea_q, qg.mention_node)
        assert rel is not None and g.schema.relation(rel).name == "HAS"
        assert qg.extra_edges > 0

    def test_anchors_resolve_context(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        anchored_refs = set(qg.anchors.values())
        assert kb.aspirin in anchored_refs
        assert kb.nausea in anchored_refs
        # The ambiguous mention itself is never index-linked.
        assert qg.mention_node not in qg.anchors

    def test_features_match_embedder(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        np.testing.assert_allclose(qg.graph.features[0], EMB.embed("ARF"), atol=1e-6)

    def test_no_related_edges_in_augmented_mode(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        _, _, et = qg.graph.edges()
        rid = related_relation_id(qg.graph.schema)
        assert rid not in et.tolist()


class TestBasicConstruction:
    def test_clique_with_self_loops(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=False)
        n = qg.graph.num_nodes
        assert qg.graph.num_edges == n + n * (n - 1) // 2

    def test_only_related_edges(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=False)
        _, _, et = qg.graph.edges()
        rid = related_relation_id(qg.graph.schema)
        assert set(et.tolist()) == {rid}


class TestErrorTracking:
    def test_multi_type_mentions_counted(self, kb):
        """A surface matching entities of multiple types flags the query
        graph (error class 1 of Table 6)."""
        kb.add_node("AdverseEffect", "rash")
        kb.add_node("Finding", "rash")
        text = "rash with nausea and XYZ"
        snippet = Snippet(
            text=text,
            mentions=[
                MentionAnnotation("rash", 0, 4, "AdverseEffect", ""),
                MentionAnnotation("nausea", 10, 16, "AdverseEffect", mint_cui(kb.nausea)),
                MentionAnnotation("XYZ", 21, 24, "Finding", mint_cui(kb.arf)),
            ],
            ambiguous_index=2,
        )
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        assert qg.multi_type_mentions >= 1

    def test_context_node_count(self, kb, snippet):
        qg = build_query_graph(snippet, kb, InvertedIndex(kb), EMB, augment=True)
        assert qg.num_context_nodes == 4
