"""Round-trip tests for pipeline checkpoints (repro.core.serialization)."""

import json
import os

import numpy as np
import pytest

from repro.autograd import state_allclose
from repro.core import (
    ConstantSchedule,
    EDPipeline,
    ModelConfig,
    TrainConfig,
    load_pipeline,
    save_pipeline,
)
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """One tiny trained pipeline + its checkpoint directory."""
    from repro.text import HashingNgramEmbedder

    dataset = load_dataset("NCBI", scale=0.2, use_cache=False)
    pipeline_dir = str(tmp_path_factory.mktemp("ckpt"))
    pipeline = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, feature_dim=32, hidden_dim=32),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
        embedder=HashingNgramEmbedder(dim=32),
    )
    pipeline.fit(dataset.train, dataset.val, dataset.test)
    save_pipeline(pipeline, pipeline_dir)
    return dataset, pipeline, pipeline_dir


class TestRoundTrip:
    def test_checkpoint_files_written(self, trained):
        _, _, directory = trained
        for name in ("kb.json", "config.json", "weights.npz"):
            assert os.path.exists(os.path.join(directory, name))

    def test_weights_identical(self, trained):
        _, pipeline, directory = trained
        loaded = load_pipeline(directory)
        assert state_allclose(pipeline.model.state_dict(), loaded.model.state_dict())

    def test_kb_round_trips(self, trained):
        dataset, pipeline, directory = trained
        loaded = load_pipeline(directory)
        assert loaded.kb.num_nodes == pipeline.kb.num_nodes
        assert loaded.kb.num_edges == pipeline.kb.num_edges
        assert loaded.kb.node_name(0) == pipeline.kb.node_name(0)

    def test_configs_round_trip(self, trained):
        _, pipeline, directory = trained
        loaded = load_pipeline(directory)
        assert loaded.model_config.variant == pipeline.model_config.variant
        assert loaded.model_config.num_layers == pipeline.model_config.num_layers
        assert loaded.train_config.epochs == pipeline.train_config.epochs
        assert loaded.augment == pipeline.augment
        assert loaded.embedder.dim == pipeline.embedder.dim

    def test_predictions_identical_after_load(self, trained):
        dataset, pipeline, directory = trained
        loaded = load_pipeline(directory)
        snippet = dataset.test[0]
        a = pipeline.disambiguate_snippet(snippet, top_k=3)
        b = loaded.disambiguate_snippet(snippet, top_k=3)
        assert a.ranked_entities == b.ranked_entities
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-5)


class TestMetapathConfig:
    def test_magnn_metapaths_round_trip(self, tmp_path):
        dataset = load_dataset("NCBI", scale=0.2, use_cache=False)
        pipeline = EDPipeline(
            dataset.kb,
            model_config=ModelConfig(
                variant="magnn", num_layers=1, feature_dim=16, hidden_dim=16, attention_dim=8
            ),
            train_config=TrainConfig(epochs=1, patience=2),
        )
        # Pipeline init selects data-driven metapaths; they must survive.
        assert pipeline.model_config.metapaths is not None
        save_pipeline(pipeline, str(tmp_path))
        loaded = load_pipeline(str(tmp_path))
        assert loaded.model_config.metapaths == pipeline.model_config.metapaths


class TestScheduleConfig:
    def test_constant_schedule_round_trips(self, tmp_path):
        dataset = load_dataset("NCBI", scale=0.2, use_cache=False)
        pipeline = EDPipeline(
            dataset.kb,
            model_config=ModelConfig(variant="graphsage", num_layers=1, feature_dim=16, hidden_dim=16),
            train_config=TrainConfig(epochs=1, curriculum=ConstantSchedule(0.6)),
        )
        save_pipeline(pipeline, str(tmp_path))
        loaded = load_pipeline(str(tmp_path))
        assert isinstance(loaded.train_config.curriculum, ConstantSchedule)
        assert loaded.train_config.curriculum.hard_fraction(0) == pytest.approx(0.6)


class TestFailureModes:
    def test_missing_file_rejected(self, trained, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_pipeline(str(tmp_path))

    def test_bad_version_rejected(self, trained, tmp_path):
        _, pipeline, directory = trained
        import shutil

        clone = tmp_path / "clone"
        shutil.copytree(directory, clone)
        config_path = clone / "config.json"
        payload = json.loads(config_path.read_text())
        payload["format_version"] = 999
        config_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported checkpoint format"):
            load_pipeline(str(clone))
