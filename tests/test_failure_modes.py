"""Failure-injection tests: corrupted inputs, empty splits, dimension
mismatches, unseen surfaces — the error paths a production consumer of
the library hits first."""

import numpy as np
import pytest

from repro.core import (
    EDGNN,
    EDPipeline,
    EDGNNTrainer,
    ModelConfig,
    TrainConfig,
    build_query_graph,
)
from repro.datasets import load_dataset
from repro.graph import HeteroGraph, InvertedIndex, medical_schema
from repro.text import (
    HashingNgramEmbedder,
    MentionAnnotation,
    Snippet,
    node_features_for_graph,
)


@pytest.fixture(scope="module")
def small_dataset():
    return load_dataset("NCBI", scale=0.2, use_cache=False)


@pytest.fixture
def toy_kb():
    kb = HeteroGraph(medical_schema())
    a = kb.add_node("Drug", "aspirin")
    b = kb.add_node("AdverseEffect", "nausea")
    kb.add_edge_by_name(a, b, "CAUSE")
    return kb


class TestGraphCorruption:
    def test_edge_to_missing_node_rejected(self, toy_kb):
        with pytest.raises(IndexError, match="missing node"):
            toy_kb.add_edge(0, 99, 0)

    def test_unknown_relation_rejected(self, toy_kb):
        with pytest.raises(IndexError, match="unknown relation"):
            toy_kb.add_edge(0, 1, 42)

    def test_unknown_node_type_rejected(self, toy_kb):
        with pytest.raises(KeyError):
            toy_kb.add_node("Spaceship", "enterprise")

    def test_feature_row_mismatch_rejected(self, toy_kb):
        with pytest.raises(ValueError, match="features rows"):
            toy_kb.set_features(np.zeros((99, 4), dtype=np.float32))

    def test_incompatible_relation_signature_rejected(self, toy_kb):
        # TREAT joins Drug->Symptom; nausea is an AdverseEffect.
        with pytest.raises(KeyError):
            toy_kb.add_edge_by_name(0, 1, "TREAT")


class TestPipelineGuards:
    def test_embedder_dim_must_match_model(self, toy_kb):
        with pytest.raises(ValueError, match="embedder dim"):
            EDPipeline(
                toy_kb,
                model_config=ModelConfig(variant="graphsage", feature_dim=64),
                embedder=HashingNgramEmbedder(dim=32),
            )

    def test_empty_split_rejected(self, small_dataset):
        pipeline = EDPipeline(
            small_dataset.kb,
            model_config=ModelConfig(variant="graphsage", num_layers=1, feature_dim=32, hidden_dim=32),
            train_config=TrainConfig(epochs=1),
            embedder=HashingNgramEmbedder(dim=32),
        )
        with pytest.raises(ValueError, match="no query graphs"):
            pipeline.fit([], small_dataset.val, small_dataset.test)

    def test_no_mentions_in_text_rejected(self, small_dataset):
        pipeline = EDPipeline(
            small_dataset.kb,
            model_config=ModelConfig(variant="graphsage", num_layers=1, feature_dim=32, hidden_dim=32),
            embedder=HashingNgramEmbedder(dim=32),
        )
        with pytest.raises(ValueError, match="no entity mentions"):
            pipeline.snippet_from_text("the quick brown fox jumps")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            ModelConfig(variant="transformer")

    def test_unseen_mention_falls_back_to_type_candidates(self, small_dataset):
        """A surface absent from the index must still rank candidates."""
        pipeline = EDPipeline(
            small_dataset.kb,
            model_config=ModelConfig(variant="graphsage", num_layers=1, feature_dim=32, hidden_dim=32),
            train_config=TrainConfig(epochs=1, patience=1),
            embedder=HashingNgramEmbedder(dim=32),
        )
        pipeline.fit(small_dataset.train, small_dataset.val, small_dataset.test)
        known = small_dataset.kb.node_name(0)
        text = f"Observed {known} and totally novel mystery disorder here."
        snippet = pipeline.snippet_from_text(text)
        prediction = pipeline.disambiguate_snippet(snippet, top_k=3)
        assert prediction.ranked_entities


class TestTrainerGuards:
    def test_ref_graph_needs_features(self, toy_kb, small_dataset):
        model = EDGNN(
            ModelConfig(variant="graphsage", num_layers=1, feature_dim=16, hidden_dim=16),
            toy_kb.schema,
        )
        with pytest.raises(ValueError, match="features"):
            EDGNNTrainer(model, toy_kb, [], [], [])

    def test_eval_graph_without_gold_rejected(self, toy_kb):
        toy_kb.set_features(node_features_for_graph(toy_kb, HashingNgramEmbedder(dim=16)))
        index = InvertedIndex(toy_kb)
        embedder = HashingNgramEmbedder(dim=16)
        snippet = Snippet(
            text="aspirin with nausea",
            mentions=[
                MentionAnnotation("aspirin", 0, 7, "Drug", ""),
                MentionAnnotation("nausea", 13, 19, "AdverseEffect", "C0000001"),
            ],
            ambiguous_index=0,
        )
        qg = build_query_graph(snippet, toy_kb, index, embedder, augment=False)
        assert qg.gold_entity is None  # inference-style graph
        model = EDGNN(
            ModelConfig(variant="graphsage", num_layers=1, feature_dim=16, hidden_dim=16),
            toy_kb.schema,
        )
        with pytest.raises(ValueError, match="gold"):
            EDGNNTrainer(model, toy_kb, [qg], [qg], [qg])


class TestEncoderGuards:
    def test_feature_dim_mismatch_rejected(self, toy_kb):
        from repro.gnn import GraphSAGE

        toy_kb.set_features(np.zeros((toy_kb.num_nodes, 8), dtype=np.float32))
        enc = GraphSAGE(16, 16, 1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="feature dim"):
            enc.encode(toy_kb)

    def test_missing_features_rejected(self, toy_kb):
        from repro.gnn import GraphSAGE

        enc = GraphSAGE(16, 16, 1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="no features"):
            enc.encode(toy_kb)


class TestCorpusValidation:
    def test_validate_snippet_flags_bad_spans(self):
        from repro.text import validate_snippet

        snippet = Snippet(
            text="short",
            mentions=[MentionAnnotation("missing mention", 0, 15, "Drug", "C0000000")],
            ambiguous_index=0,
        )
        problems = validate_snippet(snippet)
        assert problems  # span exceeds text / surface mismatch

    def test_load_snippets_round_trip_empty(self, tmp_path):
        from repro.text import load_snippets, save_snippets

        path = str(tmp_path / "empty.jsonl")
        save_snippets([], path)
        assert load_snippets(path) == []

    def test_ambiguous_index_out_of_range(self):
        with pytest.raises((IndexError, ValueError)):
            snippet = Snippet(
                text="aspirin",
                mentions=[MentionAnnotation("aspirin", 0, 7, "Drug", "C0000000")],
                ambiguous_index=5,
            )
            _ = snippet.ambiguous_mention
