"""Tests for the pluggable KB/embedding storage layer (repro.storage).

Covers the strict ``StorageConfig`` section (standalone and inside
``ServiceConfig``), the mmap bundle's bit-exact round trip and
staleness handling, the shared-memory arena's publish/update/unlink
lifecycle (including a SIGKILL'd worker respawn), the cross-backend
equivalence property — memory|mmap x thread|process x 2|4 shards all
rank exactly like ``disambiguate_snippet`` with bitwise-identical
scores — and the acceptance bound that arena-mode worker startup ships
less than the matrices' nbytes over the command pipes.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.core import EDPipeline, ModelConfig, TrainConfig
from repro.datasets import load_dataset
from repro.serving import LinkingService, ServiceConfig
from repro.storage import (
    KB_STORE_ENV,
    MmapStore,
    SharedMemoryArena,
    StorageConfig,
    StorageError,
    attach_array,
    content_fingerprint,
    default_kb_store,
    pack_bundle,
    resolve_kb_store,
    shared_memory_available,
)
from repro.storage.bundle import (
    FEATURES_NAME,
    MANIFEST_NAME,
    _read_manifest,
    features_crc,
)

SCALE = 0.2

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=SCALE)


@pytest.fixture(scope="module")
def pipeline(dataset):
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, seed=0),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
    )
    pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe


@pytest.fixture(scope="module")
def bundle(pipeline, tmp_path_factory):
    """A packed bundle (features + embeddings) shared by the mmap tests."""
    directory = str(tmp_path_factory.mktemp("bundle"))
    manifest = pack_bundle(pipeline, directory)
    return directory, manifest


def make_service(pipeline, kb_store, backend, shards, bundle_path=None):
    return LinkingService(
        pipeline,
        ServiceConfig(
            num_shards=shards,
            shard_backend=backend,
            storage=StorageConfig(kb_store=kb_store, bundle_path=bundle_path),
        ),
    )


# ----------------------------------------------------------------------
# StorageConfig
# ----------------------------------------------------------------------
class TestStorageConfig:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(KB_STORE_ENV, raising=False)
        config = StorageConfig()
        assert config.kb_store == "memory"
        assert config.bundle_path is None
        assert config.share_payloads is True

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(KB_STORE_ENV, "mmap")
        assert default_kb_store() == "mmap"
        assert StorageConfig().kb_store == "mmap"
        # An explicit request always wins over the environment.
        assert resolve_kb_store("memory") == "memory"

    def test_unknown_store_rejected(self):
        with pytest.raises(ValueError, match="unknown kb store"):
            resolve_kb_store("cloud")
        with pytest.raises(ValueError, match="unknown kb_store"):
            StorageConfig(kb_store="cloud")

    def test_bad_field_types_rejected(self):
        with pytest.raises(ValueError, match="bundle_path"):
            StorageConfig(bundle_path=7)
        with pytest.raises(ValueError, match="share_payloads"):
            StorageConfig(share_payloads="yes")

    def test_service_config_coerces_dict_section(self):
        # The shape dataclasses.asdict / the LinkerConfig JSON round trip
        # produce must coerce strictly back into a StorageConfig.
        config = ServiceConfig(
            storage={"kb_store": "mmap", "bundle_path": None, "share_payloads": True}
        )
        assert config.storage == StorageConfig(kb_store="mmap")

    def test_service_config_rejects_unknown_storage_key(self):
        with pytest.raises(ValueError, match="bad storage section"):
            ServiceConfig(storage={"kb_store": "memory", "compression": "zstd"})

    def test_service_config_rejects_non_dict_storage(self):
        with pytest.raises(ValueError, match="storage must be a StorageConfig"):
            ServiceConfig(storage="mmap")

    def test_json_round_trip_is_exact(self):
        import dataclasses

        original = ServiceConfig(storage=StorageConfig(kb_store="mmap"))
        payload = json.loads(json.dumps(dataclasses.asdict(original)))
        assert ServiceConfig(**payload) == original


# ----------------------------------------------------------------------
# The mmap bundle
# ----------------------------------------------------------------------
class TestBundle:
    def test_pack_writes_manifest_and_arrays(self, pipeline, bundle):
        directory, manifest = bundle
        assert os.path.exists(os.path.join(directory, MANIFEST_NAME))
        assert os.path.exists(os.path.join(directory, FEATURES_NAME))
        assert manifest["schema_version"] == 1
        assert manifest["features"]["crc"] == features_crc(pipeline.kb.features)
        assert manifest["h_ref"]["fingerprint"] == content_fingerprint(pipeline)

    def test_round_trip_is_bit_identical(self, pipeline, bundle):
        directory, _ = bundle
        store = MmapStore(pipeline.kb, directory=directory)
        try:
            assert store.features.dtype == pipeline.kb.features.dtype
            assert np.array_equal(store.features, pipeline.kb.features)
            h_ref = store.load(content_fingerprint(pipeline))
            assert h_ref is not None
            assert h_ref.dtype == np.float32
            assert np.array_equal(h_ref, pipeline.ref_embeddings())
        finally:
            store.close()

    def test_stale_fingerprint_not_served(self, pipeline, bundle):
        directory, _ = bundle
        store = MmapStore(pipeline.kb, directory=directory)
        try:
            assert store.load(content_fingerprint(pipeline) ^ 1) is None
        finally:
            store.close()

    def test_stale_feature_crc_triggers_repack(self, pipeline, bundle, tmp_path):
        # A bundle whose features disagree with the live KB must be
        # re-packed, never served: tamper both the array and the CRC.
        directory, _ = bundle
        stale = str(tmp_path / "stale")
        import shutil

        shutil.copytree(directory, stale)
        wrong = np.zeros_like(pipeline.kb.features)
        np.save(os.path.join(stale, FEATURES_NAME), wrong)
        manifest = _read_manifest(stale)
        manifest["features"]["crc"] = features_crc(wrong)
        with open(os.path.join(stale, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        store = MmapStore(pipeline.kb, directory=stale)
        try:
            assert np.array_equal(store.features, pipeline.kb.features)
            assert (
                _read_manifest(stale)["features"]["crc"]
                == features_crc(pipeline.kb.features)
            )
        finally:
            store.close()

    def test_manifest_strictness(self, pipeline, tmp_path):
        directory = str(tmp_path / "bad")
        pack_bundle(pipeline, directory, embeddings=False)
        path = os.path.join(directory, MANIFEST_NAME)
        manifest = _read_manifest(directory)
        manifest["compression"] = "zstd"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        with pytest.raises((StorageError, ValueError)):
            MmapStore(pipeline.kb, directory=directory)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        with pytest.raises(StorageError, match="unreadable bundle manifest"):
            MmapStore(pipeline.kb, directory=directory)

    def test_wrong_schema_version_rejected(self, pipeline, tmp_path):
        directory = str(tmp_path / "future")
        pack_bundle(pipeline, directory, embeddings=False)
        path = os.path.join(directory, MANIFEST_NAME)
        manifest = _read_manifest(directory)
        manifest["schema_version"] = 99
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        with pytest.raises(StorageError, match="schema_version"):
            MmapStore(pipeline.kb, directory=directory)

    def test_pack_without_embeddings(self, pipeline, tmp_path):
        directory = str(tmp_path / "lean")
        manifest = pack_bundle(pipeline, directory, embeddings=False)
        assert manifest["h_ref"] is None
        store = MmapStore(pipeline.kb, directory=directory)
        try:
            assert store.load(content_fingerprint(pipeline)) is None
            # store() persists and returns a map of the same bytes.
            h_ref = store.store(content_fingerprint(pipeline), pipeline.ref_embeddings())
            assert np.array_equal(h_ref, pipeline.ref_embeddings())
            assert store.load(content_fingerprint(pipeline)) is not None
        finally:
            store.close()

    def test_owned_temp_bundle_removed_on_close(self, pipeline):
        store = MmapStore(pipeline.kb)
        directory = store.directory
        assert os.path.exists(os.path.join(directory, FEATURES_NAME))
        store.close()
        store.close()  # idempotent
        assert not os.path.exists(directory)

    def test_pointed_at_bundle_survives_close(self, pipeline, bundle):
        directory, _ = bundle
        store = MmapStore(pipeline.kb, directory=directory)
        store.close()
        assert os.path.exists(os.path.join(directory, MANIFEST_NAME))
        with pytest.raises(StorageError, match="closed"):
            store.features


# ----------------------------------------------------------------------
# The shared-memory arena
# ----------------------------------------------------------------------
@needs_shm
class TestArena:
    def test_publish_attach_round_trip(self):
        arena = SharedMemoryArena()
        try:
            array = np.arange(12, dtype=np.float32).reshape(3, 4)
            spec = arena.publish("h", array)
            assert spec.nbytes == array.nbytes
            assert np.array_equal(arena.view("h"), array)
            attached, segment = attach_array(spec)
            try:
                assert np.array_equal(attached, array)
                assert not attached.flags.writeable
            finally:
                del attached
                segment.close()
        finally:
            arena.close()

    def test_update_is_in_place_and_versioned(self):
        arena = SharedMemoryArena()
        try:
            array = np.zeros((2, 2), dtype=np.float32)
            spec = arena.publish("h", array)
            attached, segment = attach_array(spec)
            try:
                fresh = np.full((2, 2), 7.0, dtype=np.float32)
                assert arena.version == 0
                arena.update("h", fresh)
                assert arena.version == 1
                # The live mapping sees the new bytes: nothing re-shipped.
                assert np.array_equal(attached, fresh)
            finally:
                del attached
                segment.close()
        finally:
            arena.close()

    def test_update_must_keep_dtype_and_shape(self):
        arena = SharedMemoryArena()
        try:
            arena.publish("h", np.zeros((2, 2), dtype=np.float32))
            with pytest.raises(StorageError, match="dtype/shape"):
                arena.update("h", np.zeros((3, 2), dtype=np.float32))
            with pytest.raises(StorageError, match="never published"):
                arena.update("x", np.zeros(1, dtype=np.float32))
        finally:
            arena.close()

    def test_duplicate_key_rejected(self):
        arena = SharedMemoryArena()
        try:
            arena.publish("h", np.zeros(1, dtype=np.float32))
            with pytest.raises(StorageError, match="already published"):
                arena.publish("h", np.zeros(1, dtype=np.float32))
        finally:
            arena.close()

    def test_close_unlinks_every_segment(self):
        arena = SharedMemoryArena()
        spec = arena.publish("h", np.zeros((4,), dtype=np.float32))
        assert arena.num_segments == 1
        arena.close()
        arena.close()  # idempotent
        with pytest.raises(StorageError, match="is gone"):
            attach_array(spec)
        with pytest.raises(StorageError, match="closed"):
            arena.publish("x", np.zeros(1, dtype=np.float32))


# ----------------------------------------------------------------------
# Cross-backend equivalence
# ----------------------------------------------------------------------
class TestCrossBackendEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self, pipeline, dataset):
        """Predictions from the unsharded memory-backed service, checked
        once against the sequential oracle; every combo must match them
        bitwise."""
        service = make_service(pipeline, "memory", "thread", shards=1)
        try:
            predictions = service.link_batch(dataset.test[:6])
        finally:
            service.close()
        for snippet, prediction in zip(dataset.test[:6], predictions):
            oracle = pipeline.disambiguate_snippet(snippet)
            assert prediction.ranked_entities == oracle.ranked_entities
        return predictions

    @pytest.mark.parametrize("kb_store", ["memory", "mmap"])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_scores_bit_identical_across_backends(
        self, pipeline, dataset, baseline, kb_store, backend, shards
    ):
        service = make_service(pipeline, kb_store, backend, shards)
        try:
            if backend == "process" and service.sharded.worker_pool is None:
                pytest.skip("process shard backend unavailable on this platform")
            assert service.kb_store.backend == kb_store
            predictions = service.link_batch(dataset.test[:6])
            for expected, actual in zip(baseline, predictions):
                assert actual.ranked_entities == expected.ranked_entities
                assert actual.scores == expected.scores  # bitwise, not approx
        finally:
            service.close()

    def test_mmap_bundle_reuse_skips_the_embedding_forward(
        self, pipeline, dataset, bundle
    ):
        # Serving from a packed bundle must load h_ref instead of
        # recomputing it — and still score identically.
        directory, _ = bundle
        calls = []
        original = EDPipeline.ref_embeddings

        def counting(self, *a, **k):
            calls.append(1)
            return original(self, *a, **k)

        try:
            EDPipeline.ref_embeddings = counting
            service = make_service(
                pipeline, "mmap", "thread", shards=1, bundle_path=directory
            )
        finally:
            EDPipeline.ref_embeddings = original
        try:
            assert not calls  # startup served the packed matrix
            prediction = service.link_batch(dataset.test[:1])[0]
            oracle = pipeline.disambiguate_snippet(dataset.test[0])
            assert prediction.ranked_entities == oracle.ranked_entities
        finally:
            service.close()


# ----------------------------------------------------------------------
# Arena-backed shard payloads, end to end
# ----------------------------------------------------------------------
@needs_shm
class TestArenaShardPayloads:
    @pytest.fixture()
    def service(self, pipeline):
        service = make_service(pipeline, "memory", "process", shards=2)
        if service.sharded.worker_pool is None:
            service.close()
            pytest.skip("process shard backend unavailable on this platform")
        yield service
        service.close()

    def test_startup_ships_less_than_the_matrices(self, service):
        # The acceptance bound: worker startup must ship descriptors, not
        # pickled matrices — total pipe traffic stays under the matrices'
        # own nbytes (the classic path ships strictly more than that).
        pool = service.sharded.worker_pool
        assert pool.arena is not None
        assert pool.payload_ship_bytes < pool.payload_matrix_nbytes
        # 3 arrays (node_ids, h_ref, x_ref) per shard.
        assert pool.arena.num_segments == 3 * 2
        assert service.sharded.arena_segments == 6

    def test_distribute_is_an_in_place_publish(self, service, pipeline, dataset):
        # A warm-start refresh must rewrite the existing segments (same
        # names, bumped version) and ship nothing matrix-sized.
        pool = service.sharded.worker_pool
        names_before = sorted(pool.arena.segment_names)
        version_before = pool.arena.version
        shipped_before = pool.payload_ship_bytes
        param = pipeline.model.parameters()[-1]
        original = param.data.copy()
        try:
            param.data = param.data + 0.25
            pipeline.invalidate_ref_cache()
            service.refresh()
            assert sorted(pool.arena.segment_names) == names_before
            assert pool.arena.version > version_before
            refresh_traffic = pool.payload_ship_bytes - shipped_before
            assert 0 < refresh_traffic < pool.payload_matrix_nbytes
            snippet = dataset.test[0]
            oracle = pipeline.disambiguate_snippet(snippet)
            assert (
                service.link_batch([snippet])[0].ranked_entities
                == oracle.ranked_entities
            )
            assert service.stats.publishes >= 1
        finally:
            param.data = original
            pipeline.invalidate_ref_cache()
            service.refresh()

    def test_segments_unlinked_after_close(self, pipeline, dataset):
        from multiprocessing import shared_memory

        service = make_service(pipeline, "memory", "process", shards=2)
        pool = service.sharded.worker_pool
        if pool is None:
            service.close()
            pytest.skip("process shard backend unavailable on this platform")
        names = list(pool.arena.segment_names)
        assert names
        service.link_batch(dataset.test[:2])
        service.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_segments_survive_a_killed_worker_and_still_unlink(
        self, pipeline, dataset
    ):
        # SIGKILL one worker mid-life: the respawn must reuse the same
        # published segments (workers never own them), scoring must stay
        # exact, and close() must still unlink everything.
        from multiprocessing import shared_memory

        service = LinkingService(
            pipeline,
            ServiceConfig(
                num_shards=2,
                shard_backend="process",
                cache_size=0,  # force the post-kill batch through the pool
                storage=StorageConfig(kb_store="memory"),
            ),
        )
        pool = service.sharded.worker_pool
        if pool is None:
            service.close()
            pytest.skip("process shard backend unavailable on this platform")
        names = sorted(pool.arena.segment_names)
        before = service.link_batch(dataset.test[:2])
        victim = pool.processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        assert not victim.is_alive()
        after = service.link_batch(dataset.test[:2])
        assert pool.respawns >= 1
        for expected, actual in zip(before, after):
            assert actual.ranked_entities == expected.ranked_entities
            assert actual.scores == expected.scores
        assert sorted(pool.arena.segment_names) == names  # same segments
        service.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_share_payloads_false_uses_the_pickled_path(self, pipeline):
        service = LinkingService(
            pipeline,
            ServiceConfig(
                num_shards=2,
                shard_backend="process",
                storage=StorageConfig(share_payloads=False),
            ),
        )
        try:
            pool = service.sharded.worker_pool
            if pool is None:
                pytest.skip("process shard backend unavailable on this platform")
            assert pool.arena is None
            # The classic path pickles the matrices into the pipes.
            assert pool.payload_ship_bytes > pool.payload_matrix_nbytes
        finally:
            service.close()


# ----------------------------------------------------------------------
# Storage telemetry
# ----------------------------------------------------------------------
class TestStorageStats:
    def test_stats_carry_the_storage_block(self, pipeline):
        service = make_service(pipeline, "mmap", "thread", shards=1)
        try:
            payload = service.stats.to_dict()
            assert payload["storage_backend"] == "mmap"
            for key in ("payload_ship_bytes", "arena_segments", "publishes",
                        "publish_ms"):
                assert key in payload
            text = service.stats.to_prometheus()
            assert 'storage_info{backend="mmap"} 1' in text
            assert "storage_payload_ship_bytes" in text
        finally:
            service.close()

    @needs_shm
    def test_process_backend_reports_ship_bytes(self, pipeline):
        service = make_service(pipeline, "memory", "process", shards=2)
        try:
            if service.sharded.worker_pool is None:
                pytest.skip("process shard backend unavailable on this platform")
            payload = service.stats.to_dict()
            assert payload["storage_backend"] == "memory"
            assert payload["payload_ship_bytes"] > 0
            assert payload["arena_segments"] == 6
        finally:
            service.close()
