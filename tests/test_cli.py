"""Tests for the command-line interface (repro.cli).

All commands are exercised in-process through ``main(argv)`` at tiny
scale so the suite stays fast.
"""

import json
import os

import pytest

from repro.cli import build_parser, main

SCALE = "0.2"
SNIPPET_TEXT = (
    "The patient presented with mild spinal hyperplasia, "
    "congenital cardiac cancer and primary dermal necrosis."
)


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """A tiny trained checkpoint shared by the link/explain tests."""
    out = str(tmp_path_factory.mktemp("cli_ckpt"))
    code = main(
        [
            "train",
            "--dataset", "NCBI",
            "--scale", SCALE,
            "--epochs", "2",
            "--variant", "graphsage",
            "--out", out,
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_subcommands_have_help(self, capsys):
        for command in (
            "datasets", "synth", "train", "evaluate", "link", "serve", "explain",
            "config", "reproduce", "kb",
        ):
            with pytest.raises(SystemExit) as exc:
                build_parser().parse_args([command, "--help"])
            assert exc.value.code == 0

    def test_reproduce_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--experiment", "table99"])


class TestDatasets:
    def test_profile_only_lists_table2(self, capsys):
        assert main(["datasets", "--profile-only"]) == 0
        out = capsys.readouterr().out
        assert "35028" in out  # MDX nodes
        assert "284542" in out  # MIMIC-III edges
        for name in ("MDX", "MIMIC-III", "NCBI", "ShARe", "BioCDR"):
            assert name in out


class TestSynth:
    def test_writes_kb_and_splits(self, tmp_path, capsys):
        out = str(tmp_path / "synth")
        assert main(["synth", "--dataset", "NCBI", "--scale", SCALE, "--out", out]) == 0
        for name in ("kb.json", "train.jsonl", "val.jsonl", "test.jsonl"):
            assert os.path.exists(os.path.join(out, name))
        # The written corpus parses back.
        from repro.text import load_snippets

        snippets = load_snippets(os.path.join(out, "train.jsonl"))
        assert snippets
        assert all(s.ambiguous_mention.mention for s in snippets)

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            main(["synth", "--dataset", "NOPE", "--out", str(tmp_path)])


class TestTrainAndLink:
    def test_checkpoint_contents(self, checkpoint):
        for name in ("kb.json", "config.json", "weights.npz"):
            assert os.path.exists(os.path.join(checkpoint, name))

    def test_link_text(self, checkpoint, capsys):
        assert main(
            ["link", "--checkpoint", checkpoint, "--text", SNIPPET_TEXT, "--top-k", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "mention:" in out

    def test_link_json_output(self, checkpoint, capsys):
        assert main(
            ["link", "--checkpoint", checkpoint, "--text", SNIPPET_TEXT, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mention"]
        assert payload["candidates"]
        assert {"entity_id", "name", "score"} <= set(payload["candidates"][0])

    def test_link_missing_checkpoint_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["link", "--checkpoint", str(tmp_path / "nope"), "--text", "x"])

    def test_explain_prints_edges(self, checkpoint, capsys):
        assert main(
            [
                "explain",
                "--checkpoint", checkpoint,
                "--text", SNIPPET_TEXT,
                "--opt-epochs", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "match:" in out


class TestServe:
    def test_dataset_split_with_stats(self, checkpoint, capsys):
        assert main(
            [
                "serve",
                "--checkpoint", checkpoint,
                "--dataset", "NCBI",
                "--scale", SCALE,
                "--limit", "6",
                "--batch-size", "4",
                "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "serving stats:" in out
        assert "mentions_per_second" in out

    def test_sharded_process_backend_split(self, checkpoint, capsys):
        # --shard-backend process plumbs through Linker.serve into the
        # ShardWorkerPool (degrading to threads only where fork/spawn is
        # unavailable); results stay identical either way.
        assert main(
            [
                "serve",
                "--checkpoint", checkpoint,
                "--dataset", "NCBI",
                "--scale", SCALE,
                "--limit", "4",
                "--batch-size", "4",
                "--shards", "2",
                "--shard-backend", "process",
                "--json",
            ]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 4
        assert all("candidates" in line for line in lines)

    def test_text_file_json(self, checkpoint, tmp_path, capsys):
        texts = tmp_path / "texts.txt"
        texts.write_text(SNIPPET_TEXT + "\n\n" + SNIPPET_TEXT + "\n")
        assert main(
            [
                "serve",
                "--checkpoint", checkpoint,
                "--input", str(texts),
                "--json",
                "--stats",
            ]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 3  # two predictions + the stats payload
        assert {"entity_id", "name", "score"} <= set(lines[0]["candidates"][0])
        assert lines[2]["stats"]["mentions"] == 2

    def test_snippet_jsonl_input(self, checkpoint, tmp_path, capsys):
        from repro.datasets import load_dataset
        from repro.text import save_snippets

        dataset = load_dataset("NCBI", scale=float(SCALE))
        corpus = tmp_path / "snippets.jsonl"
        save_snippets(dataset.test[:4], str(corpus))
        assert main(
            ["serve", "--checkpoint", checkpoint, "--input", str(corpus)]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("->") == 4

    def test_empty_input_exits(self, checkpoint, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["serve", "--checkpoint", checkpoint, "--input", str(empty)])

    def test_stdin_streaming(self, checkpoint, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(SNIPPET_TEXT + "\n\n" + SNIPPET_TEXT + "\n"))
        assert main(
            ["serve", "--checkpoint", checkpoint, "--input", "-", "--batch-size", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("->") == 2

    def test_stdin_async_sharded_json(self, checkpoint, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(SNIPPET_TEXT + "\n" + SNIPPET_TEXT + "\n"))
        assert main(
            [
                "serve",
                "--checkpoint", checkpoint,
                "--input", "-",
                "--async",
                "--deadline-ms", "20",
                "--shards", "2",
                "--json",
                "--stats",
            ]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 3  # two predictions + the stats payload
        assert {"entity_id", "name", "score"} <= set(lines[0]["candidates"][0])
        stats = lines[2]["stats"]
        assert stats["mentions"] == 2
        assert "latency_p95_ms" in stats and "queue_wait_p95_ms" in stats

    def test_stdin_bad_line_emits_error_record(self, checkpoint, capsys, monkeypatch):
        # One unparseable line must not kill a long-running pipe: it
        # becomes a structured ErrorResponse record and the stream goes on.
        import io

        bad_snippet = json.dumps({"Text": "snippet json missing keys"})
        stream = "\n".join([SNIPPET_TEXT, bad_snippet, "xqzt gibberish", SNIPPET_TEXT])
        monkeypatch.setattr("sys.stdin", io.StringIO(stream + "\n"))
        assert main(
            ["serve", "--checkpoint", checkpoint, "--input", "-", "--json",
             "--batch-size", "1"]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        predictions = [line for line in lines if "candidates" in line]
        errors = [line for line in lines if line.get("code") == "parse_error"]
        assert len(predictions) == 2
        assert len(errors) == 2
        from repro.serving import WIRE_SCHEMA_VERSION

        assert errors[0]["schema_version"] == WIRE_SCHEMA_VERSION
        assert errors[0]["detail"] == bad_snippet

    def test_file_input_bad_line_still_aborts(self, checkpoint, tmp_path):
        # Outside the streaming mode a bad line is a usage error: the
        # file is all there up front, so fail loudly instead of skipping.
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"Text": "x"}) + "\n")
        with pytest.raises(SystemExit, match="bad snippet JSON"):
            main(["serve", "--checkpoint", checkpoint, "--input", str(bad)])

    def test_http_mode(self, checkpoint, capsys, monkeypatch):
        # --http swaps local input for the network front door; the
        # foreground wait is monkeypatched into a client-driven session.
        from repro.serving import LinkerClient

        seen = {}

        def drive(server):
            with LinkerClient(port=server.port) as client:
                seen["health"] = client.healthz()["status"]
                seen["prediction"] = client.link(text=SNIPPET_TEXT, top_k=2)

        monkeypatch.setattr("repro.cli._http_wait", drive)
        assert main(
            ["serve", "--checkpoint", checkpoint, "--http", "0", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving on http://127.0.0.1:" in out
        assert "serving stats:" in out
        assert seen["health"] == "ok"
        assert 1 <= len(seen["prediction"].entity_ids) <= 2
        assert len(seen["prediction"].entity_names) == len(seen["prediction"].entity_ids)

    def test_http_rejects_bad_port(self, checkpoint):
        with pytest.raises(SystemExit, match="port"):
            main(["serve", "--checkpoint", checkpoint, "--http", "70000"])

    def test_async_matches_sync_on_split(self, checkpoint, capsys):
        argv = [
            "serve",
            "--checkpoint", checkpoint,
            "--dataset", "NCBI",
            "--scale", SCALE,
            "--limit", "4",
            "--json",
        ]
        assert main(argv) == 0
        sync_out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert main(argv + ["--async", "--deadline-ms", "15", "--shards", "2"]) == 0
        async_out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        for a, b in zip(sync_out, async_out):
            assert a["mention"] == b["mention"]
            assert [c["entity_id"] for c in a["candidates"]] == [
                c["entity_id"] for c in b["candidates"]
            ]

    def test_bad_deadline_rejected(self, checkpoint):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--checkpoint", checkpoint,
                    "--input", "-",
                    "--async",
                    "--deadline-ms", "0",
                ]
            )


class TestConfig:
    def test_dump_prints_valid_config(self, capsys):
        from repro.api import LinkerConfig

        assert main(
            ["config", "dump", "--dataset", "NCBI", "--variant", "rgcn", "--epochs", "7"]
        ) == 0
        config = LinkerConfig.from_json(capsys.readouterr().out)
        assert config.model.variant == "rgcn"
        assert config.train.epochs == 7
        assert config.model.num_layers == 2  # NCBI's Table 5 best

    def test_dump_fuzzy_flag(self, capsys):
        from repro.api import LinkerConfig

        assert main(["config", "dump", "--variant", "graphsage", "--fuzzy"]) == 0
        config = LinkerConfig.from_json(capsys.readouterr().out)
        assert config.candidate_generator == "fuzzy"

    def test_dump_validate_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "linker.json")
        assert main(["config", "dump", "--variant", "graphsage", "--out", path]) == 0
        assert main(["config", "validate", path]) == 0
        out = capsys.readouterr().out
        assert "valid LinkerConfig" in out
        assert "variant=graphsage" in out

    def test_validate_rejects_bad_config(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(SystemExit, match="schema_version"):
            main(["config", "validate", str(path)])

    def test_validate_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["config", "validate", str(tmp_path / "nope.json")])

    def test_validate_rejects_incomplete_section_cleanly(self, tmp_path):
        # No raw KeyError traceback: a sited SystemExit instead.
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"schema_version": 1, "train": {"epochs": 10}}))
        with pytest.raises(SystemExit, match="bad train section"):
            main(["config", "validate", str(path)])

    def test_dump_rejects_scale_flag(self):
        # --scale is a dataset knob with no LinkerConfig field; accepting
        # and ignoring it would be a silent no-op.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["config", "dump", "--scale", "0.5"])

    def test_checkpoint_is_self_describing(self, checkpoint):
        assert main(["config", "validate", os.path.join(checkpoint, "linker.json")]) == 0

    def test_train_consumes_dumped_config(self, tmp_path, capsys):
        # The ROADMAP's "repro train --config linker.json": a dumped
        # LinkerConfig is the whole construction recipe for training.
        path = str(tmp_path / "linker.json")
        assert main(
            ["config", "dump", "--variant", "graphsage", "--epochs", "2",
             "--layers", "2", "--out", path]
        ) == 0
        out = str(tmp_path / "ckpt")
        assert main(
            ["train", "--dataset", "NCBI", "--scale", SCALE, "--config", path,
             "--out", out]
        ) == 0
        assert "ED-GNN(graphsage)" in capsys.readouterr().out
        # The checkpoint's linker.json carries the dumped config through.
        with open(os.path.join(out, "linker.json"), encoding="utf-8") as fh:
            saved = json.load(fh)
        assert saved["model"]["variant"] == "graphsage"
        assert saved["train"]["epochs"] == 2

    def test_train_config_rejects_conflicting_flags(self, tmp_path):
        # --config is the whole recipe; silently ignoring --variant etc.
        # would train a different model than asked for.
        path = str(tmp_path / "linker.json")
        assert main(["config", "dump", "--variant", "graphsage", "--epochs", "2",
                     "--out", path]) == 0
        with pytest.raises(SystemExit, match="--variant"):
            main(["train", "--dataset", "NCBI", "--scale", SCALE,
                  "--config", path, "--variant", "gat"])

    def test_train_config_must_parse(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(SystemExit, match="schema_version"):
            main(["train", "--dataset", "NCBI", "--scale", SCALE,
                  "--config", str(path)])
        with pytest.raises(SystemExit, match="cannot read"):
            main(["train", "--dataset", "NCBI", "--scale", SCALE,
                  "--config", str(tmp_path / "nope.json")])


class TestEvaluate:
    def test_json_payload(self, capsys):
        assert main(
            [
                "evaluate",
                "--dataset", "NCBI",
                "--system", "NormCo",
                "--scale", SCALE,
                "--epochs", "2",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "NormCo"
        assert 0.0 <= payload["f1"] <= 1.0


class TestReproduce:
    def test_table2(self, capsys):
        assert main(
            ["reproduce", "--experiment", "table2", "--datasets", "NCBI", "--scale", SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "NCBI" in out

    def test_fig4b_prints_curves(self, capsys):
        assert main(
            [
                "reproduce",
                "--experiment", "fig4b",
                "--datasets", "NCBI",
                "--scale", SCALE,
                "--epochs", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "NCBI" in out
        assert "ep0:" in out

    def test_table3_grid(self, capsys):
        assert main(
            [
                "reproduce",
                "--experiment", "table3",
                "--datasets", "NCBI",
                "--systems", "NormCo", "graphsage",
                "--scale", SCALE,
                "--epochs", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "graphsage" in out

    def test_table5_layer_sweep(self, capsys):
        assert main(
            [
                "reproduce",
                "--experiment", "table5",
                "--datasets", "NCBI",
                "--scale", SCALE,
                "--epochs", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "4 layers" in out


class TestKbPack:
    def test_pack_json_and_serve_from_bundle(self, checkpoint, tmp_path, capsys):
        bundle = str(tmp_path / "bundle")
        assert main(
            ["kb", "pack", "--checkpoint", checkpoint, "--out", bundle, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bundle"] == bundle
        manifest = payload["manifest"]
        assert manifest["schema_version"] == 1
        assert manifest["h_ref"]["fingerprint"]
        for name in ("manifest.json", "features.npy", "h_ref.npy"):
            assert os.path.exists(os.path.join(bundle, name))
        # The packed bundle serves: --kb-bundle implies --kb-store mmap.
        assert main(
            [
                "serve",
                "--checkpoint", checkpoint,
                "--dataset", "NCBI",
                "--scale", SCALE,
                "--limit", "4",
                "--kb-bundle", bundle,
                "--json",
                "--stats",
            ]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 5  # four predictions + the stats payload
        assert lines[4]["stats"]["storage_backend"] == "mmap"

    def test_pack_without_embeddings(self, checkpoint, tmp_path, capsys):
        bundle = str(tmp_path / "lean")
        assert main(
            ["kb", "pack", "--checkpoint", checkpoint, "--out", bundle,
             "--no-embeddings"]
        ) == 0
        out = capsys.readouterr().out
        assert "packed KB bundle" in out
        assert "not packed" in out
        assert not os.path.exists(os.path.join(bundle, "h_ref.npy"))

    def test_pack_with_index_and_indexed_serve(self, checkpoint, tmp_path, capsys):
        bundle = str(tmp_path / "indexed_bundle")
        assert main(
            ["kb", "pack", "--checkpoint", checkpoint, "--out", bundle,
             "--with-index", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["manifest"]["retrieval"]
        assert entry["backend"] == "ngram"
        assert entry["fingerprint"]
        for name in entry["arrays"]:
            assert os.path.exists(os.path.join(bundle, f"retrieval_{name}.npy"))
        # Serving --candidates indexed from that bundle maps the packed
        # index (same KB + config -> matching fingerprint) and reports
        # the generator through ServiceStats.
        assert main(
            [
                "serve",
                "--checkpoint", checkpoint,
                "--dataset", "NCBI",
                "--scale", SCALE,
                "--limit", "4",
                "--kb-bundle", bundle,
                "--candidates", "indexed",
                "--json",
                "--stats",
            ]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 5  # four predictions + the stats payload
        assert lines[4]["stats"]["candidate_generator"] == "indexed"

    def test_pack_with_index_backend_override(self, checkpoint, tmp_path, capsys):
        bundle = str(tmp_path / "lsh_bundle")
        assert main(
            ["kb", "pack", "--checkpoint", checkpoint, "--out", bundle,
             "--with-index", "--index-backend", "lsh", "--no-embeddings"]
        ) == 0
        out = capsys.readouterr().out
        assert "retrieval lsh index" in out
        assert os.path.exists(os.path.join(bundle, "retrieval_planes.npy"))

    def test_serve_kb_store_mmap_without_bundle(self, checkpoint, capsys):
        # No --kb-bundle: the mmap store packs a private temporary bundle
        # and removes it on close; results are unchanged.
        assert main(
            [
                "serve",
                "--checkpoint", checkpoint,
                "--dataset", "NCBI",
                "--scale", SCALE,
                "--limit", "4",
                "--kb-store", "mmap",
                "--shards", "2",
                "--json",
                "--stats",
            ]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines[4]["stats"]["storage_backend"] == "mmap"
        assert all("candidates" in line for line in lines[:4])

    def test_kb_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kb"])


class TestServeSigpipe:
    def test_closed_stdout_during_storage_init_exits_clean(self, checkpoint):
        # A downstream consumer hanging up while serve is still packing /
        # mapping the bundle (storage init) must end the process SIGPIPE-
        # clean: exit 0, no traceback on stderr — for both the plain and
        # the process-shard + arena paths.
        import subprocess
        import sys

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src")
        for extra in ([], ["--shards", "2", "--shard-backend", "process"]):
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--checkpoint", checkpoint,
                    "--input", "-",
                    "--kb-store", "mmap",
                    *extra,
                ],
                cwd=root,
                env=env,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            proc.stdout.close()  # hang up before the first prediction
            proc.stdin.write((SNIPPET_TEXT + "\n").encode())
            proc.stdin.close()
            stderr = proc.stderr.read()
            assert proc.wait(timeout=120) == 0, stderr.decode()
            assert b"Traceback" not in stderr
