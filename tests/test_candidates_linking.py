"""Tests for fuzzy candidate generation and the end-to-end linking
evaluation (ranking view)."""

import pytest

from repro.core import (
    Candidate,
    EDPipeline,
    FuzzyCandidateGenerator,
    ModelConfig,
    TrainConfig,
)
from repro.datasets import load_dataset
from repro.eval import evaluate_linking
from repro.graph import HeteroGraph, medical_schema
from repro.text import HashingNgramEmbedder


@pytest.fixture
def toy_kb():
    kb = HeteroGraph(medical_schema())
    kb.proteinuria = kb.add_node("Finding", "proteinuria")
    kb.nephrosis = kb.add_node("Finding", "nephrosis", aliases=("renal disorder",))
    kb.renal = kb.add_node("Finding", "acute renal failure", aliases=("ARF",))
    kb.aspirin = kb.add_node("Drug", "aspirin")
    kb.nausea = kb.add_node("AdverseEffect", "nausea")
    kb.add_edge_by_name(kb.aspirin, kb.nausea, "CAUSE")
    kb.add_edge_by_name(kb.nausea, kb.renal, "HAS")
    return kb


class TestFuzzyCandidates:
    def test_exact_hits_come_from_index(self, toy_kb):
        gen = FuzzyCandidateGenerator(toy_kb)
        out = gen.candidates("proteinuria")
        assert out == [Candidate(toy_kb.proteinuria, 1.0, "index")]

    def test_alias_hits_come_from_index(self, toy_kb):
        gen = FuzzyCandidateGenerator(toy_kb)
        out = gen.candidates("renal disorder")
        assert out[0].node == toy_kb.nephrosis
        assert out[0].source == "index"

    def test_typo_recovered_by_ngram_fallback(self, toy_kb):
        gen = FuzzyCandidateGenerator(toy_kb)
        out = gen.candidates("protienuria")  # transposed typo, not indexed
        assert out, "fuzzy retrieval found nothing"
        assert out[0].node == toy_kb.proteinuria
        assert out[0].source == "ngram"
        assert out[0].score < 1.0

    def test_garbage_yields_nothing(self, toy_kb):
        gen = FuzzyCandidateGenerator(toy_kb)
        assert gen.candidates("zzzz qqqq xxxx") == []

    def test_edit_filter_rejects_distant_names(self, toy_kb):
        strict = FuzzyCandidateGenerator(toy_kb, max_edit_ratio=0.2)
        loose = FuzzyCandidateGenerator(toy_kb, max_edit_ratio=1.0)
        surface = "nephrosys"  # edit distance 2 of "nephrosis" (len 9)
        assert any(c.node == toy_kb.nephrosis for c in loose.candidates(surface))
        strict_nodes = [c.node for c in strict.candidates(surface)]
        loose_nodes = [c.node for c in loose.candidates(surface)]
        assert set(strict_nodes) <= set(loose_nodes)

    def test_top_k_respected_and_validated(self, toy_kb):
        gen = FuzzyCandidateGenerator(toy_kb, min_similarity=0.0, max_edit_ratio=1.0)
        assert len(gen.candidates("nephro", top_k=2)) <= 2
        with pytest.raises(ValueError):
            gen.candidates("nephro", top_k=0)

    def test_candidate_ids_format(self, toy_kb):
        gen = FuzzyCandidateGenerator(toy_kb)
        ids = gen.candidate_ids("aspirin")
        assert ids == [toy_kb.aspirin]


class TestPipelineFuzzyIntegration:
    @pytest.fixture(scope="class")
    def pipelines(self):
        dataset = load_dataset("NCBI", scale=0.2, use_cache=False)
        kwargs = dict(
            model_config=ModelConfig(
                variant="graphsage", num_layers=2, feature_dim=32, hidden_dim=32
            ),
            train_config=TrainConfig(epochs=2, patience=5, seed=0),
            embedder=HashingNgramEmbedder(dim=32),
        )
        from repro.core import ExactCandidateGenerator, FuzzyFallbackCandidateGenerator

        plain = EDPipeline(dataset.kb, candidate_generator=ExactCandidateGenerator, **kwargs)
        plain.fit(dataset.train, dataset.val, dataset.test)
        fuzzy = EDPipeline(
            dataset.kb, candidate_generator=FuzzyFallbackCandidateGenerator, **kwargs
        )
        fuzzy.fit(dataset.train, dataset.val, dataset.test)
        return dataset, plain, fuzzy

    def test_fuzzy_narrows_typo_candidates(self, pipelines):
        dataset, plain, fuzzy = pipelines
        name = dataset.kb.node_name(0)
        typo = name[:-2] + name[-1] + name[-2]  # swap last two characters
        text = f"Observed {typo} together with {dataset.kb.node_name(1)}."
        snippet_plain = plain.snippet_from_text(text, ambiguous_surface=typo)
        snippet_fuzzy = fuzzy.snippet_from_text(text, ambiguous_surface=typo)
        p_plain = plain.disambiguate_snippet(snippet_plain, top_k=20)
        p_fuzzy = fuzzy.disambiguate_snippet(snippet_fuzzy, top_k=20)
        # The fuzzy pipeline ranks within a focused candidate pool; the
        # plain one falls back to every same-type entity.
        assert 0 in p_fuzzy.ranked_entities or p_fuzzy.ranked_entities
        assert len(p_fuzzy.ranked_entities) <= len(p_plain.ranked_entities) or (
            0 in p_fuzzy.ranked_entities
        )

    def test_fuzzy_flag_round_trips_checkpoint(self, pipelines, tmp_path):
        from repro.core import FuzzyFallbackCandidateGenerator, load_pipeline, save_pipeline

        _, _, fuzzy = pipelines
        save_pipeline(fuzzy, str(tmp_path))
        loaded = load_pipeline(str(tmp_path))
        assert loaded.fuzzy_candidates is True
        assert isinstance(loaded.candidate_generator, FuzzyFallbackCandidateGenerator)


class TestLinkingEvaluation:
    @pytest.fixture(scope="class")
    def trained(self):
        dataset = load_dataset("NCBI", scale=0.2, use_cache=False)
        pipeline = EDPipeline(
            dataset.kb,
            model_config=ModelConfig(
                variant="graphsage", num_layers=2, feature_dim=32, hidden_dim=32
            ),
            train_config=TrainConfig(epochs=3, patience=5, seed=0),
            embedder=HashingNgramEmbedder(dim=32),
        )
        pipeline.fit(dataset.train, dataset.val, dataset.test)
        return dataset, pipeline

    def test_metric_bounds_and_ordering(self, trained):
        dataset, pipeline = trained
        snippets = dataset.test[:30]
        result = evaluate_linking(pipeline, snippets, top_k=5)
        assert result.n_evaluated == len(snippets)
        assert 0.0 <= result.hits_at_1 <= result.hits_at_k <= 1.0
        assert result.hits_at_1 <= result.mrr <= 1.0

    def test_ranks_recorded(self, trained):
        dataset, pipeline = trained
        result = evaluate_linking(pipeline, dataset.test[:10], top_k=3)
        assert len(result.ranks) == 10
        for rank in result.ranks:
            assert rank is None or 1 <= rank <= 3

    def test_unlabeled_snippets_skipped(self, trained):
        dataset, pipeline = trained
        snippet = pipeline.snippet_from_text(dataset.test[0].text)
        result = evaluate_linking(pipeline, [snippet], top_k=3)
        assert result.n_evaluated == 0
        assert result.n_skipped == 1

    def test_top_k_validated(self, trained):
        _, pipeline = trained
        with pytest.raises(ValueError):
            evaluate_linking(pipeline, [], top_k=0)
