"""Tests for metapaths, traversal, batching, the inverted index, and IO."""

import numpy as np
import pytest

from repro.graph import (
    HeteroGraph,
    InvertedIndex,
    Metapath,
    batch_graphs,
    connected_components,
    default_metapaths,
    derive_acronym,
    ego_subgraph,
    enumerate_instances,
    graph_from_dict,
    graph_to_dict,
    induced_subgraph,
    k_hop_nodes,
    load_graph,
    medical_schema,
    normalize_surface,
    random_walk,
    save_graph,
    shortest_path_length,
    unbatch_node_ids,
)
from repro.graph.metapath import select_metapaths


@pytest.fixture
def toy():
    g = HeteroGraph(medical_schema())
    g.aspirin = g.add_node("Drug", "aspirin")
    g.metformin = g.add_node("Drug", "metformin")
    g.nausea = g.add_node("AdverseEffect", "nausea")
    g.diarrhea = g.add_node("AdverseEffect", "diarrhea")
    g.fever = g.add_node("Finding", "fever")
    g.arf = g.add_node("Finding", "acute renal failure", aliases=("ARF",))
    g.arf2 = g.add_node("Finding", "acute respiratory failure")
    g.add_edge_by_name(g.aspirin, g.nausea, "CAUSE")
    g.add_edge_by_name(g.metformin, g.diarrhea, "CAUSE")
    g.add_edge_by_name(g.diarrhea, g.fever, "HAS")
    g.add_edge_by_name(g.nausea, g.arf, "HAS")
    return g


class TestMetapath:
    def test_requires_two_types(self):
        with pytest.raises(ValueError):
            Metapath(("Drug",))

    def test_abbreviation_and_target(self):
        mp = Metapath(("Drug", "AdverseEffect", "Finding"))
        assert mp.abbreviation == "DAF"
        assert mp.target_type == "Drug"
        assert mp.length == 3

    def test_enumerate_paper_example(self, toy):
        mp = Metapath(("Drug", "AdverseEffect", "Finding"))
        inst = enumerate_instances(toy, mp)
        paths = inst.paths.tolist()
        assert [toy.metformin, toy.diarrhea, toy.fever] in paths
        assert [toy.aspirin, toy.nausea, toy.arf] in paths
        np.testing.assert_array_equal(inst.targets, inst.paths[:, 0])

    def test_enumeration_is_undirected(self, toy):
        # Finding-AdverseEffect traverses HAS edges backwards.
        inst = enumerate_instances(toy, Metapath(("Finding", "AdverseEffect")))
        assert [toy.fever, toy.diarrhea] in inst.paths.tolist()

    def test_cap_respected(self, toy):
        # Add many findings to nausea to exceed the cap.
        for i in range(10):
            f = toy.add_node("Finding", f"finding {i}")
            toy.add_edge_by_name(toy.nausea, f, "HAS")
        inst = enumerate_instances(
            toy, Metapath(("AdverseEffect", "Finding")), max_instances_per_node=4
        )
        per_target = np.bincount(inst.targets, minlength=toy.num_nodes)
        assert per_target.max() <= 4

    def test_no_instances_empty_matrix(self, toy):
        inst = enumerate_instances(toy, Metapath(("Symptom", "Drug")))
        assert inst.num_instances == 0
        assert inst.paths.shape == (0, 2)

    def test_default_metapaths_cover_pairs(self):
        schema = medical_schema()
        mps = default_metapaths(schema)
        pair_strs = {str(m) for m in mps if m.length == 2}
        assert "Drug-AdverseEffect" in pair_strs
        assert "AdverseEffect-Drug" in pair_strs

    def test_select_metapaths_pairs_first(self, toy):
        selected = select_metapaths(toy, max_metapaths=10)
        observed_pairs = {str(m) for m in selected if m.length == 2}
        # Every observed type pair must be present as a 2-metapath.
        assert "Drug-AdverseEffect" in observed_pairs
        assert "AdverseEffect-Finding" in observed_pairs
        assert len(selected) <= 10


class TestTraversal:
    def test_k_hop(self, toy):
        hops1 = set(k_hop_nodes(toy, toy.aspirin, 1).tolist())
        assert hops1 == {toy.aspirin, toy.nausea}
        hops2 = set(k_hop_nodes(toy, toy.aspirin, 2).tolist())
        assert toy.arf in hops2

    def test_ego_subgraph_maps_ids(self, toy):
        sub, mapping = ego_subgraph(toy, toy.aspirin, 2)
        assert sub.num_nodes == 3
        assert sub.node_name(mapping[toy.arf]) == "acute renal failure"
        # Edges survive with their relations.
        rel = sub.edge_between(mapping[toy.nausea], mapping[toy.arf])
        assert sub.schema.relation(rel).name == "HAS"

    def test_induced_subgraph_keeps_features(self, toy):
        toy.set_features(np.arange(toy.num_nodes * 2, dtype=np.float32).reshape(-1, 2))
        sub, mapping = induced_subgraph(toy, np.array([toy.aspirin, toy.nausea]))
        np.testing.assert_allclose(sub.features[mapping[toy.nausea]], toy.features[toy.nausea])

    def test_connected_components(self, toy):
        comps = connected_components(toy)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 3, 3]  # arf2 isolated; two 3-node chains

    def test_shortest_path(self, toy):
        assert shortest_path_length(toy, toy.aspirin, toy.arf) == 2
        assert shortest_path_length(toy, toy.aspirin, toy.arf2) is None
        assert shortest_path_length(toy, toy.aspirin, toy.aspirin) == 0
        assert shortest_path_length(toy, toy.aspirin, toy.arf, cutoff=1) is None

    def test_random_walk_stays_on_graph(self, toy):
        rng = np.random.default_rng(0)
        walk = random_walk(toy, toy.aspirin, 5, rng)
        assert walk[0] == toy.aspirin
        for a, b in zip(walk, walk[1:]):
            assert b in toy.neighbors(a).tolist()


class TestBatching:
    def test_disjoint_union(self, toy):
        union, offsets = batch_graphs([toy, toy])
        assert union.num_nodes == 2 * toy.num_nodes
        assert union.num_edges == 2 * toy.num_edges
        assert offsets == [0, toy.num_nodes]

    def test_unbatch_ids(self, toy):
        _, offsets = batch_graphs([toy, toy])
        ids = unbatch_node_ids(offsets, 1, [0, 2])
        np.testing.assert_array_equal(ids, [toy.num_nodes, toy.num_nodes + 2])

    def test_features_stacked(self, toy):
        toy.set_features(np.ones((toy.num_nodes, 3), dtype=np.float32))
        union, _ = batch_graphs([toy, toy])
        assert union.features.shape == (2 * toy.num_nodes, 3)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])


class TestInvertedIndex:
    def test_exact_and_alias_lookup(self, toy):
        idx = InvertedIndex(toy)
        assert idx.lookup("Aspirin") == [toy.aspirin]
        assert idx.lookup("acute renal failure") == [toy.arf]
        # Alias "ARF" on arf + derived acronym of arf2.
        assert set(idx.lookup("ARF")) == {toy.arf, toy.arf2}

    def test_ambiguity_detection(self, toy):
        idx = InvertedIndex(toy)
        assert idx.is_ambiguous("ARF")
        assert not idx.is_ambiguous("aspirin")
        assert idx.lookup_unique("aspirin") == toy.aspirin
        assert idx.lookup_unique("ARF") is None

    def test_unknown_surface_empty(self, toy):
        assert InvertedIndex(toy).lookup("penicillin") == []

    def test_candidate_types(self, toy):
        idx = InvertedIndex(toy)
        assert idx.candidate_types("ARF") == ["Finding"]

    def test_normalization(self):
        assert normalize_surface("  Acute    RENAL-failure! ") == "acute renal failure"

    def test_derive_acronym(self):
        assert derive_acronym("acute renal failure") == "arf"
        assert derive_acronym("aspirin") == ""


class TestIO:
    def test_dict_roundtrip(self, toy):
        clone = graph_from_dict(graph_to_dict(toy))
        assert clone.num_nodes == toy.num_nodes
        assert clone.num_edges == toy.num_edges
        assert clone.node_name(toy.arf) == "acute renal failure"
        assert clone.node_aliases(toy.arf) == ("ARF",)

    def test_file_roundtrip_with_features(self, toy, tmp_path):
        toy.set_features(np.random.default_rng(0).random((toy.num_nodes, 4)).astype(np.float32))
        path = str(tmp_path / "kb.json")
        save_graph(toy, path)
        loaded = load_graph(path)
        np.testing.assert_allclose(loaded.features, toy.features)
        src_a, dst_a, et_a = toy.edges()
        src_b, dst_b, et_b = loaded.edges()
        np.testing.assert_array_equal(src_a, src_b)
        np.testing.assert_array_equal(et_a, et_b)

    def test_node_edge_lists(self, toy, tmp_path):
        from repro.graph import read_edge_list, write_edge_list, write_node_list

        npath, epath = str(tmp_path / "nodes.tsv"), str(tmp_path / "edges.tsv")
        write_node_list(toy, npath)
        write_edge_list(toy, epath)
        heads, tails, names = read_edge_list(epath, toy.schema)
        assert len(heads) == toy.num_edges
        assert "CAUSE" in names
        with open(npath) as fh:
            lines = fh.readlines()
        assert len(lines) == toy.num_nodes + 1  # header
