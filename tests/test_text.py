"""Tests for the text substrate: tokeniser, variants, embedder, NER,
corpus format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import HeteroGraph, medical_schema
from repro.text import (
    DictionaryNER,
    HashingNgramEmbedder,
    MentionAnnotation,
    Snippet,
    VariantKind,
    applicable_kinds,
    generate_variant,
    link_unambiguous,
    load_snippets,
    make_abbreviation,
    make_acronym,
    make_simplification,
    make_typo,
    mint_cui,
    node_features_for_graph,
    parse_cui,
    save_snippets,
    span_text,
    tokenize,
    validate_snippet,
)


class TestTokenize:
    def test_offsets_roundtrip(self):
        text = "Aspirin can cause nausea."
        tokens = tokenize(text)
        assert [t.text for t in tokens] == ["Aspirin", "can", "cause", "nausea"]
        for t in tokens:
            assert text[t.start : t.end] == t.text

    def test_span_text(self):
        text = "acute renal failure observed"
        tokens = tokenize(text)
        assert span_text(text, tokens, 0, 3) == "acute renal failure"

    def test_empty_text(self):
        assert tokenize("") == []

    def test_apostrophes_kept(self):
        assert tokenize("patient's")[0].text == "patient's"


class TestVariants:
    def test_acronym(self):
        assert make_acronym("acute renal failure") == "ARF"
        assert make_acronym("aspirin") is None

    def test_abbreviation_truncates(self):
        rng = np.random.default_rng(0)
        out = make_abbreviation("nephrotoxicity observed", rng)
        assert out is not None and "." in out

    def test_typo_is_one_edit_away(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            out = make_typo("proteinuria", rng)
            assert out is not None and out != "proteinuria"

    def test_simplification_drops_qualifier(self):
        assert make_simplification("chronic kidney disease") == "kidney disease"
        assert make_simplification("kidney disease") is None

    def test_generate_variant_dispatch(self):
        rng = np.random.default_rng(1)
        assert generate_variant("acute renal failure", VariantKind.EXACT, rng) == "acute renal failure"
        assert generate_variant("acute renal failure", VariantKind.ACRONYM, rng) == "ARF"
        assert generate_variant("x", VariantKind.SYNONYM, rng, synonyms=("y",)) == "y"
        assert generate_variant("x", VariantKind.SYNONYM, rng) is None

    def test_applicable_kinds(self):
        kinds = applicable_kinds("chronic renal failure", synonyms=("kidney failure",))
        assert VariantKind.ACRONYM in kinds
        assert VariantKind.SIMPLIFICATION in kinds
        assert VariantKind.SYNONYM in kinds

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_property_variants_differ_from_original(self, seed):
        rng = np.random.default_rng(seed)
        name = "progressive hepatic fibrosis"
        for kind in applicable_kinds(name):
            if kind == VariantKind.EXACT:
                continue
            variant = generate_variant(name, kind, rng)
            if variant is not None:
                assert variant.lower() != name


class TestEmbedder:
    def test_deterministic(self):
        e = HashingNgramEmbedder(dim=64)
        np.testing.assert_array_equal(e.embed("nephrosis"), e.embed("nephrosis"))

    def test_unit_norm(self):
        e = HashingNgramEmbedder(dim=64)
        assert np.linalg.norm(e.embed("kidney disease")) == pytest.approx(1.0, abs=1e-5)

    def test_empty_string_is_zero_safe(self):
        e = HashingNgramEmbedder(dim=32)
        vec = e.embed("")
        assert vec.shape == (32,)
        assert np.all(np.isfinite(vec))

    def test_lexical_similarity_ordering(self):
        e = HashingNgramEmbedder(dim=128)
        close = e.similarity("acute renal failure", "chronic renal failure")
        far = e.similarity("acute renal failure", "gastroenteritis")
        assert close > far + 0.2

    def test_batch_matches_single(self):
        e = HashingNgramEmbedder(dim=64)
        batch = e.embed_batch(["nausea", "fever"])
        np.testing.assert_allclose(batch[0], e.embed("nausea"))
        np.testing.assert_allclose(batch[1], e.embed("fever"))

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            HashingNgramEmbedder(dim=0)
        with pytest.raises(ValueError):
            HashingNgramEmbedder(ngram_range=(3, 2))

    def test_node_features_distinguish_types(self):
        g = HeteroGraph(medical_schema())
        a = g.add_node("Drug", "identical name")
        b = g.add_node("Finding", "identical name")
        feats = node_features_for_graph(g, HashingNgramEmbedder(dim=64))
        assert not np.allclose(feats[a], feats[b])


@pytest.fixture
def toy_with_arf():
    g = HeteroGraph(medical_schema())
    g.aspirin = g.add_node("Drug", "aspirin")
    g.nausea = g.add_node("AdverseEffect", "nausea")
    g.arf = g.add_node("Finding", "acute renal failure")
    g.arf2 = g.add_node("Finding", "acute respiratory failure")
    g.proteinuria = g.add_node("Finding", "proteinuria")
    g.add_edge_by_name(g.aspirin, g.nausea, "CAUSE")
    g.add_edge_by_name(g.nausea, g.arf, "HAS")
    return g


class TestNER:
    def test_extracts_paper_example(self, toy_with_arf):
        g = toy_with_arf
        ner = DictionaryNER(g)
        text = "Aspirin can cause nausea indicating a potential ARF, and proteinuria"
        mentions = ner.extract(text)
        surfaces = [m.surface for m in mentions]
        assert surfaces == ["Aspirin", "nausea", "ARF", "proteinuria"]
        arf = mentions[2]
        assert arf.is_ambiguous
        assert set(arf.candidates) == {g.arf, g.arf2}

    def test_longest_match_wins(self, toy_with_arf):
        ner = DictionaryNER(toy_with_arf)
        mentions = ner.extract("acute renal failure was diagnosed")
        assert mentions[0].surface == "acute renal failure"
        assert mentions[0].is_linked

    def test_offsets_match_text(self, toy_with_arf):
        ner = DictionaryNER(toy_with_arf)
        text = "nausea then proteinuria"
        for m in ner.extract(text):
            assert text[m.start : m.end] == m.surface

    def test_extra_vocabulary_type_guess(self, toy_with_arf):
        ner = DictionaryNER(toy_with_arf)
        ner.register_surface("FSGS", "Finding")
        mentions = ner.extract("FSGS recurrence noted")
        assert mentions[0].is_unknown
        assert mentions[0].type_guess == "Finding"

    def test_link_unambiguous(self, toy_with_arf):
        g = toy_with_arf
        ner = DictionaryNER(g)
        mentions = ner.extract("Aspirin and ARF")
        linked = link_unambiguous(mentions)
        assert linked == {"Aspirin": g.aspirin}


class TestCorpus:
    def _snippet(self):
        text = "A common human skin tumour is caused by activating mutations."
        return Snippet(
            text=text,
            mentions=[
                MentionAnnotation("skin tumour", 15, 26, "Disease", "C0000042")
            ],
            ambiguous_index=0,
        )

    def test_paper_format_roundtrip(self, tmp_path):
        snippet = self._snippet()
        path = str(tmp_path / "gt.jsonl")
        save_snippets([snippet], path)
        loaded = load_snippets(path)
        assert loaded[0].text == snippet.text
        assert loaded[0].ambiguous_mention.link_id == "C0000042"
        assert loaded[0].mentions[0].start_offset == 15

    def test_cui_roundtrip(self):
        assert parse_cui(mint_cui(1234)) == 1234
        with pytest.raises(ValueError):
            parse_cui("X123")

    def test_validation_catches_bad_span(self):
        snippet = self._snippet()
        bad = Snippet(
            text=snippet.text,
            mentions=[MentionAnnotation("skin tumour", 0, 11, "Disease", "C1")],
        )
        problems = validate_snippet(bad)
        assert problems and "span text" in problems[0]

    def test_validation_accepts_good(self):
        assert validate_snippet(self._snippet()) == []

    def test_validation_rejects_empty(self):
        assert validate_snippet(Snippet(text="x", mentions=[]))
