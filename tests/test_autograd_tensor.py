"""Unit + property tests for the autograd tensor core.

Every differentiable primitive is verified against central finite
differences — this file is the correctness anchor for all GNN training.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, no_grad, ones, tensor, zeros


def randt(rng, *shape, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True, dtype=np.float64)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestBasics:
    def test_construction_and_shape(self):
        t = tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert len(t) == 2

    def test_zeros_ones(self):
        assert np.all(zeros((2, 3)).data == 0)
        assert np.all(ones((2, 3)).data == 1)

    def test_item_scalar(self):
        assert tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_shares_data_but_no_grad(self, rng):
        t = randt(rng, 3)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(tensor([1.0, 2.0]))

    def test_requires_grad_promotes_int_to_float(self):
        t = Tensor(np.array([1, 2, 3]), requires_grad=True)
        assert np.issubdtype(t.dtype, np.floating)

    def test_backward_on_non_scalar_requires_gradient(self, rng):
        t = randt(rng, 3)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()


class TestNoGrad:
    def test_no_grad_disables_tape(self, rng):
        t = randt(rng, 3)
        with no_grad():
            out = (t * t).sum()
        assert not out.requires_grad

    def test_no_grad_restores_state_on_exception(self, rng):
        t = randt(rng, 3)
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        out = (t * t).sum()
        assert out.requires_grad


class TestArithmeticGradients:
    def test_add_sub_mul_div(self, rng):
        a, b = randt(rng, 3, 4), randt(rng, 3, 4)
        b.data += 3.0  # keep away from zero for division
        check_gradients(lambda a, b: ((a + b) * (a - b) / b).sum(), [a, b])

    def test_broadcasting(self, rng):
        a = randt(rng, 3, 4)
        b = randt(rng, 4)
        check_gradients(lambda a, b: (a * b + b).sum(), [a, b])

    def test_scalar_operands(self, rng):
        a = randt(rng, 5)
        check_gradients(lambda a: (2.0 * a + 1.0 - a / 4.0).sum(), [a])

    def test_neg_pow(self, rng):
        a = randt(rng, 4)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: ((-a) ** 3).sum(), [a])

    def test_rsub_rdiv(self, rng):
        a = randt(rng, 4)
        a.data = np.abs(a.data) + 1.0
        check_gradients(lambda a: (1.0 - a).sum() + (2.0 / a).sum(), [a])

    def test_matmul_matrix_matrix(self, rng):
        a, b = randt(rng, 3, 4), randt(rng, 4, 5)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_matrix_vector(self, rng):
        a, v = randt(rng, 3, 4), randt(rng, 4)
        check_gradients(lambda a, v: (a @ v).sum(), [a, v])

    def test_matmul_vector_matrix(self, rng):
        v, a = randt(rng, 3), randt(rng, 3, 4)
        check_gradients(lambda v, a: (v @ a).sum(), [v, a])

    def test_matmul_vector_vector(self, rng):
        u, v = randt(rng, 4), randt(rng, 4)
        check_gradients(lambda u, v: u @ v, [u, v])


class TestReductionGradients:
    def test_sum_all_and_axis(self, rng):
        a = randt(rng, 3, 4)
        check_gradients(lambda a: a.sum(), [a])
        check_gradients(lambda a: a.sum(axis=0).sum(), [a])
        check_gradients(lambda a: a.sum(axis=1, keepdims=True).sum(), [a])

    def test_mean(self, rng):
        a = randt(rng, 3, 4)
        check_gradients(lambda a: a.mean(), [a])
        check_gradients(lambda a: a.mean(axis=1).sum(), [a])

    def test_max(self, rng):
        a = randt(rng, 3, 4)
        check_gradients(lambda a: a.max(), [a])
        check_gradients(lambda a: a.max(axis=1).sum(), [a])


class TestShapeGradients:
    def test_reshape_transpose(self, rng):
        a = randt(rng, 3, 4)
        check_gradients(lambda a: (a.reshape(2, 6) ** 2).sum(), [a])
        check_gradients(lambda a: (a.T @ a).sum(), [a])

    def test_transpose_with_axes(self, rng):
        a = randt(rng, 2, 3, 4)
        check_gradients(lambda a: (a.transpose((2, 0, 1)) ** 2).sum(), [a])

    def test_getitem_slice_and_fancy(self, rng):
        a = randt(rng, 6, 3)
        check_gradients(lambda a: a[1:4].sum(), [a])
        idx = np.array([0, 0, 2, 5])
        check_gradients(lambda a: a[idx].sum(), [a])

    def test_getitem_duplicate_index_accumulates(self, rng):
        a = randt(rng, 4)
        out = a[np.array([1, 1, 1])].sum()
        out.backward()
        assert a.grad[1] == pytest.approx(3.0)


class TestNonlinearGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a: a.exp().sum(),
            lambda a: (a.abs() + 1.0).log().sum(),
            lambda a: a.tanh().sum(),
            lambda a: a.sigmoid().sum(),
            lambda a: a.relu().sum(),
            lambda a: a.leaky_relu(0.1).sum(),
            lambda a: a.elu().sum(),
            lambda a: a.sin().sum(),
            lambda a: a.cos().sum(),
            lambda a: (a.abs() + 0.5).sqrt().sum(),
        ],
    )
    def test_elementwise(self, rng, fn):
        a = randt(rng, 4, 3)
        a.data += 0.05  # avoid kinks right at zero for relu-likes
        check_gradients(fn, [a])

    def test_clip_gradient_is_zero_outside(self, rng):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True, dtype=np.float64)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_extreme_values_stable(self):
        t = tensor([1000.0, -1000.0])
        out = t.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.0)


class TestGradientAccumulation:
    def test_diamond_graph(self, rng):
        a = randt(rng, 3)
        b = a * 2.0
        out = (b + b * a).sum()
        out.backward()
        expected = 2.0 + 4.0 * a.data
        np.testing.assert_allclose(a.grad, expected, rtol=1e-6)

    def test_repeated_backward_accumulates(self, rng):
        a = randt(rng, 3)
        (a * 2).sum().backward()
        first = a.grad.copy()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_zero_grad(self, rng):
        a = randt(rng, 3)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_property_mul_gradient_is_other_operand(rows, cols, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal((rows, cols)), requires_grad=True, dtype=np.float64)
    b = Tensor(rng.standard_normal((rows, cols)), dtype=np.float64)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b.data)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(1, 8))
def test_property_sigmoid_plus_negation_is_one(seed, n):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal(n))
    total = x.sigmoid().data + (-x).sigmoid().data
    np.testing.assert_allclose(total, np.ones(n), atol=1e-6)
