"""Cross-module property-based tests (hypothesis) on the invariants the
system's correctness rests on: batching arithmetic, schedule
monotonicity, metric identities, sampler guarantees, index consistency,
and metapath type-correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CurriculumSchedule, NegativeSampler
from repro.eval import precision_recall_f1
from repro.graph import (
    HeteroGraph,
    InvertedIndex,
    Metapath,
    batch_graphs,
    enumerate_instances,
    medical_schema,
    normalize_surface,
    unbatch_node_ids,
)
from repro.text import HashingNgramEmbedder


def random_graph(seed: int, n_nodes: int, n_edges: int) -> HeteroGraph:
    rng = np.random.default_rng(seed)
    schema = medical_schema()
    g = HeteroGraph(schema)
    types = schema.node_types
    for i in range(n_nodes):
        g.add_node(types[int(rng.integers(len(types)))], f"entity {seed} {i}")
    for _ in range(n_edges):
        rel_id = int(rng.integers(schema.num_relations))
        rel = schema.relation(rel_id)
        src_pool = g.nodes_of_type(rel.src_type)
        dst_pool = g.nodes_of_type(rel.dst_type)
        if len(src_pool) == 0 or len(dst_pool) == 0:
            continue
        s = int(rng.choice(src_pool))
        d = int(rng.choice(dst_pool))
        if s != d:
            g.add_edge(s, d, rel_id)
    return g


class TestBatchingInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        sizes=st.lists(st.tuples(st.integers(1, 8), st.integers(0, 10)), min_size=1, max_size=4),
    )
    def test_union_counts_are_sums(self, seed, sizes):
        graphs = [random_graph(seed + i, n, e) for i, (n, e) in enumerate(sizes)]
        union, offsets = batch_graphs(graphs)
        assert union.num_nodes == sum(g.num_nodes for g in graphs)
        assert union.num_edges == sum(g.num_edges for g in graphs)
        assert offsets == list(np.cumsum([0] + [g.num_nodes for g in graphs])[:-1])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 8))
    def test_unbatch_round_trips_node_identity(self, seed, n):
        graphs = [random_graph(seed, n, 4), random_graph(seed + 1, n, 4)]
        union, offsets = batch_graphs(graphs)
        for g_idx, graph in enumerate(graphs):
            for local in range(graph.num_nodes):
                union_id = unbatch_node_ids(offsets, g_idx, [local])[0]
                assert union.node_name(int(union_id)) == graph.node_name(local)
                assert union.node_type(int(union_id)) == graph.node_type(local)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_edges_stay_within_component(self, seed):
        graphs = [random_graph(seed, 6, 8), random_graph(seed + 1, 5, 6)]
        union, offsets = batch_graphs(graphs)
        src, dst, _ = union.edges()
        boundaries = offsets + [union.num_nodes]
        for s, d in zip(src.tolist(), dst.tolist()):
            component_s = sum(1 for b in boundaries[1:] if s >= b)
            component_d = sum(1 for b in boundaries[1:] if d >= b)
            assert component_s == component_d


class TestScheduleInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        max_fraction=st.floats(0.0, 1.0),
        warmup=st.integers(1, 30),
        epochs=st.integers(1, 100),
    )
    def test_monotone_bounded_zero_start(self, max_fraction, warmup, epochs):
        schedule = CurriculumSchedule(max_hard_fraction=max_fraction, warmup_epochs=warmup)
        assert schedule.hard_fraction(0) == 0.0
        previous = 0.0
        for epoch in range(1, epochs):
            fraction = schedule.hard_fraction(epoch)
            assert 0.0 <= fraction <= max_fraction + 1e-12
            assert fraction >= previous - 1e-12
            previous = fraction
        if epochs > warmup:
            assert schedule.hard_fraction(epochs) == pytest.approx(max_fraction)


class TestMetricIdentities:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 200))
    def test_f1_is_harmonic_mean(self, seed, n):
        rng = np.random.default_rng(seed)
        labels = rng.random(n) < 0.5
        predictions = rng.random(n) < 0.5
        prf = precision_recall_f1(labels, predictions)
        assert 0.0 <= prf.precision <= 1.0
        assert 0.0 <= prf.recall <= 1.0
        if prf.precision + prf.recall > 0:
            expected = 2 * prf.precision * prf.recall / (prf.precision + prf.recall)
            assert prf.f1 == pytest.approx(expected)
        else:
            assert prf.f1 == 0.0
        # F1 lies between min and max of P and R.
        assert min(prf.precision, prf.recall) - 1e-12 <= prf.f1
        assert prf.f1 <= max(prf.precision, prf.recall) + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 100))
    def test_perfect_predictions_score_one(self, seed, n):
        rng = np.random.default_rng(seed)
        labels = rng.random(n) < 0.5
        if not labels.any():
            labels[0] = True
        prf = precision_recall_f1(labels, labels.copy())
        assert prf.f1 == pytest.approx(1.0)


class TestSamplerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        k=st.integers(1, 8),
        epoch=st.integers(0, 20),
    )
    def test_mixed_sampler_valid_ids_never_gold(self, seed, k, epoch):
        graph = random_graph(seed, 10, 15)
        embedder = HashingNgramEmbedder(dim=16)
        features = embedder.embed_batch([graph.node_name(v) for v in range(graph.num_nodes)])
        sampler = NegativeSampler(
            graph,
            np.random.default_rng(seed),
            initial_embeddings=features,
            use_hard_negatives=True,
        )
        positive = int(np.random.default_rng(seed + 1).integers(graph.num_nodes))
        negatives = sampler.sample(positive, k, epoch)
        assert len(negatives) == k
        assert positive not in negatives.tolist()
        assert all(0 <= v < graph.num_nodes for v in negatives.tolist())


class TestTextInvariants:
    @settings(max_examples=50, deadline=None)
    @given(text=st.text(max_size=40))
    def test_normalize_surface_idempotent(self, text):
        once = normalize_surface(text)
        assert normalize_surface(once) == once

    @settings(max_examples=30, deadline=None)
    @given(text=st.text(min_size=1, max_size=30), dim=st.sampled_from([16, 64, 128]))
    def test_embedder_deterministic_unit_norm(self, text, dim):
        embedder = HashingNgramEmbedder(dim=dim)
        a = embedder.embed(text)
        b = embedder.embed(text)
        np.testing.assert_array_equal(a, b)
        norm = float(np.linalg.norm(a))
        assert norm == pytest.approx(1.0, abs=1e-5) or norm == 0.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_batch_embed_matches_single(self, seed):
        rng = np.random.default_rng(seed)
        embedder = HashingNgramEmbedder(dim=32)
        texts = [f"entity {rng.integers(100)}" for _ in range(5)]
        batch = embedder.embed_batch(texts)
        for i, text in enumerate(texts):
            np.testing.assert_allclose(batch[i], embedder.embed(text))


class TestIndexInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 20))
    def test_every_name_resolves_to_its_node(self, seed, n):
        graph = random_graph(seed, n, 2 * n)
        index = InvertedIndex(graph)
        for node in range(graph.num_nodes):
            assert node in index.lookup(graph.node_name(node))


class TestMetapathInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(4, 15))
    def test_instances_respect_types_and_adjacency(self, seed, n):
        graph = random_graph(seed, n, 3 * n)
        mp = Metapath(("Drug", "AdverseEffect", "Finding"))
        type_ids = mp.type_ids(graph.schema)
        inst = enumerate_instances(graph, mp, max_instances_per_node=8)
        types = graph.node_types
        for path in inst.paths.tolist():
            for position, node in enumerate(path):
                assert types[node] == type_ids[position]
            for a, b in zip(path, path[1:]):
                assert graph.has_edge(a, b) or graph.has_edge(b, a)
            assert len(set(path)) == len(path)  # no revisits by default
