"""Tests for the sublinear candidate-retrieval subsystem (repro.retrieval).

Covers the acceptance contract of the indexed-generator tentpole:

* the vectorised ``edit_distances`` matches the scalar DP exactly;
* ``RetrievalConfig`` is strict (unknown backends / out-of-range knobs
  rejected) and round-trips through ``LinkerConfig``;
* the ``REPRO_CANDIDATES`` environment default picks the generator and
  a typo'd value fails with the registry's options listed;
* both shortlist backends return capped, deduplicated, deterministic
  shortlists, and the ``"indexed"`` generator reproduces the fuzzy
  oracle exactly when the shortlist covers the whole KB;
* packed indexes round-trip bit-exactly through a PR-7 bundle,
  staleness rebuilds + repacks, corruption raises ``StorageError``;
* per-shard slices keep global scoring, so the union of shard
  shortlists is a superset of the unsharded shortlist;
* candidate telemetry lands in ``ServiceStats`` and its Prometheus
  rendering.
"""

import numpy as np
import pytest

from repro.api import CANDIDATE_GENERATORS, Linker, LinkerConfig
from repro.core import (
    EDPipeline,
    FuzzyFallbackCandidateGenerator,
    ModelConfig,
    TrainConfig,
)
from repro.datasets import load_dataset
from repro.retrieval import (
    CANDIDATES_ENV,
    RETRIEVAL_BACKENDS,
    IndexedCandidateGenerator,
    RetrievalConfig,
    build_retrieval_index,
    default_candidate_generator,
    load_packed_index,
    repack_index,
    retrieval_fingerprint,
)
from repro.serving.sharding import ShardedKB
from repro.serving.stats import ServiceStats
from repro.storage import StorageError, pack_bundle
from repro.text import HashingNgramEmbedder
from repro.text.variants import (
    VariantKind,
    applicable_kinds,
    edit_distance,
    edit_distances,
    generate_variant,
)

SCALE = 0.2


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=SCALE)


@pytest.fixture(scope="module")
def kb(dataset):
    return dataset.kb


@pytest.fixture(scope="module")
def embedder():
    return HashingNgramEmbedder(dim=128)


@pytest.fixture(scope="module")
def name_matrix(kb, embedder):
    names = [kb.node_name(v) for v in range(kb.num_nodes)]
    return embedder.embed_batch(names)


@pytest.fixture(scope="module")
def typo_surfaces(kb):
    """Typo'd variants of KB names — the index-miss queries the fuzzy
    fallback (and therefore the shortlist backends) exist for."""
    rng = np.random.default_rng(7)
    surfaces = []
    for node in range(kb.num_nodes):
        name = kb.node_name(node)
        if VariantKind.TYPO not in applicable_kinds(name):
            continue
        surface = generate_variant(name, VariantKind.TYPO, rng)
        if surface is not None:
            surfaces.append(surface)
        if len(surfaces) >= 40:
            break
    assert len(surfaces) >= 20
    return surfaces


@pytest.fixture(scope="module")
def pipeline(dataset):
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, seed=0),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
    )
    pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe


# ----------------------------------------------------------------------
# Vectorised edit distance
# ----------------------------------------------------------------------
class TestEditDistances:
    def test_matches_scalar_dp(self):
        rng = np.random.default_rng(3)
        alphabet = list("abcdefg ")
        pool = [
            "".join(rng.choice(alphabet, size=rng.integers(0, 14)))
            for _ in range(60)
        ]
        for a in pool[:12]:
            batch = edit_distances(a, pool)
            expected = [edit_distance(a, b) for b in pool]
            assert batch.tolist() == expected

    def test_empty_inputs(self):
        assert edit_distances("abc", []).shape == (0,)
        assert edit_distances("", ["", "ab", "xyz"]).tolist() == [0, 2, 3]
        assert edit_distances("abc", ["", ""]).tolist() == [3, 3]

    def test_unicode_surfaces(self):
        others = ["naïve", "naive", "näive"]
        expected = [edit_distance("naïve", b) for b in others]
        assert edit_distances("naïve", others).tolist() == expected


# ----------------------------------------------------------------------
# RetrievalConfig
# ----------------------------------------------------------------------
class TestRetrievalConfig:
    def test_defaults(self):
        config = RetrievalConfig()
        assert config.backend == "ngram"
        assert config.shortlist == 256
        assert config.probe_radius == 1
        assert config.bundle_path is None

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(backend="btree"), "unknown retrieval backend"),
            (dict(shortlist=0), "shortlist"),
            (dict(ngram_size=0), "ngram_size"),
            (dict(num_buckets=0), "num_buckets"),
            (dict(max_df_ratio=0.0), "max_df_ratio"),
            (dict(max_df_ratio=1.5), "max_df_ratio"),
            (dict(num_bands=0), "num_bands"),
            (dict(band_bits=0), "band_bits"),
            (dict(band_bits=25), "band_bits"),
            (dict(probe_radius=3), "probe_radius"),
            (dict(probe_radius=-1), "probe_radius"),
            (dict(bundle_path=7), "bundle_path"),
        ],
    )
    def test_strict_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetrievalConfig(**kwargs)

    def test_dict_round_trip(self):
        config = RetrievalConfig(backend="lsh", shortlist=64, probe_radius=2)
        assert RetrievalConfig(**config.to_dict()) == config

    def test_linker_config_round_trip(self):
        config = LinkerConfig(
            retrieval=RetrievalConfig(backend="lsh", shortlist=99),
            candidate_generator="indexed",
        )
        restored = LinkerConfig.from_json(config.to_json())
        assert restored.retrieval == config.retrieval
        assert restored.candidate_generator == "indexed"

    def test_retrieval_section_must_be_typed(self):
        with pytest.raises(ValueError, match="retrieval"):
            LinkerConfig(retrieval={"backend": "ngram"})


# ----------------------------------------------------------------------
# Environment default
# ----------------------------------------------------------------------
class TestCandidatesEnv:
    def test_unset_means_exact(self, monkeypatch):
        monkeypatch.delenv(CANDIDATES_ENV, raising=False)
        assert default_candidate_generator() == "exact"
        assert LinkerConfig().candidate_generator == "exact"

    def test_env_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(CANDIDATES_ENV, "indexed")
        assert default_candidate_generator() == "indexed"
        assert LinkerConfig().candidate_generator == "indexed"

    def test_typo_fails_with_options_listed(self, monkeypatch):
        monkeypatch.setenv(CANDIDATES_ENV, "indxed")
        with pytest.raises(ValueError, match="indxed"):
            LinkerConfig()

    def test_registry_has_all_generators(self):
        for name in ("exact", "fuzzy", "indexed"):
            assert CANDIDATE_GENERATORS.get(name) is not None


# ----------------------------------------------------------------------
# Shortlist backends
# ----------------------------------------------------------------------
class TestShortlistBackends:
    @pytest.mark.parametrize("backend", RETRIEVAL_BACKENDS)
    def test_shortlist_shape_and_cap(self, kb, embedder, name_matrix, typo_surfaces, backend):
        config = RetrievalConfig(backend=backend, shortlist=8)
        index = build_retrieval_index(
            kb, config, embedder=embedder, name_matrix=name_matrix
        )
        for surface in typo_surfaces[:10]:
            shortlist = index.query(surface)
            assert shortlist.dtype == np.int64
            assert len(shortlist) <= 8
            assert len(np.unique(shortlist)) == len(shortlist)
            assert ((shortlist >= 0) & (shortlist < kb.num_nodes)).all()

    @pytest.mark.parametrize("backend", RETRIEVAL_BACKENDS)
    def test_build_is_deterministic(self, kb, embedder, name_matrix, typo_surfaces, backend):
        config = RetrievalConfig(backend=backend)
        first = build_retrieval_index(kb, config, embedder=embedder, name_matrix=name_matrix)
        second = build_retrieval_index(kb, config, embedder=embedder, name_matrix=name_matrix)
        for surface in typo_surfaces[:10]:
            assert np.array_equal(first.query(surface), second.query(surface))

    def test_lsh_requires_embedder(self, kb):
        with pytest.raises(ValueError, match="embedder"):
            build_retrieval_index(kb, RetrievalConfig(backend="lsh"))

    def test_ngram_garbage_surface_returns_empty(self, kb):
        index = build_retrieval_index(kb, RetrievalConfig(backend="ngram"))
        assert index.query("zzqqxxjj").size == 0

    def test_fingerprint_tracks_surfaces_and_config(self, kb, embedder):
        base = retrieval_fingerprint(kb, RetrievalConfig(), embedder)
        assert base == retrieval_fingerprint(kb, RetrievalConfig(), embedder)
        # bundle_path is where an index lives, not what it contains.
        moved = RetrievalConfig(bundle_path="/tmp/elsewhere")
        assert base == retrieval_fingerprint(kb, moved, embedder)
        other = retrieval_fingerprint(kb, RetrievalConfig(shortlist=7), embedder)
        assert base != other


# ----------------------------------------------------------------------
# The "indexed" generator vs the fuzzy oracle
# ----------------------------------------------------------------------
class TestIndexedGenerator:
    @pytest.mark.parametrize("backend", RETRIEVAL_BACKENDS)
    def test_exact_surfaces_identical_to_fuzzy(
        self, kb, embedder, name_matrix, backend
    ):
        oracle = FuzzyFallbackCandidateGenerator(
            kb, embedder=embedder, name_matrix=name_matrix
        )
        indexed = IndexedCandidateGenerator(
            kb,
            embedder=embedder,
            name_matrix=name_matrix,
            retrieval=RetrievalConfig(backend=backend),
        )
        for node in range(0, kb.num_nodes, max(1, kb.num_nodes // 20)):
            surface = kb.node_name(node)
            assert np.array_equal(
                oracle.candidates_for(surface), indexed.candidates_for(surface)
            )

    def test_full_coverage_shortlist_matches_oracle_exactly(
        self, kb, embedder, name_matrix, typo_surfaces
    ):
        """With stop-gramming off and the shortlist as large as the KB,
        every node the oracle can score is in the shortlist — the indexed
        generator must reproduce the oracle bit-for-bit."""
        oracle = FuzzyFallbackCandidateGenerator(
            kb, embedder=embedder, name_matrix=name_matrix
        )
        indexed = IndexedCandidateGenerator(
            kb,
            embedder=embedder,
            name_matrix=name_matrix,
            retrieval=RetrievalConfig(
                backend="ngram", shortlist=kb.num_nodes, max_df_ratio=1.0
            ),
        )
        for surface in typo_surfaces:
            assert np.array_equal(
                oracle.candidates_for(surface), indexed.candidates_for(surface)
            )

    @pytest.mark.parametrize(
        "retrieval",
        [
            # Stop-gramming off: max_df_ratio is tuned per KB scale and
            # 5% of a tiny test KB is a handful of nodes.
            RetrievalConfig(backend="ngram", max_df_ratio=1.0),
            # Likewise shorter band keys + a wider probe for LSH: the
            # oracle's top-20 on a 150-node KB reaches far down the
            # cosine ranking, where default-width signatures rarely
            # collide.
            RetrievalConfig(backend="lsh", band_bits=8, num_bands=64, probe_radius=2),
        ],
        ids=["ngram", "lsh"],
    )
    def test_recall_on_typo_corpus(
        self, kb, embedder, name_matrix, typo_surfaces, retrieval
    ):
        oracle = FuzzyFallbackCandidateGenerator(
            kb, embedder=embedder, name_matrix=name_matrix
        )
        indexed = IndexedCandidateGenerator(
            kb,
            embedder=embedder,
            name_matrix=name_matrix,
            retrieval=retrieval,
        )
        hits = total = 0
        for surface in typo_surfaces:
            want = set(oracle.candidates_for(surface).tolist())
            got = set(indexed.candidates_for(surface).tolist())
            total += len(want)
            hits += len(want & got)
        assert total > 0
        assert hits / total >= 0.95

    def test_retrieval_accepts_dict(self, kb, embedder, name_matrix):
        gen = IndexedCandidateGenerator(
            kb,
            embedder=embedder,
            name_matrix=name_matrix,
            retrieval={"backend": "ngram", "shortlist": 32},
        )
        assert gen.retrieval_config.shortlist == 32

    def test_retrieval_rejects_bad_type(self, kb, embedder, name_matrix):
        with pytest.raises(ValueError, match="RetrievalConfig"):
            IndexedCandidateGenerator(
                kb, embedder=embedder, name_matrix=name_matrix, retrieval=42
            )

    def test_generator_counts_fallbacks(self, kb, embedder, name_matrix, typo_surfaces):
        gen = IndexedCandidateGenerator(kb, embedder=embedder, name_matrix=name_matrix)
        gen.candidates_for(kb.node_name(0))
        gen.candidates_for(typo_surfaces[0])
        assert gen.index_hits == 1
        assert gen.fallback_hits == 1


# ----------------------------------------------------------------------
# Packing into (and loading out of) bundles
# ----------------------------------------------------------------------
class TestPackedIndexes:
    @pytest.mark.parametrize("backend", RETRIEVAL_BACKENDS)
    def test_bundle_round_trip_is_bit_exact(
        self, pipeline, embedder, typo_surfaces, tmp_path, backend
    ):
        kb = pipeline.kb
        config = RetrievalConfig(backend=backend)
        built = build_retrieval_index(kb, config, embedder=pipeline.embedder)
        directory = str(tmp_path / backend)
        manifest = pack_bundle(
            pipeline, directory, embeddings=False, retrieval_index=built
        )
        entry = manifest["retrieval"]
        assert entry["backend"] == backend
        assert int(entry["fingerprint"]) == built.fingerprint
        for meta in entry["arrays"].values():
            assert set(meta) == {"shape", "dtype", "crc"}

        loaded = load_packed_index(
            directory,
            config,
            expected_fingerprint=built.fingerprint,
            embedder=pipeline.embedder,
        )
        assert loaded is not None
        for name, array in built.arrays().items():
            assert np.array_equal(loaded.arrays()[name], array)
        for surface in typo_surfaces[:10]:
            assert np.array_equal(loaded.query(surface), built.query(surface))

    def test_stale_or_missing_loads_as_none(self, pipeline, tmp_path):
        kb = pipeline.kb
        config = RetrievalConfig()
        built = build_retrieval_index(kb, config, embedder=pipeline.embedder)
        empty = str(tmp_path / "empty")
        assert load_packed_index(empty, config, built.fingerprint) is None

        directory = str(tmp_path / "bundle")
        pack_bundle(pipeline, directory, embeddings=False, retrieval_index=built)
        # Fingerprint mismatch means stale; backend mismatch means "not
        # the index you asked for" — both are rebuild signals, not errors.
        assert load_packed_index(directory, config, built.fingerprint ^ 1) is None
        lsh = RetrievalConfig(backend="lsh")
        assert (
            load_packed_index(
                directory, lsh, built.fingerprint, embedder=pipeline.embedder
            )
            is None
        )

    def test_corrupt_arrays_raise_storage_error(self, pipeline, tmp_path):
        kb = pipeline.kb
        config = RetrievalConfig()
        built = build_retrieval_index(kb, config, embedder=pipeline.embedder)
        directory = str(tmp_path / "bundle")
        pack_bundle(pipeline, directory, embeddings=False, retrieval_index=built)
        target = str(tmp_path / "bundle" / "retrieval_postings.npy")
        with open(target, "wb") as fh:
            fh.write(b"not a numpy file")
        with pytest.raises(StorageError, match="retrieval_postings"):
            load_packed_index(directory, config, built.fingerprint)

    def test_mis_shaped_array_raises_storage_error(self, pipeline, tmp_path):
        kb = pipeline.kb
        config = RetrievalConfig()
        built = build_retrieval_index(kb, config, embedder=pipeline.embedder)
        directory = str(tmp_path / "bundle")
        pack_bundle(pipeline, directory, embeddings=False, retrieval_index=built)
        target = str(tmp_path / "bundle" / "retrieval_norms.npy")
        np.save(target, np.zeros(3, dtype=np.float32))
        with pytest.raises(StorageError, match="shape/dtype"):
            load_packed_index(directory, config, built.fingerprint)

    def test_generator_repacks_stale_bundles(self, pipeline, typo_surfaces, tmp_path):
        kb = pipeline.kb
        directory = str(tmp_path / "bundle")
        pack_bundle(pipeline, directory, embeddings=False)

        config = RetrievalConfig(bundle_path=directory)
        first = IndexedCandidateGenerator(
            kb, embedder=pipeline.embedder, retrieval=config
        )
        # No packed index yet: the generator builds one and repacks.
        assert first.repacked is True
        second = IndexedCandidateGenerator(
            kb, embedder=pipeline.embedder, retrieval=config
        )
        # Now it maps the packed copy instead of rebuilding.
        assert second.repacked is False
        for surface in typo_surfaces[:5]:
            assert np.array_equal(
                first.candidates_for(surface), second.candidates_for(surface)
            )

    def test_repack_needs_an_existing_bundle(self, pipeline, tmp_path):
        built = build_retrieval_index(
            pipeline.kb, RetrievalConfig(), embedder=pipeline.embedder
        )
        assert repack_index(str(tmp_path / "nowhere"), built) is False


# ----------------------------------------------------------------------
# Sharded shortlisting
# ----------------------------------------------------------------------
class TestShardedCandidates:
    @pytest.mark.parametrize("backend", RETRIEVAL_BACKENDS)
    def test_union_is_superset_of_global_shortlist(
        self, pipeline, typo_surfaces, backend
    ):
        config = RetrievalConfig(backend=backend, shortlist=16)
        index = build_retrieval_index(
            pipeline.kb, config, embedder=pipeline.embedder
        )
        sharded = ShardedKB(pipeline, 3, retrieval_index=index)
        try:
            for surface in typo_surfaces[:10]:
                query_vec = pipeline.embedder.embed(surface)
                union = sharded.candidates_for(surface, query_vec=query_vec)
                assert np.array_equal(union, np.unique(union))
                global_ids = index.query(surface, query_vec=query_vec)
                assert set(global_ids.tolist()) <= set(union.tolist())
        finally:
            sharded.close()

    def test_without_index_raises(self, pipeline):
        sharded = ShardedKB(pipeline, 2)
        try:
            with pytest.raises(RuntimeError, match="retrieval index"):
                sharded.candidates_for("anything")
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# Serving integration: stats + prediction parity
# ----------------------------------------------------------------------
class TestCandidateTelemetry:
    def test_record_and_percentiles(self):
        stats = ServiceStats()
        stats.record_candidates(0.002)
        stats.record_candidates(0.004)
        stats.record_candidate_sources("indexed", index_hits=3, fallbacks=1)
        assert stats.candidate_lookups == 2
        assert stats.candidate_generator == "indexed"
        assert stats.candidate_index_hits == 3
        assert stats.candidate_fallbacks == 1
        assert 2.0 <= stats.candidate_percentile(50) <= 4.0
        payload = stats.to_dict()
        assert payload["candidate_generator"] == "indexed"
        assert payload["candidate_lookups"] == 2

    def test_prometheus_series(self):
        stats = ServiceStats()
        stats.record_candidates(0.001)
        stats.record_candidate_sources("indexed", index_hits=1, fallbacks=0)
        text = stats.to_prometheus()
        assert "repro_candidates_lookups_total 1" in text
        assert "repro_candidates_index_hits_total 1" in text
        assert "repro_candidates_stage_ms_count 1" in text
        assert 'repro_candidates_info{generator="indexed"} 1' in text

    def test_reset_clears_candidate_counters(self):
        stats = ServiceStats()
        stats.record_candidates(0.001)
        stats.record_candidate_sources("indexed", index_hits=1, fallbacks=2)
        stats.reset()
        assert stats.candidate_lookups == 0
        assert stats.candidate_generator == "exact"
        assert stats.candidate_fallbacks == 0


class TestServingParity:
    def test_top1_predictions_match_fuzzy(self, dataset, pipeline):
        """When the shortlist covers the oracle's survivors, the indexed
        generator feeds the ranker the same candidate set — top-1
        predictions must be unchanged."""
        linker = Linker(pipeline)
        retrieval = RetrievalConfig(
            backend="ngram", shortlist=pipeline.kb.num_nodes, max_df_ratio=1.0
        )
        snippets = dataset.test[:10] or dataset.train[:10]

        linker.use_candidate_generator("fuzzy")
        fuzzy_top = [
            linker.disambiguate_snippet(s, top_k=1).top() for s in snippets
        ]
        linker.use_candidate_generator("indexed", retrieval=retrieval)
        assert linker.config.candidate_generator == "indexed"
        indexed_top = [
            linker.disambiguate_snippet(s, top_k=1).top() for s in snippets
        ]
        assert indexed_top == fuzzy_top
