"""Tests for the process-based shard workers (repro.serving.workers).

Covers the picklable scorer replica (bit-identical to the in-process
``EDGNN.score_pairs``), backend resolution (env default, platform
fallback), the worker pool's crash -> respawn-and-retry path with a real
SIGKILL mid-batch, warm-start distribution to live workers, and the
fake-clock drain contract of ``close()``.
"""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import EDPipeline, ModelConfig, TrainConfig
from repro.datasets import load_dataset
from repro.serving import ShardedKB, ShardWorkerError
from repro.serving.workers import (
    SHARD_BACKEND_ENV,
    ScoreJob,
    ScorerSpec,
    resolve_shard_backend,
)

SCALE = 0.2


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=SCALE)


@pytest.fixture(scope="module")
def pipeline(dataset):
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, seed=0),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
    )
    pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe


@pytest.fixture()
def sharded(pipeline):
    backend = ShardedKB(pipeline, 2, backend="process")
    if backend.worker_pool is None:
        backend.close()
        pytest.skip("process shard backend unavailable on this platform")
    yield backend
    backend.close()


def scoring_inputs(pipeline, snippet):
    qg = pipeline.build_query_graph_for(snippet)
    candidates = pipeline.candidate_ids(
        qg.mention_surface, category=snippet.ambiguous_mention.category
    )
    return qg, candidates


class TestBackendResolution:
    def test_thread_is_the_default(self, monkeypatch):
        monkeypatch.delenv(SHARD_BACKEND_ENV, raising=False)
        assert resolve_shard_backend() == "thread"
        assert resolve_shard_backend("process") == "process"

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(SHARD_BACKEND_ENV, "process")
        assert resolve_shard_backend() == "process"
        # An explicit request always wins over the environment.
        assert resolve_shard_backend("thread") == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown shard backend"):
            resolve_shard_backend("fibers")

    def test_falls_back_to_threads_when_platform_cannot_fork(self, monkeypatch):
        from repro.serving import workers

        monkeypatch.setattr(workers, "_mp_context", lambda: None)
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            assert resolve_shard_backend("process") == "thread"

    def test_sharded_kb_records_resolved_backend(self, pipeline):
        sharded = ShardedKB(pipeline, 2, backend="thread")
        assert sharded.backend == "thread"
        assert sharded.worker_pool is None
        assert "backend='thread'" in repr(sharded)
        sharded.close()


class TestScorerSpec:
    def test_pickle_round_trip_scores_bit_identical(self, pipeline, dataset):
        # The worker-side replica must replay EDGNN.score_pairs exactly:
        # same float32 inputs through the same op sequence.
        model = pipeline.model
        spec = pickle.loads(pickle.dumps(ScorerSpec.from_model(model)))
        scorer = spec.build()
        qg, candidates = scoring_inputs(pipeline, dataset.test[0])
        expected = pipeline.score_candidates(qg, candidates)

        from repro.autograd import Tensor, no_grad

        model.eval()
        with no_grad():
            compiled = model.compile(qg.graph)
            x_qry = qg.graph.features
            h_qry = model.embed(compiled, Tensor(x_qry)).data
        query_ids = np.full(len(candidates), qg.mention_node, dtype=np.int64)
        actual = scorer.score(
            h_qry,
            query_ids,
            pipeline.ref_embeddings(),
            np.asarray(candidates, dtype=np.int64),
            x_qry,
            dataset.kb.features,
        )
        assert np.array_equal(expected, actual)

    def test_spec_snapshots_matcher_state(self, pipeline):
        spec = ScorerSpec.from_model(pipeline.model)
        assert spec.matcher_name == pipeline.model.config.matcher
        assert spec.lexical_skip == pipeline.model.config.lexical_skip
        for name, value in pipeline.model.matcher.state_dict().items():
            assert np.array_equal(spec.state[name], value)


class TestShardWorkerPool:
    def test_process_backend_scores_match_thread_backend(
        self, pipeline, dataset, sharded
    ):
        thread_backend = ShardedKB(pipeline, 2, backend="thread")
        try:
            for snippet in dataset.test[:3]:
                qg, candidates = scoring_inputs(pipeline, snippet)
                assert np.array_equal(
                    thread_backend.score_candidates(qg, candidates),
                    sharded.score_candidates(qg, candidates),
                )
        finally:
            thread_backend.close()

    def test_killed_worker_respawns_and_scores_correctly(
        self, pipeline, dataset, sharded
    ):
        # Crash recovery: SIGKILL one worker, then score — the pool must
        # respawn it from the retained payload, replay the in-flight
        # request, and return the exact same scores as before the crash.
        qg, candidates = scoring_inputs(pipeline, dataset.test[0])
        before = sharded.score_candidates(qg, candidates)
        pool = sharded.worker_pool
        victim = pool.processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        assert not victim.is_alive()
        after = sharded.score_candidates(qg, candidates)
        assert np.array_equal(before, after)
        assert pool.respawns >= 1
        assert all(pool.alive())

    def test_worker_scoring_error_propagates_without_respawn(self, sharded):
        # A deterministic scoring failure (out-of-range shard-local ids)
        # is a bug, not a crash: it must surface as ShardWorkerError and
        # must NOT burn the respawn budget — the worker stays alive.
        pool = sharded.worker_pool
        shard = sharded.shards[0]
        bad = ScoreJob(
            shard_index=0,
            h_query=shard.h_ref[:1],
            query_ids=np.zeros(1, dtype=np.int64),
            ref_ids=np.array([shard.num_nodes + 7], dtype=np.int64),
        )
        with pytest.raises(ShardWorkerError, match="shard worker failed"):
            pool.score_many([bad])
        assert pool.respawns == 0
        assert all(pool.alive())
        good = ScoreJob(
            shard_index=0,
            h_query=shard.h_ref[:1],
            query_ids=np.zeros(2, dtype=np.int64),
            ref_ids=np.arange(2, dtype=np.int64),
        )
        assert pool.score_many([good])[0].shape == (2,)

    def test_error_in_fan_out_does_not_desync_other_workers(
        self, pipeline, dataset, sharded
    ):
        # One bad job in a multi-shard fan-out: the pool must still drain
        # the healthy workers' replies before raising, or the stale
        # replies would mismatch every later request's sequence number
        # and poison the pool for the rest of its life.
        pool = sharded.worker_pool
        shard = sharded.shards[0]
        jobs = [
            ScoreJob(
                shard_index=0,
                h_query=shard.h_ref[:1],
                query_ids=np.zeros(1, dtype=np.int64),
                ref_ids=np.array([shard.num_nodes + 7], dtype=np.int64),
            ),
            ScoreJob(
                shard_index=1,
                h_query=shard.h_ref[:1],
                query_ids=np.zeros(2, dtype=np.int64),
                ref_ids=np.arange(2, dtype=np.int64),
            ),
        ]
        with pytest.raises(ShardWorkerError, match="shard worker failed"):
            pool.score_many(jobs)
        # The pool stays request/reply-synchronized: full scoring through
        # the ShardedKB still matches the in-process path exactly.
        qg, candidates = scoring_inputs(pipeline, dataset.test[0])
        assert np.array_equal(
            pipeline.score_candidates(qg, candidates),
            sharded.score_candidates(qg, candidates),
        )
        assert all(pool.alive())

    def test_distribute_pushes_fresh_state_to_live_workers(
        self, pipeline, dataset, sharded
    ):
        # Warm-start refresh: perturb the weights, re-embed, distribute —
        # the live workers must score with the *new* embeddings and the
        # *new* matcher state, bit-identically to the in-process path.
        qg, candidates = scoring_inputs(pipeline, dataset.test[0])
        pids = [process.pid for process in sharded.worker_pool.processes]
        param = pipeline.model.parameters()[-1]
        original = param.data.copy()
        try:
            param.data = param.data + 0.25
            pipeline.invalidate_ref_cache()
            sharded.distribute(pipeline.ref_embeddings())
            expected = pipeline.score_candidates(qg, candidates)
            assert np.array_equal(expected, sharded.score_candidates(qg, candidates))
            # Same long-lived workers, no restart.
            assert [p.pid for p in sharded.worker_pool.processes] == pids
        finally:
            param.data = original
            pipeline.invalidate_ref_cache()
            sharded.distribute(pipeline.ref_embeddings())

    def test_score_after_close_raises(self, pipeline):
        backend = ShardedKB(pipeline, 2, backend="process")
        pool = backend.worker_pool
        if pool is None:
            backend.close()
            pytest.skip("process shard backend unavailable")
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.score_many([])

    def test_distribute_validates_slice_count(self, sharded):
        with pytest.raises(ValueError):
            sharded.worker_pool.distribute(
                [sharded.shards[0].h_ref], ScorerSpec.from_model(sharded.pipeline.model)
            )


class FakeClock:
    """Monotonic fake clock advanced by ``step`` on every read."""

    def __init__(self, step: float = 0.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestCloseDrain:
    """Fake-clock tests of the close() drain contract: in-flight shard
    requests finish before the workers are stopped; a drain timeout on
    the injected clock bounds the wait."""

    def make_pool(self, pipeline, clock):
        sharded = ShardedKB(pipeline, 2, backend="process")
        pool = sharded.worker_pool
        if pool is None:
            sharded.close()
            pytest.skip("process shard backend unavailable")
        pool.clock = clock
        return sharded, pool

    def test_close_waits_for_in_flight_requests(self, pipeline):
        sharded, pool = self.make_pool(pipeline, FakeClock(step=0.0))
        pool._begin()  # simulate a fan-out another thread has in flight
        closed = threading.Event()

        def closer():
            pool.close()  # no timeout: must drain, however long it takes
            closed.set()

        thread = threading.Thread(target=closer)
        thread.start()
        try:
            assert not closed.wait(0.3)  # still draining
            with pytest.raises(RuntimeError):
                pool._begin()  # close() already rejects new requests
        finally:
            pool._end()  # the in-flight request lands
        thread.join(timeout=10.0)
        assert closed.is_set()
        assert pool.num_workers == 0
        sharded.close()

    def test_close_timeout_bounds_the_drain(self, pipeline):
        # The clock jumps 1s per read: a 5s drain budget expires after a
        # few waits even though the in-flight request never finishes.
        sharded, pool = self.make_pool(pipeline, FakeClock(step=1.0))
        pool._begin()
        t0 = time.monotonic()
        pool.close(timeout=5.0)
        assert time.monotonic() - t0 < 5.0  # fake seconds, not real ones
        assert pool.num_workers == 0  # workers stopped despite no drain
        pool._end()
        sharded.close()
