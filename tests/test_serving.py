"""Tests for the batched linking service (repro.serving).

Covers batch-vs-sequential result equivalence (the service must return
exactly what ``EDPipeline.disambiguate_snippet`` returns), the result
LRU cache (hits, context sensitivity, invalidation), the persisted
reference-embedding cache, the stats counters, and the vectorised
matcher fast paths the service relies on.
"""

import numpy as np
import pytest

from repro.core import EDPipeline, ModelConfig, TrainConfig, make_matcher
from repro.autograd import Tensor
from repro.datasets import load_dataset
from repro.serving import LinkingService, LRUCache, ServiceConfig
from repro.storage import StorageConfig
from repro.text.corpus import Snippet

SCALE = 0.2


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=SCALE)


@pytest.fixture(scope="module")
def pipeline(dataset):
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, seed=0),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
    )
    pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe


def assert_equivalent(service, pipeline, snippets, top_k=5, restrict=True):
    batched = service.link_batch(snippets, top_k=top_k, restrict_to_candidates=restrict)
    for snippet, batch_pred in zip(snippets, batched):
        seq_pred = pipeline.disambiguate_snippet(
            snippet, top_k=top_k, restrict_to_candidates=restrict
        )
        assert batch_pred.mention == seq_pred.mention
        assert batch_pred.ranked_entities == seq_pred.ranked_entities
        assert np.allclose(batch_pred.scores, seq_pred.scores, atol=1e-4)


class TestEquivalence:
    def test_link_batch_matches_sequential(self, pipeline, dataset):
        service = LinkingService(pipeline, ServiceConfig(max_batch_size=8, cache_size=0))
        assert_equivalent(service, pipeline, dataset.test)

    def test_unrestricted_candidates(self, pipeline, dataset):
        service = LinkingService(pipeline, ServiceConfig(max_batch_size=8, cache_size=0))
        assert_equivalent(service, pipeline, dataset.test[:6], restrict=False)

    def test_partial_final_microbatch(self, pipeline, dataset):
        # 7 snippets with batch size 4 -> a full chunk and a ragged one.
        service = LinkingService(pipeline, ServiceConfig(max_batch_size=4, cache_size=0))
        assert_equivalent(service, pipeline, dataset.test[:7])
        assert service.stats.batches == 2
        assert service.stats.batch_sizes == [4, 3]

    def test_equivalence_with_cache_enabled(self, pipeline, dataset):
        service = LinkingService(pipeline, ServiceConfig(max_batch_size=8, cache_size=512))
        snippets = list(dataset.test) * 2  # replay forces cache hits
        assert_equivalent(service, pipeline, snippets)

    def test_non_union_batchable_encoder_falls_back(self, dataset):
        # MAGNN's inter-metapath attention is graph-global; the service
        # must embed per graph yet still match the sequential pipeline.
        pipe = EDPipeline(
            dataset.kb,
            model_config=ModelConfig(variant="magnn", num_layers=1, seed=0),
        )
        assert pipe.model.encoder.union_batchable is False
        service = LinkingService(pipe, ServiceConfig(max_batch_size=4, cache_size=0))
        assert_equivalent(service, pipe, dataset.test[:6])

    def test_link_texts_matches_snippet_path(self, pipeline):
        text = (
            "The patient presented with mild spinal hyperplasia, "
            "congenital cardiac cancer and primary dermal necrosis."
        )
        service = LinkingService(pipeline, ServiceConfig(cache_size=0))
        [prediction] = service.link_texts([text])
        sequential = pipeline.disambiguate(text, top_k=service.config.top_k)
        assert prediction.mention == sequential.mention
        assert prediction.ranked_entities == sequential.ranked_entities


class TestResultCache:
    def test_repeat_requests_hit(self, pipeline, dataset):
        service = LinkingService(pipeline, ServiceConfig(cache_size=512))
        first = service.link_batch(dataset.test)
        assert service.stats.cache_hits == 0
        second = service.link_batch(dataset.test)
        assert service.stats.cache_hits == len(dataset.test)
        assert service.stats.batches == pytest.approx(
            np.ceil(len(dataset.test) / service.config.max_batch_size)
        )
        for a, b in zip(first, second):
            assert a.ranked_entities == b.ranked_entities
            assert a.scores == b.scores

    def test_context_changes_miss(self, pipeline, dataset):
        # Same ambiguous mention, context stripped: scoring may differ, so
        # the cache must not serve the full-context entry.
        snippet = dataset.test[0]
        stripped = Snippet(
            text=snippet.ambiguous_mention.mention,
            mentions=[snippet.ambiguous_mention],
            ambiguous_index=0,
        )
        service = LinkingService(pipeline, ServiceConfig(cache_size=512))
        service.link_batch([snippet])
        service.link_batch([stripped])
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 2
        assert_equivalent(service, pipeline, [stripped])

    def test_intra_batch_duplicates_computed_once(self, pipeline, dataset):
        snippet = dataset.test[0]
        service = LinkingService(
            pipeline, ServiceConfig(max_batch_size=8, cache_size=512)
        )
        first, second, third = service.link_batch([snippet] * 3)
        assert service.stats.cache_hits == 2
        assert service.stats.cache_misses == 1
        assert service.stats.batch_sizes == [1]  # duplicates never scored
        assert first.ranked_entities == second.ranked_entities == third.ranked_entities
        assert first.scores == second.scores == third.scores
        assert_equivalent(service, pipeline, [snippet])

    def test_cache_disabled(self, pipeline, dataset):
        service = LinkingService(pipeline, ServiceConfig(cache_size=0))
        service.link_batch(dataset.test[:3])
        service.link_batch(dataset.test[:3])
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 6

    def test_weight_change_invalidates(self, pipeline, dataset):
        service = LinkingService(pipeline, ServiceConfig(cache_size=512))
        service.link_batch(dataset.test[:4])
        before = service.fingerprint()

        param = pipeline.model.parameters()[0]
        original = param.data.copy()
        try:
            param.data = param.data + 0.25
            assert service.fingerprint() != before
            assert service.refresh() is True
            assert service.stats.ref_refreshes == 2
            # Cache was cleared: the same request recomputes.
            service.link_batch(dataset.test[:4])
            assert service.stats.cache_hits == 0
            assert_equivalent(service, pipeline, dataset.test[:4])
        finally:
            param.data = original
            pipeline.invalidate_ref_cache()

    def test_kb_edge_rewire_invalidates(self, dataset):
        # Edge mutations that keep node/edge counts plausible must still
        # flip the fingerprint (the KB version counter covers them).
        kb = dataset.kb.copy()
        pipe = EDPipeline(
            kb, model_config=ModelConfig(variant="graphsage", num_layers=1, seed=0)
        )
        service = LinkingService(pipe, ServiceConfig(cache_size=16))
        before = service.fingerprint()
        src, dst, et = kb.edges()
        kb.add_edge(int(dst[0]), int(src[0]), int(et[0]))
        assert service.fingerprint() != before
        assert service.refresh() is True

    def test_deferred_eviction_fallback_accounting(self, pipeline, dataset):
        # Capacity 1: the duplicate's entry is evicted before the deferred
        # loop runs, forcing a recompute that must count as a miss and a
        # recorded batch — not a phantom cache hit.
        a, b = dataset.test[0], dataset.test[1]
        service = LinkingService(
            pipeline, ServiceConfig(max_batch_size=8, cache_size=1)
        )
        results = service.link_batch([a, a, b])
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 3
        assert service.stats.batch_sizes == [2, 1]
        assert results[0].ranked_entities == results[1].ranked_entities
        assert_equivalent(service, pipeline, [a, b])

    def test_refresh_noop_when_unchanged(self, pipeline):
        service = LinkingService(pipeline, ServiceConfig(cache_size=512))
        assert service.refresh() is False
        assert service.stats.ref_refreshes == 1


class TestRefEmbeddingPersistence:
    # The .npz persistence contract belongs to the memory embedding
    # store, so these pin storage explicitly (the kb-store CI axis
    # forces mmap via REPRO_KB_STORE, whose bundle persists h_ref
    # itself and ignores ref_cache_path).
    def test_ref_cache_roundtrip(self, pipeline, tmp_path, monkeypatch):
        path = str(tmp_path / "ref.npz")
        memory = StorageConfig(kb_store="memory")
        first = LinkingService(
            pipeline, ServiceConfig(ref_cache_path=path, storage=memory)
        )
        assert (tmp_path / "ref.npz").exists()

        # A second service must load the persisted embeddings instead of
        # recomputing them.
        def boom(self):
            raise AssertionError("ref embeddings recomputed despite a valid cache")

        monkeypatch.setattr(EDPipeline, "ref_embeddings", boom)
        second = LinkingService(
            pipeline, ServiceConfig(ref_cache_path=path, storage=memory)
        )
        assert np.array_equal(first._h_ref.data, second._h_ref.data)

    def test_stale_ref_cache_rejected(self, pipeline, tmp_path):
        path = str(tmp_path / "ref.npz")
        service = LinkingService(
            pipeline,
            ServiceConfig(
                ref_cache_path=path, storage=StorageConfig(kb_store="memory")
            ),
        )
        with np.load(path) as payload:
            h_ref = payload["h_ref"]
        np.savez(path, fingerprint=np.int64(12345), h_ref=np.zeros_like(h_ref))
        assert service.embedding_store.load(service.content_fingerprint()) is None


class TestStats:
    def test_counters(self, pipeline, dataset):
        service = LinkingService(
            pipeline, ServiceConfig(max_batch_size=4, cache_size=512)
        )
        service.link_batch(dataset.test[:6])
        stats = service.stats
        assert stats.requests == 1
        assert stats.mentions == 6
        assert stats.batches == 2
        assert stats.mean_batch_size == 3.0
        assert stats.max_batch_size == 4
        assert stats.compute_seconds > 0
        assert stats.mentions_per_second > 0
        payload = stats.to_dict()
        assert payload["cache_hit_rate"] == 0.0
        assert "mentions_per_second" in stats.format()
        stats.reset()
        assert stats.mentions == 0 and stats.batch_sizes == []

    def test_hit_rate(self, pipeline, dataset):
        service = LinkingService(pipeline, ServiceConfig(cache_size=512))
        service.link_batch(dataset.test[:4])
        service.link_batch(dataset.test[:4])
        assert service.stats.cache_hit_rate == 0.5


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestMatcherFastPaths:
    @pytest.mark.parametrize("name", ["dot", "mlp", "bilinear"])
    def test_one_vs_many_matches_forward(self, name):
        rng = np.random.default_rng(7)
        matcher = make_matcher(name, 16, rng)
        matcher.eval()
        query = rng.normal(size=16).astype(np.float32)
        candidates = rng.normal(size=(11, 16)).astype(np.float32)
        tiled = Tensor(np.repeat(query.reshape(1, -1), 11, axis=0))
        expected = matcher(tiled, Tensor(candidates)).data.reshape(-1)
        fast = matcher.one_vs_many(query, candidates)
        assert np.allclose(fast, expected, atol=1e-5)


class TestStagedPipelineAPI:
    def test_candidate_ids_fallbacks(self, pipeline):
        known = pipeline.index.known_surfaces()[0]
        candidates = pipeline.candidate_ids(known)
        assert list(candidates) == pipeline.index.lookup(known)
        everything = pipeline.candidate_ids("zzz unheard of", category=None)
        assert len(everything) == pipeline.kb.num_nodes

    def test_score_candidates_shape(self, pipeline, dataset):
        qg = pipeline.build_query_graph_for(dataset.test[0])
        candidates = pipeline.candidate_ids(qg.mention_surface)
        scores = pipeline.score_candidates(qg, candidates)
        assert scores.shape == (len(candidates),)
        prediction = pipeline.prediction_from_scores(
            qg.mention_surface, candidates, scores, top_k=3
        )
        assert len(prediction.ranked_entities) <= 3
        assert prediction.scores == sorted(prediction.scores, reverse=True)
