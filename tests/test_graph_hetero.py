"""Tests for the heterogeneous graph substrate (schema + storage +
adjacency + similarity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    GraphSchema,
    HeteroGraph,
    Relation,
    StructuralSimilarity,
    extended_medical_schema,
    jaccard_neighbors,
    medical_schema,
    neighbor_label_multiset,
    normalized_ged_similarity,
    star_edit_distance,
)


@pytest.fixture
def toy():
    """The Figure 1 toy graph."""
    g = HeteroGraph(medical_schema())
    g.aspirin = g.add_node("Drug", "aspirin")
    g.metformin = g.add_node("Drug", "metformin")
    g.nausea = g.add_node("AdverseEffect", "nausea")
    g.diarrhea = g.add_node("AdverseEffect", "diarrhea")
    g.headache = g.add_node("Symptom", "headache")
    g.fever = g.add_node("Finding", "fever")
    g.add_edge_by_name(g.aspirin, g.nausea, "CAUSE")
    g.add_edge_by_name(g.metformin, g.diarrhea, "CAUSE")
    g.add_edge_by_name(g.aspirin, g.headache, "TREAT")
    g.add_edge_by_name(g.diarrhea, g.fever, "HAS")
    return g


class TestSchema:
    def test_duplicate_node_types_rejected(self):
        with pytest.raises(ValueError):
            GraphSchema(["A", "A"], [])

    def test_unknown_type_in_relation_rejected(self):
        with pytest.raises(ValueError):
            GraphSchema(["A"], [Relation("R", "A", "B")])

    def test_duplicate_relation_rejected(self):
        with pytest.raises(ValueError):
            GraphSchema(["A"], [Relation("R", "A", "A"), Relation("R", "A", "A")])

    def test_same_name_different_signature_allowed(self):
        schema = GraphSchema(
            ["A", "B"], [Relation("R", "A", "B"), Relation("R", "B", "A")]
        )
        assert schema.num_relations == 2
        assert schema.relation_ids_by_name("R") == [0, 1]

    def test_partner_types(self):
        schema = medical_schema()
        partners = schema.partner_types("Drug")
        assert set(partners) == {"Symptom", "AdverseEffect"}

    def test_relations_touching(self):
        schema = medical_schema()
        touching = schema.relations_touching("Finding")
        names = {schema.relation(r).name for r in touching}
        assert names == {"INDICATE", "HAS"}

    def test_extended_schema_valid(self):
        schema = extended_medical_schema()
        assert schema.num_node_types == 7
        assert schema.num_relations == 12


class TestGraphConstruction:
    def test_counts(self, toy):
        assert toy.num_nodes == 6
        assert toy.num_edges == 4

    def test_node_accessors(self, toy):
        assert toy.node_name(toy.aspirin) == "aspirin"
        assert toy.node_type_name(toy.aspirin) == "Drug"
        assert toy.node_aliases(toy.aspirin) == ()

    def test_add_edge_validates_endpoints(self, toy):
        with pytest.raises(IndexError):
            toy.add_edge(0, 99, 0)
        with pytest.raises(IndexError):
            toy.add_edge(0, 1, 99)

    def test_add_edge_by_name_resolves_signature(self, toy):
        with pytest.raises(KeyError):
            toy.add_edge_by_name(toy.aspirin, toy.fever, "CAUSE")  # Drug->Finding not CAUSE

    def test_nodes_of_type(self, toy):
        drugs = toy.nodes_of_type("Drug")
        assert set(drugs.tolist()) == {toy.aspirin, toy.metformin}

    def test_histograms(self, toy):
        hist = toy.type_histogram()
        assert hist["Drug"] == 2 and hist["Finding"] == 1
        rel_hist = toy.relation_histogram()
        assert sum(rel_hist.values()) == 4

    def test_features_validation(self, toy):
        with pytest.raises(ValueError):
            toy.set_features(np.zeros((2, 4)))
        toy.set_features(np.zeros((6, 4)))
        assert toy.features.shape == (6, 4)

    def test_copy_is_independent(self, toy):
        clone = toy.copy()
        clone.add_node("Drug", "newdrug")
        assert toy.num_nodes == 6
        assert clone.num_nodes == 7


class TestAdjacency:
    def test_out_in_neighbors(self, toy):
        assert set(toy.out_neighbors(toy.aspirin).tolist()) == {toy.nausea, toy.headache}
        assert toy.in_neighbors(toy.fever).tolist() == [toy.diarrhea]
        assert toy.out_neighbors(toy.fever).size == 0

    def test_neighbors_union(self, toy):
        assert set(toy.neighbors(toy.diarrhea).tolist()) == {toy.metformin, toy.fever}

    def test_degree(self, toy):
        assert toy.degree(toy.aspirin) == 2
        assert toy.degree(toy.fever) == 1

    def test_edge_between(self, toy):
        rel = toy.edge_between(toy.aspirin, toy.nausea)
        assert toy.schema.relation(rel).name == "CAUSE"
        assert toy.edge_between(toy.nausea, toy.aspirin) is None
        assert toy.has_edge(toy.diarrhea, toy.fever)

    def test_adjacency_invalidated_on_mutation(self, toy):
        _ = toy.neighbors(toy.aspirin)  # build caches
        new = toy.add_node("Finding", "rash")
        toy.add_edge_by_name(toy.nausea, new, "HAS")
        assert new in toy.out_neighbors(toy.nausea).tolist()
        assert toy.edge_between(toy.nausea, new) is not None

    def test_out_edges_returns_relations(self, toy):
        nbrs, rels = toy.out_edges(toy.aspirin)
        names = {toy.schema.relation(r).name for r in rels.tolist()}
        assert names == {"CAUSE", "TREAT"}


class TestViews:
    def test_bidirected_doubles_edges(self, toy):
        view = toy.to_bidirected()
        assert view.num_edges == 2 * toy.num_edges
        assert view.num_relations == 2 * toy.schema.num_relations
        # Inverse edges carry offset relation ids.
        assert set(view.etypes.tolist()) >= {0, toy.schema.num_relations}

    def test_self_loops_added(self, toy):
        view = toy.with_self_loops()
        assert view.num_edges == 2 * toy.num_edges + toy.num_nodes
        assert view.num_relations == 2 * toy.schema.num_relations + 1


class TestStructuralSimilarity:
    def test_identical_stars(self, toy):
        assert normalized_ged_similarity(toy, toy.aspirin, toy.aspirin) == pytest.approx(1.0)

    def test_isolated_nodes_are_identical(self, toy):
        a = toy.add_node("Drug", "x")
        b = toy.add_node("Drug", "y")
        assert normalized_ged_similarity(toy, a, b) == pytest.approx(1.0)

    def test_disjoint_stars(self, toy):
        sim = normalized_ged_similarity(toy, toy.aspirin, toy.fever)
        assert sim == pytest.approx(0.0)

    def test_shared_neighbors_raise_similarity(self, toy):
        # Give metformin the same CAUSE->nausea edge as aspirin.
        toy.add_edge_by_name(toy.metformin, toy.nausea, "CAUSE")
        sim_shared = normalized_ged_similarity(toy, toy.aspirin, toy.metformin)
        assert sim_shared > 0.0

    def test_cached_matches_direct(self, toy):
        cached = StructuralSimilarity(toy)
        direct = normalized_ged_similarity(toy, toy.aspirin, toy.metformin)
        assert cached.similarity(toy.aspirin, toy.metformin) == pytest.approx(direct)

    def test_star_edit_distance_symmetry(self, toy):
        sig_a = neighbor_label_multiset(toy, toy.aspirin)
        sig_b = neighbor_label_multiset(toy, toy.metformin)
        assert star_edit_distance(sig_a, sig_b) == star_edit_distance(sig_b, sig_a)

    def test_jaccard(self, toy):
        assert jaccard_neighbors(toy, toy.aspirin, toy.aspirin) == 1.0
        assert jaccard_neighbors(toy, toy.aspirin, toy.fever) == 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16), n_edges=st.integers(0, 40))
def test_property_random_graph_invariants(seed, n_edges):
    """Random graphs keep basic invariants: degree sums, view sizes,
    similarity bounds and symmetry."""
    rng = np.random.default_rng(seed)
    schema = medical_schema()
    g = HeteroGraph(schema)
    for t in schema.node_types:
        for i in range(3):
            g.add_node(t, f"{t.lower()} {i}")
    for _ in range(n_edges):
        rel_id = int(rng.integers(0, schema.num_relations))
        rel = schema.relation(rel_id)
        src = int(rng.choice(g.nodes_of_type(rel.src_type)))
        dst = int(rng.choice(g.nodes_of_type(rel.dst_type)))
        g.add_edge(src, dst, rel_id)

    total_out = sum(len(g.out_neighbors(v)) for v in range(g.num_nodes))
    total_in = sum(len(g.in_neighbors(v)) for v in range(g.num_nodes))
    assert total_out == g.num_edges == total_in
    assert g.to_bidirected().num_edges == 2 * g.num_edges

    u, v = int(rng.integers(0, g.num_nodes)), int(rng.integers(0, g.num_nodes))
    s_uv = normalized_ged_similarity(g, u, v)
    s_vu = normalized_ged_similarity(g, v, u)
    assert 0.0 <= s_uv <= 1.0
    assert s_uv == pytest.approx(s_vu)
