"""Tests for the structural ops (gather/scatter/segment softmax/...),
which implement all message passing in the GNN encoders.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    gather,
    rows_dot,
    scatter_add,
    scatter_max_data,
    scatter_mean,
    segment_softmax,
    stack,
    where,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def randt(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True, dtype=np.float64)


class TestGatherScatter:
    def test_gather_values(self, rng):
        src = randt(rng, 5, 3)
        idx = np.array([4, 0, 0])
        out = gather(src, idx)
        np.testing.assert_allclose(out.data, src.data[idx])

    def test_gather_gradient(self, rng):
        src = randt(rng, 5, 3)
        idx = np.array([4, 0, 0, 2])
        check_gradients(lambda s: (gather(s, idx) ** 2).sum(), [src])

    def test_gather_rejects_float_index(self, rng):
        with pytest.raises(TypeError):
            gather(randt(rng, 3, 2), np.array([0.5]))

    def test_scatter_add_values(self, rng):
        vals = Tensor(np.ones((4, 2)))
        out = scatter_add(vals, np.array([0, 0, 2, 2]), 3)
        np.testing.assert_allclose(out.data, [[2, 2], [0, 0], [2, 2]])

    def test_scatter_add_gradient(self, rng):
        vals = randt(rng, 6, 2)
        idx = np.array([0, 1, 1, 3, 3, 3])
        check_gradients(lambda v: (scatter_add(v, idx, 4) ** 2).sum(), [vals])

    def test_scatter_gather_roundtrip(self, rng):
        """scatter_add of gathered one-hot rows reconstructs the source."""
        src = randt(rng, 4, 3)
        idx = np.arange(4)
        out = scatter_add(gather(src, idx), idx, 4)
        np.testing.assert_allclose(out.data, src.data)

    def test_scatter_mean_empty_segment_zero(self, rng):
        vals = Tensor(np.ones((2, 2)))
        out = scatter_mean(vals, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[0], 1.0)

    def test_scatter_max_data(self):
        vals = np.array([[1.0], [5.0], [3.0]])
        out = scatter_max_data(vals, np.array([0, 0, 1]), 3)
        assert out[0, 0] == 5.0
        assert out[1, 0] == 3.0
        assert out[2, 0] == 0.0  # empty segment defaults to 0


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self, rng):
        scores = randt(rng, 7)
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        out = segment_softmax(scores, seg, 3)
        for s in range(3):
            assert out.data[seg == s].sum() == pytest.approx(1.0, abs=1e-6)

    def test_multidim_scores(self, rng):
        scores = randt(rng, 6, 2)  # two attention heads
        seg = np.array([0, 0, 0, 1, 1, 1])
        out = segment_softmax(scores, seg, 2)
        np.testing.assert_allclose(out.data[:3].sum(axis=0), [1.0, 1.0], atol=1e-6)

    def test_gradient(self, rng):
        scores = randt(rng, 7)
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        weights = rng.standard_normal(7)
        check_gradients(
            lambda s: (segment_softmax(s, seg, 3) * Tensor(weights)).sum(), [scores]
        )

    def test_large_scores_stable(self):
        scores = Tensor(np.array([1000.0, 1000.0, -1000.0]))
        out = segment_softmax(scores, np.array([0, 0, 0]), 1)
        assert np.all(np.isfinite(out.data))
        assert out.data.sum() == pytest.approx(1.0, abs=1e-6)


class TestConcatStack:
    def test_concat_values_and_gradient(self, rng):
        a, b = randt(rng, 2, 3), randt(rng, 4, 3)
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda a, b: (concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1(self, rng):
        a, b = randt(rng, 2, 3), randt(rng, 2, 5)
        check_gradients(lambda a, b: (concat([a, b], axis=1) ** 3).sum(), [a, b])

    def test_stack_new_axis(self, rng):
        a, b = randt(rng, 2, 3), randt(rng, 2, 3)
        out = stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda a, b: (stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_scalars(self, rng):
        scalars = [randt(rng) for _ in range(3)]
        out = stack(scalars, axis=0)
        assert out.shape == (3,)


class TestWhereRowsDot:
    def test_where_selects(self, rng):
        cond = np.array([True, False, True])
        a, b = randt(rng, 3), randt(rng, 3)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, np.where(cond, a.data, b.data))

    def test_where_gradient_flows_to_selected(self, rng):
        cond = np.array([True, False])
        a, b = randt(rng, 2), randt(rng, 2)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_rows_dot(self, rng):
        a, b = randt(rng, 4, 3), randt(rng, 4, 3)
        out = rows_dot(a, b)
        np.testing.assert_allclose(out.data, np.einsum("ij,ij->i", a.data, b.data))
        check_gradients(lambda a, b: rows_dot(a, b).sum(), [a, b])


@settings(max_examples=25, deadline=None)
@given(
    n_values=st.integers(1, 20),
    n_segments=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
def test_property_scatter_add_preserves_total(n_values, n_segments, seed):
    rng = np.random.default_rng(seed)
    vals = Tensor(rng.standard_normal((n_values, 2)))
    idx = rng.integers(0, n_segments, size=n_values)
    out = scatter_add(vals, idx, n_segments)
    np.testing.assert_allclose(out.data.sum(axis=0), vals.data.sum(axis=0), atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 20), seed=st.integers(0, 2**16))
def test_property_segment_softmax_in_simplex(n, seed):
    rng = np.random.default_rng(seed)
    scores = Tensor(rng.standard_normal(n) * 5)
    seg = np.sort(rng.integers(0, 3, size=n))
    out = segment_softmax(scores, seg, 3).data
    assert np.all(out >= 0) and np.all(out <= 1 + 1e-9)
