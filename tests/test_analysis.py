"""Tests for the dataset-characterisation subpackage (repro.analysis)."""

import pytest

from repro.analysis import (
    ambiguity_profile,
    context_stats,
    degree_statistics,
    discrepancy_mix,
    edges_per_node,
    sibling_similarity,
    summarize_corpus,
    summarize_kb,
)
from repro.datasets import load_dataset
from repro.graph import HeteroGraph, medical_schema
from repro.text import MentionAnnotation, Snippet, mint_cui


@pytest.fixture
def toy():
    g = HeteroGraph(medical_schema())
    g.aspirin = g.add_node("Drug", "aspirin")
    g.renal = g.add_node("Finding", "acute renal failure", aliases=("ARF",))
    g.resp = g.add_node("Finding", "acute respiratory failure")
    g.nausea = g.add_node("AdverseEffect", "nausea")
    g.isolated = g.add_node("Symptom", "floating symptom")
    g.add_edge_by_name(g.aspirin, g.nausea, "CAUSE")
    g.add_edge_by_name(g.nausea, g.renal, "HAS")
    g.add_edge_by_name(g.nausea, g.resp, "HAS")
    return g


class TestDegreeStats:
    def test_values_on_toy(self, toy):
        stats = degree_statistics(toy)
        assert stats.mean == pytest.approx(6 / 5)  # 3 edges, both endpoints
        assert stats.max == 3  # nausea
        assert stats.isolated_fraction == pytest.approx(1 / 5)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            degree_statistics(HeteroGraph(medical_schema()))

    def test_edges_per_node(self, toy):
        assert edges_per_node(toy) == pytest.approx(3 / 5)

    def test_density_ordering_matches_table2(self):
        """The MIMIC-III analogue must be denser than the MDX analogue —
        the Table 2 relationship the profiles encode."""
        mimic = load_dataset("MIMIC-III", scale=0.05, use_cache=False).kb
        mdx = load_dataset("MDX", scale=0.05, use_cache=False).kb
        assert edges_per_node(mimic) > edges_per_node(mdx)


class TestAmbiguity:
    def test_arf_collision_detected(self, toy):
        profile = ambiguity_profile(toy)
        assert profile.ambiguous_surfaces >= 1
        assert profile.max_candidates >= 2
        surfaces = [s for s, _ in profile.top_ambiguous]
        assert "arf" in surfaces

    def test_fraction_bounds(self, toy):
        profile = ambiguity_profile(toy)
        assert 0.0 <= profile.ambiguous_fraction <= 1.0


class TestSiblingSimilarity:
    def test_range_and_determinism(self, toy):
        a = sibling_similarity(toy, sample_pairs=50, seed=1)
        b = sibling_similarity(toy, sample_pairs=50, seed=1)
        assert a == b
        assert 0.0 <= a <= 1.0

    def test_needs_two_nodes(self):
        g = HeteroGraph(medical_schema())
        g.add_node("Drug", "only one")
        with pytest.raises(ValueError):
            sibling_similarity(g)

    def test_metric_selectable(self, toy):
        for metric in ("star_ged", "mcs", "jaccard"):
            value = sibling_similarity(toy, metric=metric, sample_pairs=20)
            assert 0.0 <= value <= 1.0


class TestKbSummary:
    def test_summary_keys(self, toy):
        summary = summarize_kb(toy, sample_pairs=20)
        assert summary["nodes"] == toy.num_nodes
        assert summary["edges"] == toy.num_edges
        assert "degrees" in summary and "ambiguity" in summary


def make_snippet(kb, gold, surface, context_nodes):
    mentions = [MentionAnnotation(surface, 0, len(surface), kb.node_type_name(gold), mint_cui(gold))]
    cursor = len(surface) + 2
    for node in context_nodes:
        name = kb.node_name(node)
        mentions.append(
            MentionAnnotation(name, cursor, cursor + len(name), kb.node_type_name(node), mint_cui(node))
        )
        cursor += len(name) + 2
    text = ", ".join([surface] + [kb.node_name(n) for n in context_nodes])
    return Snippet(text=text, mentions=mentions, ambiguous_index=0)


class TestCorpusStats:
    def test_context_stats(self, toy):
        snippets = [
            make_snippet(toy, toy.renal, "ARF", [toy.nausea]),
            make_snippet(toy, toy.renal, "acute renal failure", [toy.nausea, toy.aspirin]),
        ]
        stats = context_stats(snippets)
        assert stats.mean_mentions == pytest.approx(2.5)
        assert stats.min_mentions == 2
        assert stats.max_mentions == 3
        assert stats.single_context_fraction == pytest.approx(0.5)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            context_stats([])

    def test_discrepancy_mix_classifies(self, toy):
        snippets = [
            make_snippet(toy, toy.renal, "ARF", [toy.nausea]),  # acronym
            make_snippet(toy, toy.renal, "acute renal failure", []),  # exact
            make_snippet(toy, toy.renal, "zzz unrelated zzz", []),  # unknown
        ]
        mix = discrepancy_mix(snippets, toy)
        assert mix.fractions["acronym"] == pytest.approx(1 / 3)
        assert mix.fractions["exact"] == pytest.approx(1 / 3)
        assert mix.n_unknown == 1

    def test_summarize_corpus_with_kb(self, toy):
        snippets = [make_snippet(toy, toy.renal, "ARF", [toy.nausea])]
        summary = summarize_corpus(snippets, toy)
        assert summary["snippets"] == 1
        assert "discrepancies" in summary

    def test_dataset_profiles_drive_measured_mix(self):
        """The NCBI profile allocates ~30% synonyms; the measured mix on
        the generated corpus must show a nonzero synonym share."""
        dataset = load_dataset("NCBI", scale=0.3)
        mix = discrepancy_mix(dataset.snippets, dataset.kb)
        assert mix.fractions.get("acronym", 0) > 0
        assert mix.n_classified > 0

    def test_mimic_snippets_are_short(self):
        """MIMIC-III's short-snippet character (context mean 1.6) must be
        measurable against the MDX analogue (3.5)."""
        mimic = load_dataset("MIMIC-III", scale=0.05, use_cache=False)
        mdx = load_dataset("MDX", scale=0.05, use_cache=False)
        assert (
            context_stats(mimic.snippets).mean_mentions
            < context_stats(mdx.snippets).mean_mentions
        )
