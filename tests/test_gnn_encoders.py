"""Tests for the seven GNN encoders: shapes, gradients, masking, and the
aggregation semantics each architecture promises."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.gnn import (
    GAT,
    GCN,
    HAN,
    MAGNN,
    RGCN,
    GraphSAGE,
    HetGNN,
    RelationalRotationEncoder,
)
from repro.graph import HeteroGraph, Metapath, medical_schema
from repro.text import HashingNgramEmbedder, node_features_for_graph

DIM = 16


@pytest.fixture
def graph():
    rng = np.random.default_rng(5)
    schema = medical_schema()
    g = HeteroGraph(schema)
    for t in schema.node_types:
        for i in range(6):
            g.add_node(t, f"{t.lower()} number {i}")
    for _ in range(60):
        rel_id = int(rng.integers(0, schema.num_relations))
        rel = schema.relation(rel_id)
        s = int(rng.choice(g.nodes_of_type(rel.src_type)))
        d = int(rng.choice(g.nodes_of_type(rel.dst_type)))
        if s != d:
            g.add_edge(s, d, rel_id)
    g.set_features(node_features_for_graph(g, HashingNgramEmbedder(dim=DIM)))
    return g


def build(kind, graph, layers=2):
    rng = np.random.default_rng(0)
    schema = graph.schema
    if kind == "sage":
        return GraphSAGE(DIM, DIM, layers, rng)
    if kind == "rgcn":
        return RGCN(DIM, DIM, layers, schema.num_relations, rng)
    if kind == "magnn":
        return MAGNN(DIM, DIM, layers, schema, rng, num_heads=2, attention_dim=8)
    if kind == "gcn":
        return GCN(DIM, DIM, layers, rng)
    if kind == "gat":
        return GAT(DIM, DIM, layers, rng, num_heads=2)
    if kind == "han":
        return HAN(DIM, DIM, layers, schema, rng, num_heads=2, attention_dim=8)
    if kind == "hetgnn":
        return HetGNN(DIM, DIM, layers, schema, rng)
    raise ValueError(kind)


ALL_KINDS = ["sage", "rgcn", "magnn", "gcn", "gat", "han", "hetgnn"]


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCommonBehaviour:
    def test_output_shape(self, graph, kind):
        enc = build(kind, graph)
        out = enc.encode(graph)
        assert out.shape == (graph.num_nodes, DIM)
        assert np.all(np.isfinite(out.data))

    def test_gradients_reach_all_parameters(self, graph, kind):
        enc = build(kind, graph)
        enc.train()
        out = enc.encode(graph)
        (out * out).mean().backward()
        missing = [n for n, p in enc.named_parameters() if p.grad is None]
        assert not missing, f"no grad for {missing}"

    def test_eval_deterministic(self, graph, kind):
        enc = build(kind, graph)
        enc.eval()
        with no_grad():
            a = enc.encode(graph).data
            b = enc.encode(graph).data
        np.testing.assert_allclose(a, b)

    def test_single_layer_works(self, graph, kind):
        enc = build(kind, graph, layers=1)
        assert enc.encode(graph).shape == (graph.num_nodes, DIM)

    def test_zero_layers_rejected(self, graph, kind):
        with pytest.raises(ValueError):
            build(kind, graph, layers=0)

    def test_full_mask_matches_no_mask(self, graph, kind):
        """edge_mask of all ones must reproduce the unmasked output."""
        enc = build(kind, graph)
        enc.eval()
        compiled = enc.compile(graph)
        feats = Tensor(graph.features)
        with no_grad():
            base = enc.forward(compiled, feats).data
            if kind == "magnn":
                mask = Tensor(np.ones(graph.num_edges, dtype=np.float32))
            else:
                mask = enc.expand_edge_mask(
                    compiled, Tensor(np.ones(graph.num_edges, dtype=np.float32))
                )
            masked = enc.forward(compiled, feats, mask).data
        np.testing.assert_allclose(base, masked, atol=1e-5)


class TestNumericalGradients:
    """Finite-difference verification of the full encoder backward pass
    w.r.t. the input features — the correctness anchor on top of the
    per-op gradchecks in test_autograd_ops."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_feature_gradients_match_finite_differences(self, graph, kind):
        from repro.autograd import check_gradients

        enc = build(kind, graph, layers=1)
        enc.eval()  # dropout off: fn must be deterministic
        compiled = enc.compile(graph)
        features = Tensor(
            graph.features.astype(np.float64), requires_grad=True
        )
        check_gradients(
            lambda x: enc.forward(compiled, x).sum(),
            [features],
            atol=5e-3,
            rtol=5e-2,
        )


class TestGraphSAGESemantics:
    def test_isolated_node_keeps_self_features(self, graph):
        """With no neighbours the aggregated term is zero but the self
        half of the concatenation still produces output."""
        iso = graph.add_node("Drug", "isolated drug")
        feats = np.vstack([graph.features, np.ones((1, DIM), dtype=np.float32)])
        graph.set_features(feats.astype(np.float32))
        enc = build("sage", graph)
        enc.eval()
        out = enc.encode(graph)
        assert np.all(np.isfinite(out.data[iso]))

    def test_outputs_l2_normalized(self, graph):
        enc = build("sage", graph)
        enc.eval()
        out = enc.encode(graph).data
        norms = np.linalg.norm(out, axis=1)
        np.testing.assert_allclose(norms[norms > 1e-6], 1.0, atol=1e-4)


class TestRGCNSemantics:
    def test_relation_specific_weights_differ(self, graph):
        """Permuting relation labels changes the output (GraphSAGE would
        not notice) — the relation-awareness the ablation relies on."""
        enc = build("rgcn", graph)
        enc.eval()
        with no_grad():
            base = enc.encode(graph).data
        # Swap all edges of relation 0 and 1.
        permuted = graph.copy()
        src, dst, et = graph.edges()
        permuted._etypes = [1 if r == 0 else 0 if r == 1 else r for r in et.tolist()]
        permuted._invalidate()
        permuted.set_features(graph.features)
        with no_grad():
            swapped = enc.encode(permuted).data
        assert not np.allclose(base, swapped, atol=1e-5)

    def test_basis_decomposition_shrinks_params(self, graph):
        rng = np.random.default_rng(0)
        full = RGCN(DIM, DIM, 1, graph.schema.num_relations, rng)
        based = RGCN(
            DIM, DIM, 1, graph.schema.num_relations, np.random.default_rng(0), num_bases=2
        )
        assert based.num_parameters() < full.num_parameters()
        assert based.encode(graph).shape == (graph.num_nodes, DIM)

    def test_relation_count_mismatch_rejected(self, graph):
        rng = np.random.default_rng(0)
        enc = RGCN(DIM, DIM, 1, 99, rng)
        with pytest.raises(ValueError):
            enc.compile(graph)


class TestMAGNNSemantics:
    def test_rotation_encoder_shapes(self):
        rng = np.random.default_rng(0)
        enc = RelationalRotationEncoder(8, 3, rng)
        hops = [Tensor(rng.standard_normal((5, 8)).astype(np.float32)) for _ in range(3)]
        assert enc(hops).shape == (5, 8)

    def test_rotation_encoder_rejects_odd_dim(self):
        with pytest.raises(ValueError):
            RelationalRotationEncoder(7, 2, np.random.default_rng(0))

    def test_explicit_metapaths_used(self, graph):
        rng = np.random.default_rng(0)
        mps = [Metapath(("Drug", "AdverseEffect"))]
        enc = MAGNN(DIM, DIM, 1, graph.schema, rng, metapaths=mps, attention_dim=8)
        assert enc.metapaths == mps
        assert enc.encode(graph).shape == (graph.num_nodes, DIM)

    def test_needs_at_least_one_metapath(self, graph):
        with pytest.raises(ValueError):
            MAGNN(DIM, DIM, 1, graph.schema, np.random.default_rng(0), metapaths=[])

    def test_mask_zero_changes_connected_nodes(self, graph):
        """Zeroing all edge masks removes metapath context entirely."""
        enc = build("magnn", graph)
        enc.eval()
        compiled = enc.compile(graph)
        feats = Tensor(graph.features)
        with no_grad():
            base = enc.forward(compiled, feats).data
            zeroed = enc.forward(
                compiled, feats, Tensor(np.zeros(graph.num_edges, dtype=np.float32))
            ).data
        assert not np.allclose(base, zeroed, atol=1e-4)


class TestHANSemantics:
    def test_explicit_metapaths_used(self, graph):
        rng = np.random.default_rng(0)
        mps = [Metapath(("Drug", "AdverseEffect"))]
        enc = HAN(DIM, DIM, 1, graph.schema, rng, metapaths=mps, attention_dim=8)
        assert enc.metapaths == mps
        assert enc.encode(graph).shape == (graph.num_nodes, DIM)

    def test_needs_at_least_one_metapath(self, graph):
        with pytest.raises(ValueError):
            HAN(DIM, DIM, 1, graph.schema, np.random.default_rng(0), metapaths=[])

    def test_uses_only_endpoints(self, graph):
        """HAN's compiled structure keeps (target, neighbour) endpoint
        pairs — the metapath-based neighbours of Definition 2.4."""
        enc = build("han", graph)
        compiled = enc.compile(graph)
        for targets, neighbors in zip(compiled.targets, compiled.neighbors):
            assert targets.shape == neighbors.shape

    def test_mask_zero_changes_connected_nodes(self, graph):
        enc = build("han", graph)
        enc.eval()
        compiled = enc.compile(graph)
        feats = Tensor(graph.features)
        with no_grad():
            base = enc.forward(compiled, feats).data
            zeroed = enc.forward(
                compiled, feats, Tensor(np.zeros(graph.num_edges, dtype=np.float32))
            ).data
        assert not np.allclose(base, zeroed, atol=1e-4)

    def test_semantic_attention_mixes_metapaths(self, graph):
        """Different metapath sets produce different embeddings."""
        rng = np.random.default_rng(0)
        one = HAN(
            DIM, DIM, 1, graph.schema, np.random.default_rng(0),
            metapaths=[Metapath(("Drug", "AdverseEffect"))], attention_dim=8,
        )
        two = HAN(
            DIM, DIM, 1, graph.schema, np.random.default_rng(0),
            metapaths=[
                Metapath(("Drug", "AdverseEffect")),
                Metapath(("Drug", "AdverseEffect", "Finding")),
            ],
            attention_dim=8,
        )
        one.eval(), two.eval()
        with no_grad():
            a = one.encode(graph).data
            b = two.encode(graph).data
        drugs = graph.nodes_of_type("Drug")
        assert not np.allclose(a[drugs], b[drugs], atol=1e-5)


class TestHetGNNSemantics:
    def test_isolated_node_still_embedded(self, graph):
        iso = graph.add_node("Drug", "isolated drug")
        feats = np.vstack([graph.features, np.ones((1, DIM), dtype=np.float32)])
        graph.set_features(feats.astype(np.float32))
        enc = build("hetgnn", graph)
        enc.eval()
        out = enc.encode(graph)
        assert np.all(np.isfinite(out.data[iso]))
        assert np.linalg.norm(out.data[iso]) > 1e-6

    def test_type_aware_grouping(self, graph):
        """The compiled structure groups bidirected messages by the
        sender's node type."""
        enc = build("hetgnn", graph)
        compiled = enc.compile(graph)
        types = graph.node_types
        for type_id, group in enumerate(compiled.by_type):
            if group is None:
                continue
            src, _, _ = group
            assert np.all(types[src] == type_id)

    def test_ignores_relation_types(self, graph):
        """HetGNN aggregates by *node* type only — relabeling edge
        relations leaves the output unchanged."""
        enc = build("hetgnn", graph)
        enc.eval()
        with no_grad():
            base = enc.encode(graph).data
        permuted = graph.copy()
        _, _, et = graph.edges()
        permuted._etypes = [(r + 1) % graph.schema.num_relations for r in et.tolist()]
        permuted._invalidate()
        permuted.set_features(graph.features)
        with no_grad():
            swapped = enc.encode(permuted).data
        np.testing.assert_allclose(base, swapped, atol=1e-5)

    def test_mask_zero_changes_connected_nodes(self, graph):
        enc = build("hetgnn", graph)
        enc.eval()
        compiled = enc.compile(graph)
        feats = Tensor(graph.features)
        with no_grad():
            base = enc.forward(compiled, feats).data
            zeroed = enc.forward(
                compiled, feats, Tensor(np.zeros(graph.num_edges, dtype=np.float32))
            ).data
        assert not np.allclose(base, zeroed, atol=1e-4)


class TestGCNSemantics:
    def test_symmetric_normalization_weights(self, graph):
        enc = build("gcn", graph)
        compiled = enc.compile(graph)
        assert np.all(compiled.edge_weight > 0)
        assert np.all(compiled.edge_weight <= 1.0 + 1e-6)

    def test_ignores_relation_types(self, graph):
        """GCN output is invariant to relabeling edge types."""
        enc = build("gcn", graph)
        enc.eval()
        with no_grad():
            base = enc.encode(graph).data
        permuted = graph.copy()
        _, _, et = graph.edges()
        permuted._etypes = [(r + 1) % graph.schema.num_relations for r in et.tolist()]
        permuted._invalidate()
        permuted.set_features(graph.features)
        with no_grad():
            swapped = enc.encode(permuted).data
        np.testing.assert_allclose(base, swapped, atol=1e-5)
