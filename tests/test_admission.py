"""Tests for admission control, load shedding, and the adaptive tuner.

The policy objects (:class:`AdmissionController`, :class:`AdaptiveTuner`)
are exercised with fake clocks and synthetic observations — no sleeps.
The configuration surface is checked end to end: strict validation,
the ``REPRO_ADMISSION`` env default, the exact round trip through
``ServiceConfig`` / ``LinkerConfig`` JSON, and Python-API / env / CLI
parity.  Shed paths run against a tiny trained pipeline with a stalled
worker (huge deadline, oversized batch) so queue depth is deterministic,
and the HTTP 429 contract (``Retry-After``, structured body, the typed
client exception and its bounded-retry helper) runs against a real
server on an ephemeral port.
"""

import dataclasses
import http.client
import json

import pytest

from repro.api import Linker, LinkerConfig
from repro.core import EDPipeline, ModelConfig, TrainConfig
from repro.datasets import load_dataset
from repro.serving import (
    AdaptiveTuner,
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
    AsyncLinkingService,
    DeadlineBatcher,
    ErrorResponse,
    HttpConfig,
    LinkerClient,
    LinkerClientError,
    LinkerOverloadedError,
    LinkingHTTPServer,
    LinkingService,
    LinkItem,
    LinkRequest,
    QueuedRequest,
    ServiceConfig,
    WireError,
    retry_overloaded,
)
from repro.serving.admission import PRIORITY_HEADROOM

SCALE = 0.2

SNIPPET_TEXT = (
    "The patient presented with mild spinal hyperplasia, congenital "
    "cardiac cancer and primary dermal necrosis."
)


# ---------------------------------------------------------------------------
# AdmissionConfig: validation, env default, config round trips
# ---------------------------------------------------------------------------
class TestAdmissionConfig:
    def test_defaults(self):
        config = AdmissionConfig()
        assert config.shed_policy == "none"
        assert config.max_queue == 256
        assert not config.adaptive

    def test_validation(self):
        with pytest.raises(ValueError, match="shed_policy"):
            AdmissionConfig(shed_policy="drop")
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            AdmissionConfig(max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="tuner_window"):
            AdmissionConfig(tuner_window=1)
        with pytest.raises(ValueError, match="tuner_interval_ms"):
            AdmissionConfig(tuner_interval_ms=0.0)
        with pytest.raises(ValueError, match="min_deadline_ms"):
            AdmissionConfig(min_deadline_ms=0.0)
        with pytest.raises(ValueError, match="max_deadline_ms"):
            AdmissionConfig(min_deadline_ms=50.0, max_deadline_ms=10.0)
        with pytest.raises(ValueError, match="min_batch_size"):
            AdmissionConfig(min_batch_size=0)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION", "wait")
        assert AdmissionConfig().shed_policy == "wait"
        assert ServiceConfig().admission.shed_policy == "wait"
        monkeypatch.setenv("REPRO_ADMISSION", "waiiit")
        with pytest.raises(ValueError, match="shed_policy"):
            AdmissionConfig()

    def test_explicit_policy_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION", "wait")
        assert AdmissionConfig(shed_policy="depth").shed_policy == "depth"

    def test_service_config_coerces_dict(self):
        config = ServiceConfig(admission={"shed_policy": "depth", "max_queue": 8})
        assert config.admission == AdmissionConfig(shed_policy="depth", max_queue=8)

    def test_service_config_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="admission"):
            ServiceConfig(admission={"shed_policy": "depth", "queue": 8})

    def test_service_config_rejects_non_dict(self):
        with pytest.raises(ValueError, match="admission"):
            ServiceConfig(admission="depth")

    def test_linker_config_json_round_trip(self):
        config = LinkerConfig(
            service=ServiceConfig(
                admission=AdmissionConfig(
                    shed_policy="wait",
                    max_queue=16,
                    max_wait_ms=40.0,
                    adaptive=True,
                    target_p95_ms=30.0,
                )
            )
        )
        loaded = LinkerConfig.from_json(config.to_json())
        # TrainConfig's curriculum object has no __eq__, so compare the
        # section the test is about: the service config (admission
        # included) must survive the round trip exactly.
        assert loaded.service == config.service
        assert loaded.service.admission.shed_policy == "wait"
        payload = json.loads(config.to_json())
        assert payload["service"]["admission"]["max_queue"] == 16

    def test_linker_config_rejects_bad_admission_section(self):
        payload = json.loads(LinkerConfig().to_json())
        payload["service"]["admission"]["shed_policy"] = "nope"
        with pytest.raises(ValueError, match="shed_policy"):
            LinkerConfig.from_json(json.dumps(payload))
        payload["service"]["admission"] = {"max_q": 3}
        with pytest.raises(ValueError, match="admission"):
            LinkerConfig.from_json(json.dumps(payload))


# ---------------------------------------------------------------------------
# AdmissionController: pure shed-or-admit policy (no clock, no threads)
# ---------------------------------------------------------------------------
class TestAdmissionController:
    def test_disabled_policy_always_admits(self):
        controller = AdmissionController(AdmissionConfig(), deadline_ms=25.0)
        assert not controller.enabled
        assert controller.check("low", 10_000) is None

    def test_depth_shed_respects_priority_headroom(self):
        config = AdmissionConfig(shed_policy="depth", max_queue=10)
        controller = AdmissionController(config, deadline_ms=25.0)
        assert controller.depth_budget("high") == 10
        assert controller.depth_budget("normal") == 8
        assert controller.depth_budget("low") == 5
        # At depth 8: low and normal shed, high still admits.
        assert controller.check("low", 8) is not None
        assert controller.check("normal", 8) is not None
        assert controller.check("high", 8) is None
        shed = controller.check("normal", 8)
        assert shed.reason == "queue_depth"
        assert shed.priority == "normal"
        # The bound itself sheds even the highest class.
        assert controller.check("high", 10) is not None

    def test_depth_budget_never_below_one(self):
        config = AdmissionConfig(shed_policy="depth", max_queue=1)
        controller = AdmissionController(config, deadline_ms=25.0)
        for priority in PRIORITY_HEADROOM:
            assert controller.depth_budget(priority) == 1

    def test_ewma_drain_model(self):
        controller = AdmissionController(
            AdmissionConfig(shed_policy="wait"), deadline_ms=25.0
        )
        assert controller.estimated_wait_ms(100) == 0.0  # no data yet
        controller.observe_batch(4, 0.02)  # 5 ms / request
        assert controller.estimated_wait_ms(4) == pytest.approx(20.0)
        controller.observe_batch(4, 0.06)  # 15 ms/req -> EWMA moves by alpha
        assert controller.estimated_wait_ms(1) == pytest.approx(7.0)

    def test_wait_shed_and_retry_after(self):
        config = AdmissionConfig(shed_policy="wait", max_queue=1000, max_wait_ms=20.0)
        controller = AdmissionController(config, deadline_ms=25.0)
        assert controller.wait_budget_ms == 20.0
        controller.observe_batch(1, 0.005)  # 5 ms / request
        assert controller.check("high", 3) is None  # est 20ms == budget
        shed = controller.check("high", 4)  # est 25ms > 20ms
        assert shed is not None and shed.reason == "estimated_wait"
        assert shed.retry_after_ms == pytest.approx(20.0)  # floored at budget
        deep = controller.check("high", 100)
        assert deep.retry_after_ms == pytest.approx(500.0)  # drain estimate
        # Normal sees a scaled budget: 20 * 0.8 = 16ms -> sheds at depth 3.
        assert controller.check("normal", 3) is not None

    def test_wait_budget_defaults_to_deadline(self):
        controller = AdmissionController(
            AdmissionConfig(shed_policy="wait"), deadline_ms=25.0
        )
        assert controller.wait_budget_ms == 25.0


# ---------------------------------------------------------------------------
# AdaptiveTuner: AIMD with a fake clock
# ---------------------------------------------------------------------------
class TestAdaptiveTuner:
    CONFIG = AdmissionConfig(
        shed_policy="depth",
        adaptive=True,
        tuner_window=8,
        tuner_interval_ms=100.0,
        min_deadline_ms=5.0,
        max_deadline_ms=100.0,
        min_batch_size=2,
    )

    def make(self, deadline_ms=40.0, batch=16):
        return AdaptiveTuner(self.CONFIG, deadline_ms, batch)

    def fill(self, tuner, wait_ms, now, n=8):
        changed = False
        for _ in range(n):
            changed |= tuner.observe(wait_ms, now)
        return changed

    def test_backoff_when_p95_over_target(self):
        tuner = self.make()
        assert tuner.target_ms == 40.0
        assert self.fill(tuner, 80.0, now=1.0)
        assert tuner.deadline_ms == 20.0  # multiplicative halving
        assert tuner.batch_size == 8
        assert tuner.adjustments == 1

    def test_recovery_when_p95_under_half_target(self):
        tuner = self.make()
        assert self.fill(tuner, 5.0, now=1.0)
        assert tuner.deadline_ms == 41.0  # additive +1ms
        assert tuner.batch_size == 16  # already at the ceiling

    def test_stable_band_holds_policy(self):
        tuner = self.make()
        assert not self.fill(tuner, 30.0, now=1.0)  # between 0.5x and 1x target
        assert tuner.deadline_ms == 40.0
        assert tuner.adjustments == 0

    def test_interval_gates_adjustments(self):
        tuner = self.make()
        assert self.fill(tuner, 80.0, now=1.0)
        # Window was cleared; refill within the 100ms interval: no change.
        assert not self.fill(tuner, 80.0, now=1.05)
        assert tuner.deadline_ms == 20.0
        # Past the interval the next backoff lands.
        assert tuner.maybe_adjust(now=1.2)
        assert tuner.deadline_ms == 10.0

    def test_converges_to_floor_and_never_below(self):
        tuner = self.make()
        now = 0.0
        for _ in range(20):  # sustained overload
            now += 1.0
            self.fill(tuner, 500.0, now=now)
        assert tuner.deadline_ms == self.CONFIG.min_deadline_ms
        assert tuner.batch_size == self.CONFIG.min_batch_size

    def test_recovers_to_ceiling_and_never_above(self):
        tuner = self.make(deadline_ms=40.0, batch=4)
        now = 0.0
        for _ in range(200):  # sustained idle after the load spike
            now += 1.0
            self.fill(tuner, 1.0, now=now)
        assert tuner.deadline_ms == self.CONFIG.max_deadline_ms
        assert tuner.batch_size == 4  # ceiling is the configured max batch

    def test_step_load_then_recovery(self):
        tuner = self.make()
        now = 1.0
        self.fill(tuner, 200.0, now=now)  # spike: back off
        backed_off = tuner.deadline_ms
        assert backed_off < 40.0
        # Calm traffic recovers additively (the first calm round may eat
        # one more backoff from spike samples still in the window).
        for _ in range(15):
            now += 1.0
            self.fill(tuner, 2.0, now=now)
        assert backed_off < tuner.deadline_ms <= self.CONFIG.max_deadline_ms

    def test_deadline_clamped_into_bounds_at_construction(self):
        tuner = AdaptiveTuner(self.CONFIG, deadline_ms=1000.0, max_batch_size=16)
        assert tuner.deadline_ms == self.CONFIG.max_deadline_ms
        tuner = AdaptiveTuner(self.CONFIG, deadline_ms=1.0, max_batch_size=1)
        assert tuner.deadline_ms == self.CONFIG.min_deadline_ms
        assert tuner.batch_ceiling == self.CONFIG.min_batch_size


# ---------------------------------------------------------------------------
# DeadlineBatcher priority ordering (fake clock)
# ---------------------------------------------------------------------------
class TestBatcherPriority:
    def request(self, now, payload, priority):
        return QueuedRequest(
            payload, enqueued_at=now, deadline_at=now + 0.05, priority=priority
        )

    def test_batch_filled_in_priority_order(self):
        batcher = DeadlineBatcher(4, 0.05)
        batcher.add(self.request(0.00, "n1", "normal"))
        batcher.add(self.request(0.01, "l1", "low"))
        batcher.add(self.request(0.02, "h1", "high"))
        batcher.add(self.request(0.03, "n2", "normal"))
        batch = batcher.poll(now=0.03)  # full batch
        assert [r.snippet for r in batch] == ["h1", "n1", "n2", "l1"]

    def test_low_priority_waits_out_a_backlog(self):
        batcher = DeadlineBatcher(2, 0.05)
        batcher.add(self.request(0.00, "l1", "low"))
        for i in range(3):
            batcher.add(self.request(0.01, f"h{i}", "high"))
        assert [r.snippet for r in batcher.poll(now=0.01)] == ["h0", "h1"]
        assert [r.snippet for r in batcher.poll(now=0.05)] == ["h2", "l1"]

    def test_low_priority_deadline_still_drives_flush(self):
        batcher = DeadlineBatcher(8, 0.05)
        batcher.add(self.request(0.00, "l1", "low"))
        batcher.add(self.request(1.00, "h1", "high"))
        # The oldest deadline belongs to the low request: it forces the
        # flush, so a trickle of high traffic cannot starve it.
        assert batcher.next_deadline() == pytest.approx(0.05)
        assert [r.snippet for r in batcher.poll(now=0.05)] == ["h1", "l1"]


# ---------------------------------------------------------------------------
# Wire schema v2: priority + retry_after_ms
# ---------------------------------------------------------------------------
class TestWireV2:
    def test_priority_round_trip(self):
        item = LinkItem(text="abc", priority="high")
        loaded = LinkItem.from_dict(item.to_dict())
        assert loaded == item
        assert loaded.priority == "high"

    def test_default_priority_not_emitted(self):
        # v1 consumers never see the key unless a non-default is chosen.
        assert "priority" not in LinkItem(text="abc").to_dict()

    def test_unknown_priority_rejected(self):
        with pytest.raises(WireError, match="priority") as exc_info:
            LinkItem(text="abc", priority="urgent")
        assert exc_info.value.code == "unknown_priority"
        with pytest.raises(WireError, match="priority"):
            LinkItem.from_dict({"text": "a", "priority": 3})

    def test_v1_requests_still_accepted(self):
        payload = {"schema_version": 1, "items": [{"text": "a"}]}
        request = LinkRequest.from_dict(payload)
        assert request.items[0].priority == "normal"

    def test_retry_after_round_trip(self):
        error = ErrorResponse("overloaded", "shed", retry_after_ms=125.5)
        loaded = ErrorResponse.from_dict(error.to_dict())
        assert loaded == error
        assert "retry_after_ms" not in ErrorResponse("x", "y").to_dict()

    def test_bad_retry_after_rejected(self):
        for bad in (-1.0, True, "5"):
            with pytest.raises(WireError, match="retry_after_ms"):
                ErrorResponse("overloaded", "shed", retry_after_ms=bad)


# ---------------------------------------------------------------------------
# Shed paths through the async service and HTTP (tiny trained pipeline)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=SCALE)


@pytest.fixture(scope="module")
def pipeline(dataset):
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, seed=0),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
    )
    pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe


def stalled_service(pipeline, admission, max_queue_batch=64):
    """An async service whose worker cannot flush (huge deadline, batch
    larger than anything submitted) so queue depth is deterministic."""
    return AsyncLinkingService(
        pipeline,
        deadline_ms=60_000.0,
        max_batch_size=max_queue_batch,
        admission=admission,
    )


class TestAsyncShedPaths:
    def test_depth_shed_and_priority_headroom(self, pipeline, dataset):
        snippet = dataset.test[0]
        admission = AdmissionConfig(shed_policy="depth", max_queue=2)
        service = stalled_service(pipeline, admission)
        try:
            future = service.submit(snippet)  # depth 0 < normal budget 1
            with pytest.raises(AdmissionError) as exc_info:
                service.submit(snippet)  # depth 1 >= normal budget 1
            assert exc_info.value.reason == "queue_depth"
            assert exc_info.value.retry_after_ms >= 0.0
            high = service.submit(snippet, priority="high")  # budget 2
            with pytest.raises(AdmissionError):
                service.submit(snippet, priority="high")  # at the bound
            stats = service.stats
            assert stats.admitted == {"normal": 1, "high": 1}
            assert stats.shed == {"normal": 1, "high": 1}
            assert stats.total_shed == 2
            assert stats.shed_rate == pytest.approx(0.5)
        finally:
            service.close()  # drains: the admitted futures still resolve
        expected = pipeline.disambiguate_snippet(snippet)
        for resolved in (future.result(0), high.result(0)):
            assert resolved.ranked_entities == expected.ranked_entities

    def test_unknown_priority_rejected(self, pipeline, dataset):
        service = stalled_service(pipeline, AdmissionConfig(shed_policy="depth"))
        try:
            with pytest.raises(ValueError, match="priority"):
                service.submit(dataset.test[0], priority="urgent")
        finally:
            service.close()

    def test_link_batch_is_all_or_nothing(self, pipeline, dataset):
        admission = AdmissionConfig(shed_policy="depth", max_queue=2)
        service = stalled_service(pipeline, admission)
        try:
            with pytest.raises(AdmissionError):
                service.link_batch([dataset.test[0]] * 3)
            # The pre-shed sibling was cancelled, not left to compute.
            assert service.stats.total_admitted == 1
        finally:
            service.close()

    def test_disabled_admission_never_sheds(self, pipeline, dataset):
        service = AsyncLinkingService(pipeline, deadline_ms=25.0)
        try:
            predictions = service.link_batch(dataset.test[:4])
            assert len(predictions) == 4
            assert service.stats.total_shed == 0
            assert service.stats.admitted.get("normal") == 4
        finally:
            service.close()


class TestHttpOverload:
    @pytest.fixture()
    def server(self, pipeline):
        service = LinkingService(
            pipeline,
            ServiceConfig(
                max_batch_size=64,
                admission=AdmissionConfig(shed_policy="depth", max_queue=2),
            ),
        )
        config = HttpConfig(port=0, deadline_ms=60_000.0)
        with LinkingHTTPServer(service, config) as server:
            yield server

    def test_shed_batch_is_429_with_retry_after(self, server):
        # Two normal-priority items: the first admits (depth 0 < budget
        # 1), the second sheds -> the whole request is a 429 and the
        # queued sibling is cancelled.  Deterministic: the worker cannot
        # flush (60s deadline, batch of 64).
        body = LinkRequest(
            items=(LinkItem(text=SNIPPET_TEXT), LinkItem(text=SNIPPET_TEXT))
        ).to_json().encode()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/link", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
            assert response.status == 429
            retry_after = response.getheader("Retry-After")
            assert retry_after is not None and int(retry_after) >= 1
            error = ErrorResponse.from_json(raw)
            assert error.code == "overloaded"
            assert error.retry_after_ms > 0
        finally:
            conn.close()

    def test_client_raises_typed_overload_error(self, server):
        with LinkerClient(port=server.port) as client:
            with pytest.raises(LinkerOverloadedError) as exc_info:
                client.link_batch([SNIPPET_TEXT, SNIPPET_TEXT])
            assert exc_info.value.status == 429
            assert exc_info.value.retry_after_s >= 1.0
            # High priority rides the headroom past a queued normal item.
            stats = client.stats()
            assert stats["shed"]["normal"] >= 1

    def test_unknown_priority_is_400(self, server):
        payload = {"schema_version": 2, "items": [{"text": "a", "priority": "zzz"}]}
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/link", body=json.dumps(payload).encode(),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
            assert response.status == 400
            assert ErrorResponse.from_json(raw).code == "unknown_priority"
        finally:
            conn.close()

    def test_prometheus_exports_admission_series(self, server):
        with LinkerClient(port=server.port) as client:
            with pytest.raises(LinkerClientError):
                client.link_batch([SNIPPET_TEXT, SNIPPET_TEXT])
            text = client.stats(prometheus=True)
        assert 'repro_admission_shed_total{priority="normal"}' in text
        assert "repro_admission_shed_rate" in text


class TestRetryHelper:
    def test_retries_then_succeeds(self):
        naps = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise LinkerOverloadedError(429, None, retry_after_s=0.25)
            return "ok"

        assert retry_overloaded(flaky, retries=3, sleep=naps.append) == "ok"
        assert naps == [0.25, 0.25]

    def test_sleep_capped_at_max_wait(self):
        naps = []

        def flaky():
            if not naps:
                raise LinkerOverloadedError(429, None, retry_after_s=30.0)
            return "ok"

        assert retry_overloaded(flaky, max_wait_s=2.0, sleep=naps.append) == "ok"
        assert naps == [2.0]

    def test_exhausted_retries_propagate(self):
        def always():
            raise LinkerOverloadedError(429, None, retry_after_s=0.0)

        with pytest.raises(LinkerOverloadedError):
            retry_overloaded(always, retries=2, sleep=lambda s: None)
        with pytest.raises(ValueError):
            retry_overloaded(always, retries=-1)

    def test_other_errors_not_retried(self):
        def broken():
            raise LinkerClientError(500, None)

        with pytest.raises(LinkerClientError):
            retry_overloaded(broken, sleep=lambda s: pytest.fail("slept"))


# ---------------------------------------------------------------------------
# Python API / env / CLI parity for the admission surface
# ---------------------------------------------------------------------------
class TestAdmissionParity:
    class FakeLinker:
        def __init__(self):
            self.captured = None

        def serve(self, **kwargs):
            self.captured = kwargs
            raise ValueError("captured")

    def capture_cli(self, monkeypatch, argv):
        from repro import cli

        fake = self.FakeLinker()
        monkeypatch.setattr(cli, "_load_checkpoint", lambda path: fake)
        with pytest.raises(SystemExit):
            cli.main(["serve", "--checkpoint", "x", *argv])
        return fake.captured["admission"]

    def test_cli_flags_build_the_same_config(self, monkeypatch):
        admission = self.capture_cli(
            monkeypatch,
            ["--shed-policy", "wait", "--max-queue", "4", "--adaptive"],
        )
        assert admission == AdmissionConfig(
            shed_policy="wait", max_queue=4, adaptive=True
        )

    def test_cli_max_queue_implies_depth(self, monkeypatch):
        monkeypatch.delenv("REPRO_ADMISSION", raising=False)
        admission = self.capture_cli(monkeypatch, ["--max-queue", "4"])
        assert admission == AdmissionConfig(shed_policy="depth", max_queue=4)

    def test_cli_env_supplies_the_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION", "wait")
        admission = self.capture_cli(monkeypatch, ["--max-queue", "4"])
        assert admission.shed_policy == "wait"
        assert admission.max_queue == 4

    def test_cli_without_flags_defers_to_config_default(self, monkeypatch):
        from repro import cli

        fake = self.FakeLinker()
        monkeypatch.setattr(cli, "_load_checkpoint", lambda path: fake)
        with pytest.raises(SystemExit):
            cli.main(["serve", "--checkpoint", "x"])
        assert fake.captured["admission"] is None

    def test_linker_serve_coercions(self, pipeline):
        linker = Linker(pipeline)
        service = linker.serve(admission="depth")
        try:
            assert service.config.admission.shed_policy == "depth"
        finally:
            service.close()
        service = linker.serve(admission={"shed_policy": "wait", "max_queue": 9})
        try:
            assert service.config.admission == AdmissionConfig(
                shed_policy="wait", max_queue=9
            )
        finally:
            service.close()
        with pytest.raises(ValueError, match="admission"):
            linker.serve(admission=3.14)

    def test_env_python_api_parity(self, pipeline, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION", "depth")
        linker = Linker(pipeline)
        service = linker.serve()
        try:
            assert service.config.admission.shed_policy == "depth"
        finally:
            service.close()

    def test_admission_config_survives_linker_round_trip(self):
        config = dataclasses.replace(
            LinkerConfig(),
            service=ServiceConfig(
                admission=AdmissionConfig(shed_policy="depth", max_queue=32)
            ),
        )
        loaded = LinkerConfig.from_json(config.to_json())
        assert loaded.service == config.service
