"""Tests for the table-rendering helpers the benches print."""

from repro.eval import PRF, format_table, markdown_table, results_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["A", "Blong"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].startswith("A")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["A"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        out = format_table(["Name", "V"], [["ab", "1"], ["abcdef", "2"]])
        header, sep, row1, row2 = out.splitlines()
        # The value column starts at the same offset in every row.
        assert row1.index("1") == row2.index("2")

    def test_non_string_cells_coerced(self):
        out = format_table(["N"], [[42]])
        assert "42" in out

    def test_empty_rows_render_header_only(self):
        out = format_table(["A", "B"], [])
        assert len(out.splitlines()) == 2


class TestMarkdownTable:
    def test_pipe_layout(self):
        out = markdown_table(["A", "B"], [["1", "2"]])
        lines = out.splitlines()
        assert lines[0] == "| A | B |"
        assert set(lines[1].replace(" ", "")) <= {"|", "-"}
        assert lines[2] == "| 1 | 2 |"


class TestResultsTable:
    def test_prf_rows(self):
        table = results_table(
            {"sys": {"NCBI": PRF(0.9, 0.8, 0.847)}},
            systems=["sys"],
            datasets=["NCBI"],
        )
        assert "0.847" in table
        assert "NCBI" in table

    def test_missing_cells_dashed(self):
        table = results_table(
            {"sys": {"NCBI": PRF(0.9, 0.8, 0.847)}},
            systems=["sys"],
            datasets=["NCBI", "MDX"],
        )
        assert "-" in table.splitlines()[-1]
