"""Tests for deadline-aware async serving and KB sharding.

The deadline scheduler's policy (:class:`DeadlineBatcher`) is exercised
with a fake clock — no wall-clock sleeps live in this module.  The shard
equivalence property (sequential == 1-shard == N-shard predictions on a
seeded dataset, for both the thread and process execution backends) and
the async service's end-to-end contract run against a tiny trained
pipeline.

The CI shard matrix forces the backend and shard count via
``REPRO_SHARD_BACKEND`` / ``REPRO_TEST_SHARDS``: tests that build a
sharded service without naming a backend inherit the forced one through
the ``ServiceConfig`` default, and ``env_shards`` swaps the forced shard
count into the tests that would otherwise hardcode one.
"""

import os
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core import EDPipeline, ModelConfig, TrainConfig
from repro.datasets import load_dataset
from repro.graph.batch import batch_graphs
from repro.serving import (
    AsyncLinkingService,
    DeadlineBatcher,
    LinkingService,
    QueuedRequest,
    ServiceConfig,
    ShardedKB,
)

SCALE = 0.2
DEADLINE_S = 0.05


def env_shards(default: int) -> int:
    """Shard count for sharded-service tests: the CI matrix's
    ``REPRO_TEST_SHARDS`` when set, else ``default``."""
    return int(os.environ.get("REPRO_TEST_SHARDS", "0") or 0) or default


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=SCALE)


@pytest.fixture(scope="module")
def pipeline(dataset):
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, seed=0),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
    )
    pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe


@pytest.fixture(scope="module")
def sequential(pipeline, dataset):
    return [pipeline.disambiguate_snippet(s) for s in dataset.test]


def request_at(now: float, payload=None) -> QueuedRequest:
    return QueuedRequest(payload, enqueued_at=now, deadline_at=now + DEADLINE_S)


def assert_predictions_match(expected, actual, atol=1e-4):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a.mention == b.mention
        assert a.ranked_entities == b.ranked_entities
        assert np.allclose(a.scores, b.scores, atol=atol)


class TestDeadlineBatcher:
    """Fake-clock unit tests of the flush policy (no threads, no sleeps)."""

    def test_validates_config(self):
        with pytest.raises(ValueError):
            DeadlineBatcher(0, 1.0)
        with pytest.raises(ValueError):
            DeadlineBatcher(4, -1.0)

    def test_idle_queue_never_flushes(self):
        batcher = DeadlineBatcher(4, DEADLINE_S)
        assert batcher.poll(now=1e9) == []
        assert batcher.seconds_until_flush(now=1e9) is None
        assert batcher.next_deadline() is None

    def test_full_batch_flushes_immediately(self):
        batcher = DeadlineBatcher(4, DEADLINE_S)
        for i in range(4):
            batcher.add(request_at(0.0, payload=i))
        assert batcher.seconds_until_flush(now=0.0) == 0.0
        batch = batcher.poll(now=0.0)  # no deadline has passed
        assert [r.snippet for r in batch] == [0, 1, 2, 3]
        assert len(batcher) == 0

    def test_partial_batch_waits_for_deadline(self):
        batcher = DeadlineBatcher(4, DEADLINE_S)
        batcher.add(request_at(0.0, payload="a"))
        batcher.add(request_at(0.01, payload="b"))
        assert batcher.poll(now=0.02) == []  # oldest budget not blown yet
        assert batcher.seconds_until_flush(now=0.02) == pytest.approx(0.03)
        batch = batcher.poll(now=DEADLINE_S)  # oldest deadline reached
        assert [r.snippet for r in batch] == ["a", "b"]

    def test_oldest_request_drives_the_deadline(self):
        batcher = DeadlineBatcher(4, DEADLINE_S)
        batcher.add(request_at(0.0))
        batcher.add(request_at(1.0))
        assert batcher.next_deadline() == pytest.approx(DEADLINE_S)
        # Flushing at the oldest deadline takes the young request along.
        assert len(batcher.poll(now=DEADLINE_S)) == 2

    def test_deadline_flush_caps_at_max_batch_size(self):
        batcher = DeadlineBatcher(2, DEADLINE_S)
        for i in range(5):
            batcher.add(request_at(0.0, payload=i))
        first = batcher.poll(now=DEADLINE_S)
        assert [r.snippet for r in first] == [0, 1]  # FIFO, capped
        assert len(batcher) == 3

    def test_no_fixed_size_stall_at_low_traffic(self):
        # One lonely request must still be served once its budget is up —
        # the scheduler never waits for a full batch.
        batcher = DeadlineBatcher(32, DEADLINE_S)
        batcher.add(request_at(0.0, payload="lonely"))
        assert batcher.poll(now=0.049) == []
        assert [r.snippet for r in batcher.poll(now=0.051)] == ["lonely"]

    def test_drain_ignores_deadlines(self):
        batcher = DeadlineBatcher(4, DEADLINE_S)
        batcher.add(request_at(0.0))
        assert len(batcher.drain()) == 1
        assert batcher.drain() == []


class TestShardedKB:
    def test_partition_covers_kb(self, pipeline, dataset):
        sharded = ShardedKB(pipeline, 3)
        ids = np.sort(np.concatenate([s.node_ids for s in sharded.shards]))
        assert np.array_equal(ids, np.arange(dataset.kb.num_nodes))
        for shard in sharded.shards:
            assert np.all(shard.node_ids % 3 == shard.index)
            assert shard.view.num_nodes == len(shard.node_ids)
            assert shard.h_ref.shape[0] == shard.x_ref.shape[0] == len(shard.node_ids)
        sharded.close()

    def test_routing_arithmetic(self, pipeline):
        sharded = ShardedKB(pipeline, 3)
        for cand in (0, 1, 5, 17):
            owner = sharded.shard_of(cand)
            local = sharded.local_id(cand)
            assert sharded.shards[owner].node_ids[local] == cand
        sharded.close()

    def test_views_reassemble_via_splice(self, pipeline, dataset):
        # Shard views are subgraph extractions; batch_graphs splices them
        # back into one disjoint union covering every KB node and all
        # shard-internal edges.
        sharded = ShardedKB(pipeline, 4)
        union, offsets = batch_graphs([s.view for s in sharded.shards])
        assert union.num_nodes == dataset.kb.num_nodes
        assert offsets == list(np.cumsum([0] + [s.view.num_nodes for s in sharded.shards[:-1]]))
        names = {union.node_name(offsets[i] + j)
                 for i, s in enumerate(sharded.shards) for j in range(s.view.num_nodes)}
        assert names == set(dataset.kb.node_names)
        sharded.close()

    def test_subgraph_keeps_internal_edges_only(self, dataset):
        kb = dataset.kb
        ids = np.arange(0, kb.num_nodes, 2)
        view = kb.subgraph(ids)
        src, dst, et = kb.edges()
        internal = np.sum(np.isin(src, ids) & np.isin(dst, ids))
        assert view.num_edges == internal
        for local, global_id in enumerate(ids[:10]):
            assert view.node_name(int(local)) == kb.node_name(int(global_id))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 5])
    def test_scores_identical_to_unsharded(self, pipeline, dataset, num_shards, backend):
        # The shard-equivalence property: per-pair scoring makes any
        # partition merge back to the exact unsharded score vector —
        # whether the shards score on threads or in worker processes.
        sharded = ShardedKB(pipeline, num_shards, backend=backend)
        for snippet in dataset.test[:4]:
            qg = pipeline.build_query_graph_for(snippet)
            candidates = pipeline.candidate_ids(
                qg.mention_surface, category=snippet.ambiguous_mention.category
            )
            expected = pipeline.score_candidates(qg, candidates)
            assert np.array_equal(expected, sharded.score_candidates(qg, candidates))
        sharded.close()

    def test_score_candidates_ref_override(self, pipeline, dataset):
        # A shard scored through the staged pipeline API (local ids +
        # shard-local ref rows) matches the full-KB call.
        sharded = ShardedKB(pipeline, 2)
        shard = sharded.shards[1]
        qg = pipeline.build_query_graph_for(dataset.test[0])
        some_globals = shard.node_ids[:5]
        expected = pipeline.score_candidates(qg, some_globals)
        local = some_globals // 2
        actual = pipeline.score_candidates(
            qg, local, ref_embeddings=shard.h_ref, ref_features=shard.x_ref
        )
        assert np.array_equal(expected, actual)
        with pytest.raises(ValueError):
            pipeline.score_candidates(qg, local, ref_embeddings=shard.h_ref)
        sharded.close()

    def test_distribute_refreshes_embeddings(self, pipeline):
        sharded = ShardedKB(pipeline, 2)
        fresh = pipeline.ref_embeddings() + 1.0
        sharded.distribute(fresh)
        for shard in sharded.shards:
            assert np.array_equal(shard.h_ref, fresh[shard.node_ids])
        with pytest.raises(ValueError):
            sharded.distribute(fresh[:-1])
        sharded.close()

    def test_invalid_shard_count_rejected(self, pipeline):
        with pytest.raises(ValueError):
            ShardedKB(pipeline, 0)
        with pytest.raises(ValueError):
            ServiceConfig(num_shards=0)


class TestShardedService:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_sequential_one_shard_n_shard_identical(
        self, pipeline, dataset, sequential, num_shards
    ):
        service = LinkingService(
            pipeline,
            ServiceConfig(max_batch_size=8, cache_size=0, num_shards=num_shards),
        )
        try:
            predictions = service.link_batch(dataset.test)
            assert_predictions_match(sequential, predictions)
            if num_shards > 1:
                assert service.sharded is not None
                assert service.sharded.num_shards == num_shards
            else:
                assert service.sharded is None
        finally:
            service.close()

    def test_sharded_matches_unsharded_bitwise(self, pipeline, dataset):
        unsharded = LinkingService(
            pipeline, ServiceConfig(max_batch_size=8, cache_size=0)
        )
        sharded = LinkingService(
            pipeline,
            ServiceConfig(max_batch_size=8, cache_size=0, num_shards=env_shards(3)),
        )
        try:
            for a, b in zip(
                unsharded.link_batch(dataset.test), sharded.link_batch(dataset.test)
            ):
                assert a.ranked_entities == b.ranked_entities
                assert a.scores == b.scores  # exact, not allclose
        finally:
            unsharded.close()
            sharded.close()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_backend_property_identical_to_sequential(
        self, pipeline, dataset, sequential, num_shards, backend
    ):
        # The acceptance property of the process backend: over 1/2/4
        # shards and both execution backends, the sharded service matches
        # EDPipeline.disambiguate_snippet (rankings exact, scores to
        # float tolerance) and is bit-identical to the unsharded service
        # (both sides of the comparison share the batched forward).
        unsharded = LinkingService(
            pipeline, ServiceConfig(max_batch_size=8, cache_size=0)
        )
        service = LinkingService(
            pipeline,
            ServiceConfig(
                max_batch_size=8,
                cache_size=0,
                num_shards=num_shards,
                shard_backend=backend,
            ),
        )
        try:
            predictions = service.link_batch(dataset.test)
            assert_predictions_match(sequential, predictions)
            for a, b in zip(unsharded.link_batch(dataset.test), predictions):
                assert a.ranked_entities == b.ranked_entities
                assert a.scores == b.scores  # bitwise across backends
        finally:
            unsharded.close()
            service.close()

    def test_weight_refresh_redistributes(self, pipeline, dataset):
        service = LinkingService(
            pipeline, ServiceConfig(cache_size=16, num_shards=env_shards(2))
        )
        try:
            service.link_batch(dataset.test[:2])
            backend = service.sharded
            param = pipeline.model.parameters()[0]
            original = param.data.copy()
            try:
                param.data = param.data + 0.125
                assert service.refresh() is True
                # Same ShardedKB object (views reused), fresh embeddings.
                assert service.sharded is backend
                expected = pipeline.ref_embeddings()
                for shard in backend.shards:
                    assert np.array_equal(shard.h_ref, expected[shard.node_ids])
                assert_predictions_match(
                    [pipeline.disambiguate_snippet(s) for s in dataset.test[:2]],
                    service.link_batch(dataset.test[:2]),
                )
            finally:
                param.data = original
                pipeline.invalidate_ref_cache()
        finally:
            service.close()


class TestAsyncLinkingService:
    def test_link_batch_matches_sequential(self, pipeline, dataset, sequential):
        with AsyncLinkingService(
            pipeline,
            ServiceConfig(max_batch_size=8, cache_size=0),
            deadline_ms=20.0,
        ) as service:
            assert_predictions_match(sequential, service.link_batch(dataset.test))

    def test_sharded_async_matches_sequential(self, pipeline, dataset, sequential):
        inner = LinkingService(
            pipeline,
            ServiceConfig(max_batch_size=8, cache_size=0, num_shards=env_shards(2)),
        )
        with AsyncLinkingService(inner, deadline_ms=20.0) as service:
            assert_predictions_match(sequential, service.link_batch(dataset.test))

    def test_submit_returns_future(self, pipeline, dataset):
        with AsyncLinkingService(pipeline, deadline_ms=10.0) as service:
            future = service.submit(dataset.test[0])
            assert isinstance(future, Future)
            prediction = future.result(timeout=30.0)
            expected = pipeline.disambiguate_snippet(dataset.test[0])
            assert prediction.ranked_entities == expected.ranked_entities

    def test_latency_stats_recorded(self, pipeline, dataset):
        with AsyncLinkingService(pipeline, deadline_ms=10.0) as service:
            service.link_batch(dataset.test[:5])
            stats = service.stats
            assert len(stats.latencies_ms) == 5
            assert len(stats.queue_waits_ms) == 5
            assert stats.latency_percentile(95) >= stats.latency_percentile(50) > 0
            payload = stats.to_dict()
            assert {"latency_p50_ms", "latency_p95_ms", "queue_wait_p95_ms"} <= set(payload)
            stats.reset()
            assert len(stats.latencies_ms) == 0
            assert stats.to_dict().get("latency_p50_ms") is None

    def test_link_stream_preserves_order(self, pipeline, dataset, sequential):
        with AsyncLinkingService(
            pipeline,
            ServiceConfig(max_batch_size=4, cache_size=0),
            deadline_ms=10.0,
        ) as service:
            streamed = list(service.link_stream(iter(dataset.test)))
        assert_predictions_match(sequential, streamed)

    def test_submit_after_close_raises(self, pipeline, dataset):
        service = AsyncLinkingService(pipeline, deadline_ms=10.0)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(dataset.test[0])
        service.close()  # idempotent

    def test_close_drains_pending(self, pipeline, dataset):
        # A deadline much longer than the test: close() must still flush
        # the queued requests instead of abandoning their futures.
        service = AsyncLinkingService(pipeline, deadline_ms=60_000.0)
        futures = [service.submit(s) for s in dataset.test[:3]]
        service.close()
        for future, snippet in zip(futures, dataset.test[:3]):
            expected = pipeline.disambiguate_snippet(snippet)
            assert future.result(timeout=1.0).ranked_entities == expected.ranked_entities

    def test_rejects_config_with_prebuilt_service(self, pipeline):
        inner = LinkingService(pipeline, ServiceConfig(cache_size=0))
        with pytest.raises(ValueError):
            AsyncLinkingService(inner, ServiceConfig())
        inner.close()

    def test_cancelled_future_is_skipped(self, pipeline, dataset):
        # Cancelling a queued future must not kill the worker: the rest
        # of the batch still resolves.
        service = AsyncLinkingService(pipeline, deadline_ms=60_000.0)
        first = service.submit(dataset.test[0])
        second = service.submit(dataset.test[1])
        assert first.cancel()
        service.close()  # drains the queue through the worker
        assert first.cancelled()
        expected = pipeline.disambiguate_snippet(dataset.test[1])
        assert second.result(timeout=1.0).ranked_entities == expected.ranked_entities

    def test_no_grad_is_thread_local(self):
        # Shard workers toggle inference mode concurrently; one thread's
        # no_grad must neither leak into nor be clobbered by another's.
        import threading

        from repro.autograd import is_grad_enabled, no_grad

        seen = {}

        def worker():
            seen["before"] = is_grad_enabled()
            with no_grad():
                seen["inside"] = is_grad_enabled()

        with no_grad():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert is_grad_enabled() is False
        assert seen == {"before": True, "inside": False}
        assert is_grad_enabled() is True

    def test_failing_batch_propagates_exception(self, pipeline, dataset, monkeypatch):
        service = AsyncLinkingService(pipeline, deadline_ms=5.0)
        try:
            def boom(snippets, **kwargs):
                raise RuntimeError("backend down")

            monkeypatch.setattr(service.service, "link_batch", boom)
            future = service.submit(dataset.test[0])
            with pytest.raises(RuntimeError, match="backend down"):
                future.result(timeout=30.0)
        finally:
            monkeypatch.undo()
            service.close()
