"""Tests for the Section 3.2 structural-similarity survey
(`repro.graph.kernels`): MCS, WL subtree kernel, Hungarian-assignment GED,
and the metric factory used by the negative sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    STRUCTURAL_METRICS,
    HeteroGraph,
    McsSimilarity,
    WeisfeilerLehmanKernel,
    hungarian_ged_similarity,
    make_structural_metric,
    mcs_similarity,
    medical_schema,
    normalized_ged_similarity,
)


@pytest.fixture
def toy():
    g = HeteroGraph(medical_schema())
    g.aspirin = g.add_node("Drug", "aspirin")
    g.ibuprofen = g.add_node("Drug", "ibuprofen")
    g.metformin = g.add_node("Drug", "metformin")
    g.nausea = g.add_node("AdverseEffect", "nausea")
    g.vomiting = g.add_node("AdverseEffect", "vomiting")  # isolated
    g.fever = g.add_node("Finding", "fever")
    g.headache = g.add_node("Symptom", "headache")
    g.isolated = g.add_node("Finding", "isolated finding")
    g.lonely = g.add_node("Finding", "another isolated finding")
    # Stars are labelled (relation, neighbour): aspirin and ibuprofen
    # have identical stars (both CAUSE the *same* nausea node);
    # metformin shares that incidence but adds TREAT->headache.
    g.add_edge_by_name(g.aspirin, g.nausea, "CAUSE")
    g.add_edge_by_name(g.ibuprofen, g.nausea, "CAUSE")
    g.add_edge_by_name(g.metformin, g.nausea, "CAUSE")
    g.add_edge_by_name(g.metformin, g.headache, "TREAT")
    g.add_edge_by_name(g.nausea, g.fever, "HAS")
    return g


def random_hetero_graph(rng_seed: int, n_nodes: int, n_edges: int) -> HeteroGraph:
    """Seeded random typed graph for property tests."""
    rng = np.random.default_rng(rng_seed)
    schema = medical_schema()
    g = HeteroGraph(schema)
    types = ["Drug", "AdverseEffect", "Symptom", "Finding"]
    for i in range(n_nodes):
        g.add_node(types[rng.integers(len(types))], f"node {i}")
    tries = 0
    while g.num_edges < n_edges and tries < 10 * n_edges:
        tries += 1
        u = int(rng.integers(n_nodes))
        v = int(rng.integers(n_nodes))
        if u == v:
            continue
        rels = schema.relations_touching(g.node_type_name(u))
        if not rels:
            continue
        g.add_edge(u, v, int(rng.choice(rels)))
    return g


class TestMcs:
    def test_identical_stars_score_one(self, toy):
        assert mcs_similarity(toy, toy.aspirin, toy.ibuprofen) == pytest.approx(1.0)

    def test_self_similarity_is_one(self, toy):
        for node in range(toy.num_nodes):
            assert mcs_similarity(toy, node, node) == pytest.approx(1.0)

    def test_partial_overlap_in_between(self, toy):
        # metformin shares the CAUSE->nausea incidence with aspirin but
        # adds a TREAT->headache one: MCS = 1 of max(1, 2) incidences.
        sim = mcs_similarity(toy, toy.aspirin, toy.metformin)
        assert sim == pytest.approx(0.5)

    def test_isolated_pair_is_identical(self, toy):
        assert mcs_similarity(toy, toy.isolated, toy.lonely) == pytest.approx(1.0)

    def test_isolated_vs_connected_is_zero(self, toy):
        assert mcs_similarity(toy, toy.isolated, toy.aspirin) == pytest.approx(0.0)

    def test_cached_class_matches_function(self, toy):
        cached = McsSimilarity(toy)
        for u in range(toy.num_nodes):
            for v in range(toy.num_nodes):
                assert cached.similarity(u, v) == pytest.approx(mcs_similarity(toy, u, v))


class TestWeisfeilerLehman:
    def test_self_similarity_is_one(self, toy):
        wl = WeisfeilerLehmanKernel(toy)
        for node in range(toy.num_nodes):
            assert wl.similarity(node, node) == pytest.approx(1.0)

    def test_symmetric(self, toy):
        wl = WeisfeilerLehmanKernel(toy)
        for u in range(toy.num_nodes):
            for v in range(toy.num_nodes):
                assert wl.similarity(u, v) == pytest.approx(wl.similarity(v, u))

    def test_identical_neighborhoods_score_high(self, toy):
        wl = WeisfeilerLehmanKernel(toy, iterations=1)
        # aspirin/ibuprofen 1-hop egos are isomorphic up to the HAS tail;
        # they must outscore aspirin/metformin.
        assert wl.similarity(toy.aspirin, toy.ibuprofen) > wl.similarity(
            toy.aspirin, toy.metformin
        )

    def test_kernel_value_counts_common_colors(self, toy):
        wl = WeisfeilerLehmanKernel(toy, iterations=1, hops=1)
        # Isolated Finding nodes share their type colour at round 0 and
        # their (degree-0) refined colour at round 1.
        assert wl.kernel(toy.isolated, toy.lonely) == pytest.approx(2.0)

    def test_invalid_parameters(self, toy):
        with pytest.raises(ValueError):
            WeisfeilerLehmanKernel(toy, iterations=0)
        with pytest.raises(ValueError):
            WeisfeilerLehmanKernel(toy, hops=0)

    def test_refinement_separates_structurally_distinct(self, toy):
        wl = WeisfeilerLehmanKernel(toy, iterations=2, hops=2)
        # nausea (degree 4) and vomiting (degree 0) are both AdverseEffect
        # but refine to different colours.
        assert wl.similarity(toy.nausea, toy.vomiting) < 1.0


class TestHungarianGed:
    def test_identical_stars_score_one(self, toy):
        assert hungarian_ged_similarity(toy, toy.aspirin, toy.ibuprofen) == pytest.approx(1.0)

    def test_self_similarity_is_one(self, toy):
        for node in range(toy.num_nodes):
            assert hungarian_ged_similarity(toy, node, node) == pytest.approx(1.0)

    def test_isolated_pair(self, toy):
        assert hungarian_ged_similarity(toy, toy.isolated, toy.lonely) == pytest.approx(1.0)

    def test_disjoint_stars_score_zero(self, toy):
        assert hungarian_ged_similarity(toy, toy.isolated, toy.aspirin) == pytest.approx(0.0)

    def test_never_below_multiset_star_diff(self, toy):
        # The optimal assignment can only match as well or better than the
        # label-multiset diff (both use unit indel; substitution can reuse
        # slots the multiset diff pays twice for).
        for u in range(toy.num_nodes):
            for v in range(toy.num_nodes):
                hung = hungarian_ged_similarity(toy, u, v)
                star = normalized_ged_similarity(toy, u, v)
                assert hung >= star - 1e-9

    def test_substitution_cost_discounts_partial_match(self, toy):
        # With substitution cheaper than delete+insert, differing labels
        # are substituted rather than re-created.
        cheap = hungarian_ged_similarity(
            toy, toy.aspirin, toy.metformin, substitution_cost=0.5
        )
        unit = hungarian_ged_similarity(toy, toy.aspirin, toy.metformin)
        assert cheap >= unit


class TestFactory:
    def test_all_registered_metrics_work(self, toy):
        for name in STRUCTURAL_METRICS:
            metric = make_structural_metric(name, toy)
            value = metric.similarity(toy.aspirin, toy.metformin)
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_unknown_metric_rejected(self, toy):
        with pytest.raises(ValueError, match="unknown structural metric"):
            make_structural_metric("graphlet", toy)

    def test_star_ged_is_default_paper_metric(self, toy):
        metric = make_structural_metric("star_ged", toy)
        assert metric.similarity(toy.aspirin, toy.ibuprofen) == pytest.approx(
            normalized_ged_similarity(toy, toy.aspirin, toy.ibuprofen)
        )


class TestMetricProperties:
    """Shared contract of every sim_st metric, on random typed graphs."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n_nodes=st.integers(2, 12),
        n_edges=st.integers(0, 20),
        metric_name=st.sampled_from(sorted(STRUCTURAL_METRICS)),
    )
    def test_bounds_symmetry_identity(self, seed, n_nodes, n_edges, metric_name):
        graph = random_hetero_graph(seed, n_nodes, n_edges)
        metric = make_structural_metric(metric_name, graph)
        rng = np.random.default_rng(seed + 1)
        for _ in range(5):
            u = int(rng.integers(n_nodes))
            v = int(rng.integers(n_nodes))
            suv = metric.similarity(u, v)
            svu = metric.similarity(v, u)
            assert -1e-9 <= suv <= 1.0 + 1e-9
            assert suv == pytest.approx(svu, abs=1e-9)
        if metric_name != "wl" or graph.num_edges > 0 or n_nodes > 0:
            node = int(rng.integers(n_nodes))
            assert metric.similarity(node, node) == pytest.approx(1.0)


class TestSamplerIntegration:
    def test_sampler_accepts_every_metric(self, toy):
        from repro.core.negative_sampling import SemanticNegativeSampler

        emb = np.random.default_rng(0).random((toy.num_nodes, 8)).astype(np.float32)
        for name in STRUCTURAL_METRICS:
            sampler = SemanticNegativeSampler(
                toy, emb, np.random.default_rng(1), structural_metric=name
            )
            negs = sampler.sample(toy.aspirin, 3)
            assert len(negs) == 3
            assert toy.aspirin not in negs.tolist()

    def test_sampler_rejects_unknown_metric(self, toy):
        from repro.core.negative_sampling import SemanticNegativeSampler

        emb = np.zeros((toy.num_nodes, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            SemanticNegativeSampler(
                toy, emb, np.random.default_rng(0), structural_metric="nope"
            )

    def test_train_config_carries_metric(self):
        from repro.core.trainer import TrainConfig

        config = TrainConfig(structural_metric="mcs")
        assert config.structural_metric == "mcs"
