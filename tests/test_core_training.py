"""End-to-end core tests: model, trainer, pipeline, explainer on a small
synthetic dataset.  These are the integration tests of the repository."""

import numpy as np
import pytest

from repro.core import (
    EDGNN,
    EDPipeline,
    GNNExplainer,
    ModelConfig,
    TrainConfig,
    with_related_relation,
)
from repro.datasets import load_dataset
from repro.eval import analyze_errors
from repro.eval.error_analysis import CATEGORIES


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=0.25, use_cache=True)


@pytest.fixture(scope="module")
def trained(dataset):
    """One trained pipeline shared by the read-only tests below."""
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(
            variant="graphsage", feature_dim=32, hidden_dim=32, num_layers=2, seed=0
        ),
        train_config=TrainConfig(epochs=30, patience=30, seed=0),
    )
    result = pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe, result


class TestModelConfig:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(variant="transformer")

    def test_model_builds_for_every_variant(self, dataset):
        schema = with_related_relation(dataset.kb.schema)
        for variant in ("graphsage", "rgcn", "gcn", "gat"):
            model = EDGNN(
                ModelConfig(variant=variant, feature_dim=16, hidden_dim=16, num_layers=1),
                schema,
            )
            assert model.num_parameters() > 0


class TestTraining:
    def test_training_improves_over_initialization(self, dataset, trained):
        _, result = trained
        first_val = result.history[0].val.f1
        assert result.best_val.f1 >= first_val
        assert result.test.f1 > 0.5

    def test_history_is_per_epoch(self, trained):
        _, result = trained
        epochs = [s.epoch for s in result.history]
        assert epochs == list(range(len(epochs)))
        curve = result.convergence_curve
        assert curve[0][0] == 0 and len(curve) == len(epochs)

    def test_test_records_cover_eval_pairs(self, dataset, trained):
        _, result = trained
        n_test = len(dataset.test)
        # 1 positive + eval_negatives per snippet
        assert len(result.test_records) == n_test * 2
        labels = [r.label for r in result.test_records]
        assert sum(labels) == n_test

    def test_error_analysis_consistent(self, trained):
        _, result = trained
        breakdown = analyze_errors(result.test_records)
        assert breakdown.total_mentions == len(result.test_records) // 2
        assert set(breakdown.errors) <= set(CATEGORIES)
        assert sum(breakdown.rates().values()) <= 1.0 + 1e-9
        # Misclassified mentions must equal the categorised total.
        miss = {
            id(r.query_graph)
            for r in result.test_records
            if bool(r.prediction) != bool(r.label)
        }
        assert breakdown.total_errors == len(miss)


class TestInference:
    def test_disambiguate_snippet_ranks_gold_high(self, dataset, trained):
        pipe, _ = trained
        hits = 0
        for snippet in dataset.test[:20]:
            pred = pipe.disambiguate_snippet(snippet, top_k=3, restrict_to_candidates=False)
            gold = int(snippet.ambiguous_mention.link_id[1:])
            if gold in pred.ranked_entities:
                hits += 1
        assert hits >= 8  # top-3 over the whole KB; far above chance

    def test_disambiguate_raw_text(self, dataset, trained):
        pipe, _ = trained
        name = dataset.kb.node_name(0)
        pred = pipe.disambiguate(f"Clinical notes report {name}.")
        assert pred.ranked_entities
        assert len(pred.scores) == len(pred.ranked_entities)

    def test_snippet_from_text_requires_mentions(self, trained):
        pipe, _ = trained
        with pytest.raises(ValueError):
            pipe.snippet_from_text("qqqq zzzz wwww")


class TestExplainer:
    def test_explanation_structure(self, dataset, trained):
        pipe, result = trained
        qg = result.test_records[0].query_graph
        explainer = GNNExplainer(pipe.model, dataset.kb, epochs=10, seed=0)
        explanation = explainer.explain(qg, qg.gold_entity, k_hops=1, top_k=3)
        assert explanation.entity_name == dataset.kb.node_name(qg.gold_entity)
        assert len(explanation.top_edges) <= 3
        for edge in explanation.top_edges:
            assert 0.0 <= edge.score <= 1.0
        assert np.all(explanation.edge_mask >= 0) and np.all(explanation.edge_mask <= 1)

    def test_isolated_entity_yields_empty_explanation(self, dataset, trained):
        pipe, result = trained
        iso = dataset.kb.add_node("Disease", "completely isolated entity")
        feats = np.vstack(
            [dataset.kb.features, np.zeros((1, dataset.kb.features.shape[1]))]
        ).astype(np.float32)
        dataset.kb.set_features(feats)
        qg = result.test_records[0].query_graph
        explainer = GNNExplainer(pipe.model, dataset.kb, epochs=2, seed=0)
        explanation = explainer.explain(qg, iso, k_hops=1)
        assert explanation.top_edges == []


class TestAblationToggles:
    def test_basic_vs_augmented_query_graphs(self, dataset):
        """Both construction modes must train; the ablation bench relies
        on this toggle."""
        for augment in (True, False):
            pipe = EDPipeline(
                dataset.kb,
                model_config=ModelConfig(
                    variant="rgcn", feature_dim=16, hidden_dim=16, num_layers=1, seed=0
                ),
                train_config=TrainConfig(epochs=3, patience=3, seed=0),
                augment_query_graphs=augment,
            )
            result = pipe.fit(dataset.train[:30], dataset.val[:10], dataset.test[:10])
            assert 0.0 <= result.test.f1 <= 1.0

    def test_uniform_vs_hard_negatives(self, dataset):
        for hard in (True, False):
            pipe = EDPipeline(
                dataset.kb,
                model_config=ModelConfig(
                    variant="graphsage", feature_dim=16, hidden_dim=16, num_layers=1, seed=0
                ),
                train_config=TrainConfig(
                    epochs=3, patience=3, seed=0, use_hard_negatives=hard
                ),
            )
            result = pipe.fit(dataset.train[:30], dataset.val[:10], dataset.test[:10])
            assert 0.0 <= result.test.f1 <= 1.0
