"""Tests for bootstrap CIs, significance tests, the discrepancy
classifier, and the per-class evaluation breakdown."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    bootstrap_prf,
    discrepancy_breakdown,
    mcnemar_test,
    paired_permutation_test,
    precision_recall_f1,
)
from repro.text import VariantKind, classify_discrepancy, edit_distance


class TestEditDistance:
    def test_identity(self):
        assert edit_distance("nephrosis", "nephrosis") == 0

    def test_empty_cases(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "") == 0

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    @settings(max_examples=50, deadline=None)
    @given(a=st.text(max_size=12), b=st.text(max_size=12))
    def test_metric_properties(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)
        assert d >= abs(len(a) - len(b))
        assert d <= max(len(a), len(b))
        assert (d == 0) == (a == b)


class TestClassifyDiscrepancy:
    def test_exact(self):
        assert classify_discrepancy("nephrosis", "Nephrosis") == VariantKind.EXACT

    def test_acronym(self):
        assert (
            classify_discrepancy("acute renal failure", "ARF") == VariantKind.ACRONYM
        )

    def test_synonym_from_aliases(self):
        kind = classify_discrepancy(
            "malignant hyperpyrexia", "malignant hyperthermia",
            synonyms=("malignant hyperthermia",),
        )
        assert kind == VariantKind.SYNONYM

    def test_abbreviation(self):
        assert (
            classify_discrepancy("chronic nephrotoxicity", "chronic neph.")
            == VariantKind.ABBREVIATION
        )

    def test_simplification(self):
        assert (
            classify_discrepancy("chronic kidney disease", "kidney disease")
            == VariantKind.SIMPLIFICATION
        )

    def test_typo(self):
        assert classify_discrepancy("proteinuria", "protienuria") == VariantKind.TYPO

    def test_unrelated_is_none(self):
        assert classify_discrepancy("proteinuria", "gastroenteritis") is None

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_inverts_generators(self, seed):
        """classify(generate(kind)) == kind for every applicable kind."""
        from repro.text import applicable_kinds, generate_variant

        rng = np.random.default_rng(seed)
        names = [
            "acute renal failure",
            "chronic kidney disease",
            "malignant hyperpyrexia",
            "nephrotoxicity syndrome",
            "severe congenital anemia",
        ]
        name = names[seed % len(names)]
        synonyms = ("completely different alias",)
        for kind in applicable_kinds(name, synonyms):
            if kind == VariantKind.TYPO:
                continue  # a typo\'d variant may coincide with another class
            surface = generate_variant(name, kind, rng, synonyms=synonyms)
            if surface is None or surface == name and kind != VariantKind.EXACT:
                continue
            got = classify_discrepancy(name, surface, synonyms)
            assert got == kind, f"{kind}: {name!r} -> {surface!r} classified {got}"


class TestBootstrap:
    def _pairs(self, n=200, seed=0, accuracy=0.8):
        rng = np.random.default_rng(seed)
        labels = rng.random(n) < 0.5
        flip = rng.random(n) > accuracy
        predictions = np.where(flip, ~labels, labels)
        return labels, predictions

    def test_point_matches_prf(self):
        labels, predictions = self._pairs()
        result = bootstrap_prf(labels, predictions, n_resamples=100)
        point = precision_recall_f1(labels, predictions)
        assert result.f1.point == pytest.approx(point.f1)
        assert result.precision.point == pytest.approx(point.precision)

    def test_interval_contains_point(self):
        labels, predictions = self._pairs()
        result = bootstrap_prf(labels, predictions, n_resamples=200)
        for ci in (result.precision, result.recall, result.f1):
            assert ci.low - 1e-9 <= ci.point <= ci.high + 1e-9
            assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_more_data_tightens_interval(self):
        small = bootstrap_prf(*self._pairs(n=50), n_resamples=300, seed=1)
        large = bootstrap_prf(*self._pairs(n=2000), n_resamples=300, seed=1)
        assert large.f1.width < small.f1.width

    def test_deterministic_given_seed(self):
        labels, predictions = self._pairs()
        a = bootstrap_prf(labels, predictions, n_resamples=50, seed=7)
        b = bootstrap_prf(labels, predictions, n_resamples=50, seed=7)
        assert a == b

    def test_rejects_empty_and_misaligned(self):
        with pytest.raises(ValueError):
            bootstrap_prf(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            bootstrap_prf(np.array([True]), np.array([True, False]))
        with pytest.raises(ValueError):
            bootstrap_prf(np.array([True]), np.array([True]), confidence=1.5)


class TestSignificance:
    def test_identical_systems_not_significant(self):
        rng = np.random.default_rng(0)
        labels = rng.random(100) < 0.5
        preds = labels.copy()
        assert paired_permutation_test(labels, preds, preds) == 1.0
        result = mcnemar_test(labels, preds, preds)
        assert result["p_value"] == 1.0
        assert result["only_a"] == result["only_b"] == 0

    def test_clearly_better_system_significant(self):
        rng = np.random.default_rng(1)
        labels = rng.random(400) < 0.5
        good = np.where(rng.random(400) < 0.95, labels, ~labels)
        bad = np.where(rng.random(400) < 0.55, labels, ~labels)
        assert paired_permutation_test(labels, good, bad, n_permutations=300) < 0.05
        assert mcnemar_test(labels, good, bad)["p_value"] < 0.05

    def test_mcnemar_counts_discordant(self):
        labels = np.array([True, True, False, False])
        a = np.array([True, False, False, True])  # right on 0,2; wrong on 1,3
        b = np.array([True, True, True, True])  # right on 0,1; wrong on 2,3
        result = mcnemar_test(labels, a, b)
        assert result["only_a"] == 1  # pair 2
        assert result["only_b"] == 1  # pair 1

    def test_permutation_pvalue_in_unit_interval(self):
        rng = np.random.default_rng(2)
        labels = rng.random(50) < 0.5
        a = rng.random(50) < 0.5
        b = rng.random(50) < 0.5
        p = paired_permutation_test(labels, a, b, n_permutations=100)
        assert 0.0 < p <= 1.0


class TestDiscrepancyBreakdown:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.eval.evaluator import run_system

        return run_system("NCBI", "graphsage", epochs=2, scale=0.2)

    def test_covers_all_positive_pairs(self, run):
        kb = run.pipeline.kb
        breakdown = discrepancy_breakdown(run.test_records, kb)
        positives = sum(1 for r in run.test_records if r.label == 1)
        assert breakdown.total == positives

    def test_accuracy_bounds_and_rows(self, run):
        breakdown = discrepancy_breakdown(run.test_records, run.pipeline.kb)
        assert 0.0 <= breakdown.overall_accuracy <= 1.0
        for row in breakdown.rows():
            assert len(row) == 3
            assert 0.0 <= float(row[2]) <= 1.0

    def test_known_classes_present(self, run):
        """The NCBI profile mixes all five discrepancy kinds; at least
        acronyms and synonyms must appear in a 100+ snippet test set."""
        breakdown = discrepancy_breakdown(run.test_records, run.pipeline.kb)
        assert VariantKind.ACRONYM.value in breakdown.classes
