"""System-level integration tests over the evaluator harness: every
system trains end to end, results are deterministic under a fixed seed,
and the harness surfaces everything the downstream tables consume."""

import pytest

from repro.eval.evaluator import BEST_VARIANT, run_best_variant, run_system

SCALE = 0.2
EPOCHS = 3


class TestEverySystemTrains:
    @pytest.mark.parametrize("system", ["DeepMatcher", "NormCo", "NCEL"])
    def test_baseline_runs(self, system):
        run = run_system("NCBI", system, epochs=EPOCHS, scale=SCALE)
        assert 0.0 <= run.test.f1 <= 1.0
        assert run.convergence, "convergence history missing"
        assert run.best_epoch >= 0

    @pytest.mark.parametrize("variant", ["gcn", "gat", "han", "hetgnn"])
    def test_extension_variant_runs(self, variant):
        run = run_system("NCBI", variant, epochs=EPOCHS, scale=SCALE)
        assert 0.0 <= run.test.f1 <= 1.0
        assert run.test_records, "pair records missing"
        assert run.pipeline is not None

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            run_system("NCBI", "chatbot", epochs=1, scale=SCALE)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            run_system("UMLS", "graphsage", epochs=1, scale=SCALE)


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run_system("NCBI", "graphsage", epochs=EPOCHS, scale=SCALE, seed=3)
        b = run_system("NCBI", "graphsage", epochs=EPOCHS, scale=SCALE, seed=3)
        assert a.test == b.test
        assert a.convergence == b.convergence

    def test_different_seeds_differ(self):
        a = run_system("NCBI", "graphsage", epochs=EPOCHS, scale=SCALE, seed=0)
        b = run_system("NCBI", "graphsage", epochs=EPOCHS, scale=SCALE, seed=99)
        # Weight init and negative draws differ; histories must too.
        assert a.convergence != b.convergence


class TestHarnessContracts:
    def test_best_variant_helper_matches_table(self):
        run = run_best_variant("NCBI", epochs=EPOCHS, scale=SCALE)
        assert run.system == BEST_VARIANT["NCBI"]

    def test_overrides_reach_the_model(self):
        run = run_system(
            "NCBI",
            "graphsage",
            epochs=EPOCHS,
            scale=SCALE,
            model_overrides=dict(matcher="dot"),
            train_overrides=dict(structural_metric="mcs"),
        )
        assert run.pipeline.model_config.matcher == "dot"
        assert run.pipeline.train_config.structural_metric == "mcs"

    def test_layer_override(self):
        run = run_system("NCBI", "graphsage", num_layers=1, epochs=EPOCHS, scale=SCALE)
        assert run.pipeline.model_config.num_layers == 1

    def test_optimisations_toggle(self):
        run = run_system(
            "NCBI",
            "graphsage",
            epochs=EPOCHS,
            scale=SCALE,
            use_hard_negatives=False,
            augment_query_graphs=False,
        )
        assert run.pipeline.augment is False
        assert run.pipeline.train_config.use_hard_negatives is False

    def test_eval_pairs_identical_across_systems(self):
        """The Section 4.1 protocol: same seed => same evaluation pairs
        for every ED-GNN variant (what makes significance tests valid)."""
        a = run_system("NCBI", "graphsage", epochs=EPOCHS, scale=SCALE, seed=1)
        b = run_system("NCBI", "gcn", epochs=EPOCHS, scale=SCALE, seed=1)
        pairs_a = [(r.ref_entity, r.label) for r in a.test_records]
        pairs_b = [(r.ref_entity, r.label) for r in b.test_records]
        assert pairs_a == pairs_b
