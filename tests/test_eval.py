"""Tests for metrics, error analysis helpers, and reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    PRF,
    classify_logits,
    format_table,
    hits_at_k,
    markdown_table,
    mean_prf,
    mean_reciprocal_rank,
    precision_recall_f1,
    prf_from_logits,
    results_table,
)


class TestPRF:
    def test_perfect(self):
        prf = precision_recall_f1(np.array([1, 0, 1]), np.array([1, 0, 1]))
        assert prf == PRF(1.0, 1.0, 1.0)

    def test_known_values(self):
        labels = np.array([1, 1, 1, 0, 0])
        preds = np.array([1, 1, 0, 1, 0])
        prf = precision_recall_f1(labels, preds)
        assert prf.precision == pytest.approx(2 / 3)
        assert prf.recall == pytest.approx(2 / 3)
        assert prf.f1 == pytest.approx(2 / 3)

    def test_degenerate_all_negative_predictions(self):
        prf = precision_recall_f1(np.array([1, 1]), np.array([0, 0]))
        assert prf == PRF(0.0, 0.0, 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_f1(np.array([1]), np.array([1, 0]))

    def test_classify_logits_threshold(self):
        preds = classify_logits(np.array([-5.0, 0.0, 5.0]), threshold=0.5)
        np.testing.assert_array_equal(preds, [False, True, True])

    def test_prf_from_logits(self):
        prf = prf_from_logits(np.array([1, 0]), np.array([10.0, -10.0]))
        assert prf.f1 == 1.0

    def test_mean_prf(self):
        mean = mean_prf([PRF(1, 1, 1), PRF(0, 0, 0)])
        assert mean == PRF(0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            mean_prf([])

    def test_as_dict_and_str(self):
        prf = PRF(0.5, 0.25, 0.333)
        assert prf.as_dict()["recall"] == 0.25
        assert "F1=0.333" in str(prf)


class TestRankingMetrics:
    def test_hits_at_k(self):
        ranked = [np.array([3, 1, 2]), np.array([9, 8, 7])]
        assert hits_at_k(ranked, [1, 5], k=2) == 0.5
        assert hits_at_k(ranked, [1, 5], k=3) == 0.5
        assert hits_at_k([], [], k=1) == 0.0

    def test_mrr(self):
        ranked = [np.array([3, 1, 2]), np.array([5, 9])]
        mrr = mean_reciprocal_rank(ranked, [1, 9])
        assert mrr == pytest.approx((1 / 2 + 1 / 2) / 2)

    def test_mrr_missing_gold_counts_zero(self):
        assert mean_reciprocal_rank([np.array([1, 2])], [99]) == 0.0

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            hits_at_k([np.array([1])], [1, 2], k=1)


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_results_table_includes_all(self):
        results = {
            "sys1": {"DS": PRF(0.5, 0.6, 0.55)},
            "sys2": {"DS": PRF(0.7, 0.8, 0.75)},
        }
        out = results_table(results, title="Table 3")
        assert "0.550" in out and "0.750" in out and "DS" in out

    def test_results_table_missing_cell_dash(self):
        results = {"sys1": {"A": PRF(1, 1, 1)}, "sys2": {}}
        out = results_table(results, datasets=["A"])
        assert "-" in out

    def test_markdown_table(self):
        md = markdown_table(["x"], [["1"]])
        assert md.startswith("| x |")
        assert "| 1 |" in md


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 50),
    seed=st.integers(0, 2**16),
)
def test_property_f1_is_harmonic_mean(n, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    preds = rng.integers(0, 2, size=n)
    prf = precision_recall_f1(labels, preds)
    assert 0.0 <= prf.precision <= 1.0
    assert 0.0 <= prf.recall <= 1.0
    if prf.precision + prf.recall > 0:
        expected = 2 * prf.precision * prf.recall / (prf.precision + prf.recall)
        assert prf.f1 == pytest.approx(expected)
    else:
        assert prf.f1 == 0.0
