"""Tests for the HTTP front door: wire schema, server, client.

The wire dataclasses are unit-tested without a pipeline (strict parsing
is pure).  Everything network-shaped runs against one module-scope
server over a tiny trained linker on an ephemeral port: the /link
equivalence contract (bit-identical to ``LinkingService.link_batch`` on
the same service — the shared result cache makes byte-for-byte equality
well-defined — and ranking-identical to sequential
``disambiguate_snippet``), the structured error paths (400/404/405/413),
stats in both renderings, NDJSON streaming with per-line error records,
draining shutdown, and N concurrent clients merging to the sequential
rankings.
"""

import http.client
import json
import threading

import numpy as np
import pytest

from repro.api import Linker
from repro.core import EDPipeline, ModelConfig, TrainConfig
from repro.datasets import load_dataset
from repro.serving import (
    WIRE_SCHEMA_VERSION,
    ErrorResponse,
    HttpConfig,
    LinkerClient,
    LinkerClientError,
    LinkingHTTPServer,
    LinkItem,
    LinkRequest,
    LinkResponse,
    WireError,
    WirePrediction,
    parse_stream_line,
)

SCALE = 0.2

SNIPPET_TEXT = (
    "The patient presented with mild spinal hyperplasia, congenital "
    "cardiac cancer and primary dermal necrosis."
)


# ---------------------------------------------------------------------------
# Wire schema units (no pipeline, no sockets)
# ---------------------------------------------------------------------------
class TestWireSchema:
    def test_request_round_trip(self):
        request = LinkRequest(
            items=(LinkItem(text="abc", mention="ab"), LinkItem(text="xyz")),
            top_k=3,
        )
        loaded = LinkRequest.from_json(request.to_json())
        assert loaded == request
        assert loaded.to_dict()["schema_version"] == WIRE_SCHEMA_VERSION

    def test_response_round_trip_is_bit_identical(self):
        # json serialises floats via repr, which float() inverts exactly —
        # the property the whole wire contract leans on.
        scores = (2.0700716972351074, float(np.float32(1.173404574394226)), 1e-17)
        response = LinkResponse(
            predictions=(
                WirePrediction(
                    mention="m", entity_ids=(3, 1), scores=scores, entity_names=("a", "b")
                ),
            )
        )
        loaded = LinkResponse.from_json(response.to_json())
        assert loaded.predictions[0].scores == scores
        assert loaded == response

    def test_prediction_round_trip(self):
        wire = WirePrediction(mention="m", entity_ids=(5,), scores=(0.25,))
        prediction = wire.to_prediction()
        assert prediction.ranked_entities == [5]
        assert WirePrediction.from_prediction(prediction) == wire

    def test_item_needs_exactly_one_source(self):
        with pytest.raises(WireError):
            LinkItem()
        with pytest.raises(WireError):
            LinkItem(mention="m")  # mention without text

    def test_unknown_keys_rejected(self):
        payload = {"schema_version": 1, "items": [{"text": "a"}], "topk": 3}
        with pytest.raises(WireError, match="unknown link request keys"):
            LinkRequest.from_dict(payload)

    def test_unknown_schema_version(self):
        payload = {"schema_version": 99, "items": [{"text": "a"}]}
        with pytest.raises(WireError, match="schema_version") as exc_info:
            LinkRequest.from_dict(payload)
        assert exc_info.value.code == "unsupported_schema_version"

    def test_empty_items_rejected(self):
        with pytest.raises(WireError, match="no items"):
            LinkRequest.from_dict({"schema_version": 1, "items": []})

    def test_bad_top_k_rejected(self):
        for bad in (0, -1, True, "3"):
            with pytest.raises(WireError, match="top_k"):
                LinkRequest(items=(LinkItem(text="a"),), top_k=bad)

    def test_not_json_rejected(self):
        with pytest.raises(WireError, match="not valid JSON"):
            LinkRequest.from_json(b"{nope")
        with pytest.raises(WireError, match="JSON object"):
            LinkRequest.from_json(b"[1, 2]")

    def test_error_response_round_trip(self):
        error = ErrorResponse(code="draining", message="bye", detail="x")
        assert ErrorResponse.from_json(error.to_json()) == error

    def test_stream_line_dispatch(self):
        pred = WirePrediction(mention="m", entity_ids=(1,), scores=(0.5,))
        assert parse_stream_line(json.dumps(pred.to_dict())) == pred
        err = ErrorResponse(code="parse_error", message="bad")
        assert parse_stream_line(err.to_json()) == err

    def test_wire_error_to_response(self):
        exc = WireError("too big", code="payload_too_large", status=413)
        assert exc.status == 413
        assert exc.to_response().code == "payload_too_large"


# ---------------------------------------------------------------------------
# Server fixtures: one tiny trained linker, one module-scope server
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=SCALE)


@pytest.fixture(scope="module")
def pipeline(dataset):
    pipe = EDPipeline(
        dataset.kb,
        model_config=ModelConfig(variant="graphsage", num_layers=2, seed=0),
        train_config=TrainConfig(epochs=2, patience=5, seed=0),
    )
    pipe.fit(dataset.train, dataset.val, dataset.test)
    return pipe


@pytest.fixture(scope="module")
def linker(pipeline):
    return Linker(pipeline)


@pytest.fixture(scope="module")
def server(linker):
    server = linker.serve(http_port=0)
    yield server
    server.close()


@pytest.fixture()
def client(server):
    with LinkerClient(port=server.port) as client:
        yield client


def raw_request(server, method, path, body=None, headers=None):
    """A plain http.client round trip (status, headers, body bytes) for
    the paths LinkerClient refuses to produce (malformed payloads)."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# POST /link
# ---------------------------------------------------------------------------
class TestLinkEndpoint:
    def test_bit_identical_to_service_link_batch(self, server, linker, dataset):
        """The acceptance contract: POST /link and service.link_batch on
        one Linker produce byte-identical predictions."""
        snippets = dataset.test[:6]
        service = server.service.service  # the wrapped sync LinkingService
        direct = service.link_batch(snippets)
        with LinkerClient(port=server.port) as client:
            wire = client.link_batch(snippets)
        assert len(wire) == len(direct)
        for d, w in zip(direct, wire):
            assert w.mention == d.mention
            assert list(w.entity_ids) == list(d.ranked_entities)
            assert list(w.scores) == [float(s) for s in d.scores]  # exact

    def test_rankings_match_sequential(self, client, pipeline, dataset):
        snippets = dataset.test[:4]
        wire = client.link_batch(snippets)
        for snippet, w in zip(snippets, wire):
            expected = pipeline.disambiguate_snippet(snippet)
            assert list(w.entity_ids) == expected.ranked_entities
            assert np.allclose(w.scores, expected.scores, atol=1e-4)

    def test_text_item_through_ner(self, client, pipeline):
        prediction = client.link(text=SNIPPET_TEXT)
        expected = pipeline.disambiguate(SNIPPET_TEXT)
        assert prediction.mention == expected.mention
        assert list(prediction.entity_ids) == expected.ranked_entities

    def test_entity_names_resolved(self, client, pipeline):
        prediction = client.link(text=SNIPPET_TEXT)
        assert prediction.entity_names == tuple(
            pipeline.entity_name(e) for e in prediction.entity_ids
        )

    def test_top_k_caps_response(self, client):
        prediction = client.link(text=SNIPPET_TEXT, top_k=1)
        assert len(prediction.entity_ids) == 1
        assert len(prediction.scores) == 1

    def test_malformed_json_is_400(self, server):
        status, _, body = raw_request(server, "POST", "/link", body=b"{nope")
        assert status == 400
        error = ErrorResponse.from_json(body)
        assert error.code == "bad_request"

    def test_unknown_key_is_400(self, server):
        payload = json.dumps(
            {"schema_version": 1, "items": [{"text": SNIPPET_TEXT}], "topk": 1}
        )
        status, _, body = raw_request(server, "POST", "/link", body=payload)
        assert status == 400
        assert "topk" in ErrorResponse.from_json(body).message

    def test_unknown_schema_version_is_400(self, server):
        payload = json.dumps({"schema_version": 99, "items": [{"text": SNIPPET_TEXT}]})
        status, _, body = raw_request(server, "POST", "/link", body=payload)
        assert status == 400
        assert ErrorResponse.from_json(body).code == "unsupported_schema_version"

    def test_unlinkable_text_is_400_with_item_site(self, client):
        with pytest.raises(LinkerClientError) as exc_info:
            client.link_batch([SNIPPET_TEXT, "xqzt gibberish"])
        assert exc_info.value.status == 400
        assert "items[1]" in exc_info.value.error.message

    def test_unknown_route_is_404(self, server):
        status, _, body = raw_request(server, "GET", "/nope")
        assert status == 404
        assert ErrorResponse.from_json(body).code == "not_found"

    def test_wrong_method_is_405(self, server):
        status, _, body = raw_request(server, "GET", "/link")
        assert status == 405
        assert ErrorResponse.from_json(body).code == "method_not_allowed"


class TestOversized:
    def test_oversized_batch_is_413(self, pipeline, dataset):
        with LinkingHTTPServer(pipeline, HttpConfig(port=0, max_batch=2)) as server:
            with LinkerClient(port=server.port) as client:
                assert len(client.link_batch(dataset.test[:2])) == 2
                with pytest.raises(LinkerClientError) as exc_info:
                    client.link_batch(dataset.test[:3])
        assert exc_info.value.status == 413
        assert exc_info.value.error.code == "payload_too_large"

    def test_oversized_body_is_413(self, pipeline):
        config = HttpConfig(port=0, max_body_bytes=1024)
        with LinkingHTTPServer(pipeline, config) as server:
            big = json.dumps(
                {"schema_version": 1, "items": [{"text": "x" * 2048}]}
            ).encode()
            status, _, body = raw_request(server, "POST", "/link", body=big)
        assert status == 413
        assert ErrorResponse.from_json(body).code == "payload_too_large"


# ---------------------------------------------------------------------------
# GET /healthz and /stats
# ---------------------------------------------------------------------------
class TestHealthAndStats:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["schema_version"] == WIRE_SCHEMA_VERSION

    def test_stats_round_trips_service_stats(self, server, client):
        client.link(text=SNIPPET_TEXT)  # ensure the counters moved
        payload = client.stats()
        assert payload == server.stats.to_dict()
        assert payload["mentions"] >= 1

    def test_stats_prometheus_rendering(self, server, client):
        client.link(text=SNIPPET_TEXT)
        text = client.stats(prometheus=True)
        assert text == server.stats.to_prometheus()
        assert "# TYPE repro_requests_total counter" in text
        assert f"repro_mentions_total {server.stats.mentions}" in text
        # the async path records latencies, so the summary has quantiles
        assert 'repro_request_latency_ms{quantile="0.5"}' in text

    def test_accept_header_picks_the_rendering(self, server):
        status, headers, body = raw_request(
            server, "GET", "/stats", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert body.startswith(b"# HELP repro_requests_total")
        status, headers, _ = raw_request(server, "GET", "/stats")
        assert headers["Content-Type"] == "application/json"


# ---------------------------------------------------------------------------
# POST /link_stream
# ---------------------------------------------------------------------------
class TestStreamEndpoint:
    def test_stream_matches_sequential(self, client, pipeline, dataset):
        snippets = dataset.test[:5]
        results = list(client.link_stream(snippets))
        assert len(results) == len(snippets)
        for snippet, result in zip(snippets, results):
            assert isinstance(result, WirePrediction)
            expected = pipeline.disambiguate_snippet(snippet)
            assert list(result.entity_ids) == expected.ranked_entities

    def test_bad_line_is_error_record_in_order(self, server, dataset):
        good = json.dumps(LinkItem(snippet=dataset.test[0]).to_dict())
        body = "\n".join([good, "{not json", good]).encode()
        status, headers, raw = raw_request(
            server, "POST", "/link_stream", body=body
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [parse_stream_line(line) for line in raw.splitlines() if line.strip()]
        assert len(lines) == 3
        assert isinstance(lines[0], WirePrediction)
        assert isinstance(lines[1], ErrorResponse)
        assert lines[1].code == "parse_error"
        assert lines[1].detail == "{not json"
        assert isinstance(lines[2], WirePrediction)
        assert lines[0] == lines[2]

    def test_stream_is_chunked(self, server, dataset):
        body = json.dumps(LinkItem(snippet=dataset.test[0]).to_dict()).encode()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/link_stream", body=body)
            response = conn.getresponse()
            assert response.getheader("Transfer-Encoding") == "chunked"
            assert response.read().strip()
        finally:
            conn.close()


# ---------------------------------------------------------------------------
# Lifecycle: draining close
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_drain_refuses_new_work_with_503(self, linker, dataset):
        server = linker.serve(http_port=0)
        try:
            with LinkerClient(port=server.port) as client:
                client.link(snippet=dataset.test[0])
                server.drain()
                with pytest.raises(LinkerClientError) as exc_info:
                    client.link(snippet=dataset.test[0])
                assert exc_info.value.status == 503
                assert exc_info.value.error.code == "draining"
                with pytest.raises(LinkerClientError) as health_exc:
                    client.healthz()
                assert health_exc.value.status == 503
        finally:
            server.close()

    def test_close_is_idempotent_and_refuses_connections(self, linker, dataset):
        server = linker.serve(http_port=0)
        with LinkerClient(port=server.port) as client:
            client.link(snippet=dataset.test[0])
        server.close()
        server.close()  # second close is a no-op
        with pytest.raises(OSError):
            raw_request(server, "GET", "/healthz")

    def test_context_manager(self, pipeline, dataset):
        with LinkingHTTPServer(pipeline, HttpConfig(port=0)) as server:
            with LinkerClient(port=server.port) as client:
                assert client.healthz()["status"] == "ok"
        with pytest.raises(OSError):
            raw_request(server, "GET", "/healthz")

    def test_ephemeral_port_is_reported(self, server):
        assert server.port > 0
        assert server.config.port == 0  # the config keeps what was asked


# ---------------------------------------------------------------------------
# Concurrency: N clients, one scheduler
# ---------------------------------------------------------------------------
class TestConcurrentClients:
    def test_merged_responses_match_sequential(self, server, pipeline, dataset):
        snippets = dataset.test[:12]
        expected = {
            id(s): pipeline.disambiguate_snippet(s).ranked_entities for s in snippets
        }
        chunks = [snippets[i::4] for i in range(4)]
        merged = {}
        errors = []

        def worker(chunk):
            try:
                with LinkerClient(port=server.port) as client:
                    for snippet in chunk:
                        wire = client.link(snippet=snippet)
                        merged[id(snippet)] = list(wire.entity_ids)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(merged) == len(snippets)
        for key, rankings in merged.items():
            assert rankings == expected[key]
