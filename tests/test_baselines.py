"""Tests for the three baseline systems and their shared scaffolding."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    DeepMatcher,
    NCEL,
    NormCo,
    PairExample,
    TokenMatrixizer,
    build_eval_pairs,
    build_train_pairs,
    gold_entity,
)
from repro.datasets import load_dataset
from repro.text import HashingNgramEmbedder


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NCBI", scale=0.25, use_cache=True)


class TestPairBuilding:
    def test_eval_pairs_structure(self, dataset):
        pairs = build_eval_pairs(dataset.kb, dataset.val, k=1, seed=0)
        assert len(pairs) == 2 * len(dataset.val)
        positives = [p for p in pairs if p.label == 1]
        assert len(positives) == len(dataset.val)
        for p in positives:
            assert p.entity == gold_entity(p.snippet)

    def test_eval_pairs_deterministic(self, dataset):
        a = build_eval_pairs(dataset.kb, dataset.val, k=1, seed=0)
        b = build_eval_pairs(dataset.kb, dataset.val, k=1, seed=0)
        assert [(p.entity, p.label) for p in a] == [(p.entity, p.label) for p in b]

    def test_train_pairs_negatives_not_gold(self, dataset):
        rng = np.random.default_rng(0)
        pairs = build_train_pairs(dataset.kb, dataset.train[:20], k=3, rng=rng)
        for p in pairs:
            if p.label == 0:
                assert p.entity != gold_entity(p.snippet)

    def test_token_matrixizer_shapes(self):
        tm = TokenMatrixizer(HashingNgramEmbedder(dim=16), max_tokens=4)
        out = tm.encode("acute renal failure observed in patient")
        assert out.shape == (4, 16)
        assert np.any(out[0] != 0)
        batch = tm.encode_batch(["a b", "c"])
        assert batch.shape == (2, 4, 16)

    def test_token_matrixizer_pads_empty(self):
        tm = TokenMatrixizer(HashingNgramEmbedder(dim=8), max_tokens=3)
        assert np.all(tm.encode("") == 0)


@pytest.mark.parametrize("cls", [DeepMatcher, NormCo, NCEL])
class TestBaselineTraining:
    def test_short_training_runs_and_scores(self, dataset, cls):
        model = cls(dataset.kb, seed=0, epochs=4, patience=4)
        result = model.fit(dataset.train[:40], dataset.val[:15], dataset.test[:15])
        assert 0.0 <= result.test.f1 <= 1.0
        assert len(result.history) <= 4

    def test_score_pairs_differentiable(self, dataset, cls):
        model = cls(dataset.kb, seed=0)
        pairs = build_eval_pairs(dataset.kb, dataset.val[:5], k=1, seed=0)
        logits = model.score_pairs(pairs)
        assert logits.shape == (len(pairs),)
        logits.sum().backward()
        assert any(p.grad is not None for p in model.parameters())


class TestRegistry:
    def test_all_baselines_registered(self):
        assert set(BASELINES) == {"DeepMatcher", "NormCo", "NCEL"}

    def test_baselines_in_encoder_registry(self):
        # One lookup table for every system: baselines appear next to the
        # GNN variants, carrying their class on the marker builder.
        from repro.api import ENCODERS
        from repro.core.model import encoder_names

        for name, cls in BASELINES.items():
            assert name in encoder_names()
            assert getattr(ENCODERS.get(name), "baseline_cls", None) is cls

    def test_baseline_marker_refuses_encoder_construction(self):
        from repro.api import ENCODERS
        from repro.core import ModelConfig

        builder = ENCODERS.get("NormCo")
        with pytest.raises(ValueError, match="baseline system"):
            builder(ModelConfig(variant="NormCo"), None, None)

    def test_unknown_system_error_lists_baselines(self):
        from repro.eval import run_system

        with pytest.raises(ValueError, match="unknown system 'nope'.*NCEL"):
            run_system("NCBI", "nope", scale=0.2, epochs=1)

    def test_normco_requires_matching_dims(self, dataset):
        with pytest.raises(ValueError):
            NormCo(dataset.kb, token_dim=32, hidden_dim=64)


class TestInformationRestrictions:
    def test_deepmatcher_blind_to_structure(self, dataset):
        """DeepMatcher's score must not change when the KB edges change —
        it is a text-only model (the paper's characterisation)."""
        model = DeepMatcher(dataset.kb, seed=0)
        pairs = build_eval_pairs(dataset.kb, dataset.val[:5], k=1, seed=0)
        before = model.score_pairs(pairs).data.copy()
        mutated = dataset.kb.copy()
        # Drop half the edges.
        src, dst, et = mutated.edges()
        mutated._src = src[: len(src) // 2].tolist()
        mutated._dst = dst[: len(dst) // 2].tolist()
        mutated._etypes = et[: len(et) // 2].tolist()
        mutated._invalidate()
        model.kb = mutated
        after = model.score_pairs(pairs).data
        np.testing.assert_allclose(before, after)
