"""Standalone Table 3 run used to calibrate the benchmark harness.

Usage: python scripts/run_table3.py [datasets...]
Honours REPRO_SCALE / REPRO_EPOCHS.
"""

import os
import sys
import time

import numpy as np

from repro.api import Linker, LinkerConfig
from repro.baselines import BASELINES
from repro.core import ModelConfig, TrainConfig
from repro.datasets import DATASET_NAMES, load_dataset

EPOCHS = int(os.environ.get("REPRO_EPOCHS", "100"))

datasets = sys.argv[1:] or DATASET_NAMES
for ds_name in datasets:
    for system in ["DeepMatcher", "NormCo", "NCEL", "graphsage", "rgcn", "magnn"]:
        ds = load_dataset(ds_name, use_cache=False)
        t0 = time.time()
        if system in BASELINES:
            model = BASELINES[system](ds.kb, seed=0, epochs=EPOCHS, patience=30)
            res = model.fit(ds.train, ds.val, ds.test)
            test = res.test
        else:
            pipe = Linker.from_config(
                LinkerConfig(
                    model=ModelConfig(variant=system, num_layers=3 if ds_name != "NCBI" else 2, seed=0),
                    train=TrainConfig(epochs=EPOCHS, patience=30),
                ),
                ds.kb,
            )
            res = pipe.fit(ds.train, ds.val, ds.test)
            test = res.test
        print(
            f"{ds_name:10s} {system:12s} {time.time()-t0:6.1f}s "
            f"best_ep={res.best_epoch:3d} P={test.precision:.3f} R={test.recall:.3f} F1={test.f1:.3f}",
            flush=True,
        )
