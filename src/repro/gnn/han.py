"""HAN encoder (Wang et al. [46]) — a pluggable *extension* encoder.

The paper's related work singles out the Heterogeneous graph Attention
Network as the metapath predecessor of MAGNN: HAN "leverages a graph
attention network architecture to aggregate information from the
neighbors and then to combine various metapaths through the attention
mechanism".  Unlike MAGNN it looks only at the metapath *endpoints*
(the metapath-based neighbours of Definition 2.4), discarding the
intermediate nodes that MAGNN's relational rotation encoder folds in —
which is exactly the contrast the ED-GNN ablation wants to measure.

Two attention levels, following the original formulation:

* **Node-level** — per metapath ``P``, a multi-head GAT-style attention
  over the pairs (target, metapath-based neighbour):
  ``e^P_vu = LeakyReLU(a_P^T [h_v || h_u])``, softmax over ``N^P_v``.
* **Semantic-level** — one global attention over metapaths:
  ``w_P = (1/|V|) sum_v q^T tanh(W h^P_v + b)``, ``beta = softmax(w)``,
  final embedding ``sum_P beta_P h^P_v``.

A residual combine keeps nodes without metapath neighbours embedded
(the tiny query graphs routinely contain such nodes), mirroring the
MAGNN implementation in this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Dropout, Linear, Module, ModuleDict, ModuleList, Tensor
from ..autograd import functional as F
from ..autograd import init
from ..autograd.ops import concat, gather, scatter_add, segment_softmax, stack
from ..graph.hetero import HeteroGraph
from ..graph.metapath import Metapath, default_metapaths, enumerate_instances
from .base import GNNEncoder


@dataclass
class HanGraph:
    """Compiled structure: metapath-based neighbour pairs per metapath.

    ``pair_edges[i]`` maps each (target, neighbour) pair of metapath ``i``
    to the original-edge ids of one instance connecting them
    (``[n_pairs, path_len - 1]``), enabling per-edge masking.
    """

    num_nodes: int
    num_edges: int
    node_types: np.ndarray
    targets: List[np.ndarray]  # per metapath: [n_pairs]
    neighbors: List[np.ndarray]  # per metapath: [n_pairs]
    pair_edges: List[np.ndarray]  # per metapath: [n_pairs, path_len - 1]


class HanNodeAttention(Module):
    """Node-level attention of one metapath (multi-head, concatenated)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.att_target = init.xavier_uniform((num_heads, self.head_dim), rng)
        self.att_neighbor = init.xavier_uniform((num_heads, self.head_dim), rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(
        self,
        h: Tensor,
        targets: np.ndarray,
        neighbors: np.ndarray,
        num_nodes: int,
        pair_mask: Optional[Tensor] = None,
    ) -> Tensor:
        n_pairs = len(targets)
        h_heads_t = gather(h, targets).reshape(n_pairs, self.num_heads, self.head_dim)
        h_heads_n = gather(h, neighbors).reshape(n_pairs, self.num_heads, self.head_dim)
        scores = (
            (h_heads_t * self.att_target).sum(axis=2)
            + (h_heads_n * self.att_neighbor).sum(axis=2)
        ).leaky_relu(0.2)  # [n_pairs, H]
        alpha = segment_softmax(scores, targets, num_nodes)
        if self.dropout is not None:
            alpha = self.dropout(alpha)
        if pair_mask is not None:
            alpha = alpha * pair_mask.reshape(-1, 1)
        weighted = h_heads_n * alpha.reshape(n_pairs, self.num_heads, 1)
        pooled = scatter_add(weighted, targets, num_nodes)
        return F.elu(pooled.reshape(num_nodes, self.dim))


class HanSemanticAttention(Module):
    """Semantic-level attention over metapath-specific embeddings."""

    def __init__(self, dim: int, attention_dim: int, rng: np.random.Generator):
        super().__init__()
        self.project = Linear(dim, attention_dim, rng)
        self.query = init.xavier_uniform((attention_dim,), rng)

    def forward(self, per_metapath: List[Tensor]) -> Tensor:
        scores: List[Tensor] = []
        for h_p in per_metapath:
            summary = F.tanh(self.project(h_p)).mean(axis=0)  # [d_a]
            scores.append((summary * self.query).sum())
        beta = F.softmax(stack(scores, axis=0).reshape(1, -1), axis=-1).reshape(-1)
        mixed = per_metapath[0] * beta[0]
        for i in range(1, len(per_metapath)):
            mixed = mixed + per_metapath[i] * beta[i]
        return mixed


class HanLayer(Module):
    """One HAN layer: node-level attention per metapath + semantic fusion."""

    def __init__(
        self,
        dim: int,
        metapaths: Sequence[Metapath],
        num_heads: int,
        attention_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.dim = dim
        self.metapaths = list(metapaths)
        self.node_attention = ModuleList(
            HanNodeAttention(dim, num_heads, rng, dropout) for _ in self.metapaths
        )
        self.semantic = HanSemanticAttention(dim, attention_dim, rng)
        self.combine = Linear(2 * dim, dim, rng)

    def forward(self, compiled: HanGraph, h: Tensor, edge_mask: Optional[Tensor] = None) -> Tensor:
        num_nodes = compiled.num_nodes
        per_metapath: List[Tensor] = []
        for i in range(len(self.metapaths)):
            targets = compiled.targets[i]
            if len(targets) == 0:
                continue
            pair_mask: Optional[Tensor] = None
            if edge_mask is not None:
                hop_edges = compiled.pair_edges[i]
                pair_mask = gather(edge_mask, hop_edges[:, 0])
                for j in range(1, hop_edges.shape[1]):
                    pair_mask = pair_mask * gather(edge_mask, hop_edges[:, j])
            per_metapath.append(
                self.node_attention[i](
                    h, targets, compiled.neighbors[i], num_nodes, pair_mask
                )
            )

        if per_metapath:
            context = self.semantic(per_metapath)
        else:
            context = Tensor(np.zeros((num_nodes, self.dim), dtype=np.float32))
        # Residual combine keeps metapath-isolated nodes embedded.
        return F.elu(self.combine(concat([h, context], axis=1)))


class HAN(GNNEncoder):
    """Multi-layer HAN with type-specific input projections.

    Accepts the same construction surface as :class:`~repro.gnn.MAGNN`
    (schema, metapaths, heads, attention dim) so the two are drop-in
    interchangeable inside :class:`~repro.core.model.EDGNN`.

    Like MAGNN, semantic attention averages projected embeddings over the
    whole graph, so HAN is not disjoint-union batchable.
    """

    union_batchable = False

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        schema,
        rng: np.random.Generator,
        metapaths: Optional[Sequence[Metapath]] = None,
        num_heads: int = 2,
        attention_dim: int = 128,
        dropout: float = 0.5,
        max_instances_per_node: int = 16,
        normalize_output: bool = True,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = in_dim
        self.out_dim = hidden_dim
        self.normalize_output = normalize_output
        self.schema = schema
        self.metapaths = (
            list(metapaths) if metapaths is not None else default_metapaths(schema)
        )
        if not self.metapaths:
            raise ValueError("HAN needs at least one metapath")
        self.max_instances_per_node = max_instances_per_node
        self.type_transform = ModuleDict(
            {t: Linear(in_dim, hidden_dim, rng) for t in schema.node_types}
        )
        self.layers = ModuleList(
            HanLayer(hidden_dim, self.metapaths, num_heads, attention_dim, rng, dropout)
            for _ in range(num_layers)
        )

    def compile(self, graph: HeteroGraph) -> HanGraph:
        src, dst, _ = graph.edges()
        pair_to_edge: Dict[tuple, int] = {}
        for e, (s, d) in enumerate(zip(src.tolist(), dst.tolist())):
            pair_to_edge.setdefault((s, d), e)
            pair_to_edge.setdefault((d, s), e)

        targets: List[np.ndarray] = []
        neighbors: List[np.ndarray] = []
        pair_edges: List[np.ndarray] = []
        for mp in self.metapaths:
            inst = enumerate_instances(
                graph, mp, max_instances_per_node=self.max_instances_per_node
            )
            if inst.num_instances == 0:
                targets.append(np.empty(0, dtype=np.int64))
                neighbors.append(np.empty(0, dtype=np.int64))
                pair_edges.append(np.empty((0, mp.length - 1), dtype=np.int64))
                continue
            # HAN consumes metapath-based neighbours: instance endpoints.
            targets.append(inst.paths[:, 0].copy())
            neighbors.append(inst.paths[:, -1].copy())
            hop_ids = np.zeros((inst.num_instances, mp.length - 1), dtype=np.int64)
            for row, path in enumerate(inst.paths.tolist()):
                for j in range(len(path) - 1):
                    hop_ids[row, j] = pair_to_edge[(path[j], path[j + 1])]
            pair_edges.append(hop_ids)
        return HanGraph(
            graph.num_nodes,
            graph.num_edges,
            graph.node_types,
            targets,
            neighbors,
            pair_edges,
        )

    def mask_size(self, compiled: HanGraph) -> int:
        return compiled.num_edges

    def forward(self, compiled: HanGraph, features: Tensor, edge_mask=None) -> Tensor:
        h: Optional[Tensor] = None
        for type_name in self.schema.node_types:
            type_id = self.schema.node_type_id(type_name)
            mask = compiled.node_types == type_id
            if not mask.any():
                continue
            projected = self.type_transform[type_name](features)
            masked = projected * Tensor(mask.astype(np.float32)[:, None])
            h = masked if h is None else h + masked
        assert h is not None, "graph has no nodes"
        for layer in self.layers:
            h = layer(compiled, h, edge_mask)
        if self.normalize_output:
            h = F.l2_normalize(h, axis=1)
        return h
