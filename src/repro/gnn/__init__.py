"""GNN encoders (Section 2.1): GraphSAGE, R-GCN and MAGNN as evaluated in
the paper, plus GCN (for the NCEL baseline) and the pluggable extensions
GAT, HAN, and HetGNN ("other GNNs can be plugged into our architecture
as well", Section 1).
"""

from .base import GNNEncoder  # noqa: F401
from .gat import GAT, GatLayer  # noqa: F401
from .gcn import GCN, GcnLayer  # noqa: F401
from .graphsage import GraphSAGE, SageLayer  # noqa: F401
from .han import HAN, HanLayer, HanNodeAttention, HanSemanticAttention  # noqa: F401
from .hetgnn import HetGNN, HetGnnLayer  # noqa: F401
from .magnn import (  # noqa: F401
    MAGNN,
    IntraMetapathAggregator,
    InterMetapathAggregator,
    MagnnLayer,
    RelationalRotationEncoder,
)
from .rgcn import RGCN, RgcnLayer  # noqa: F401

__all__ = [
    "GNNEncoder",
    "GraphSAGE",
    "SageLayer",
    "RGCN",
    "RgcnLayer",
    "MAGNN",
    "MagnnLayer",
    "RelationalRotationEncoder",
    "IntraMetapathAggregator",
    "InterMetapathAggregator",
    "GCN",
    "GcnLayer",
    "GAT",
    "GatLayer",
    "HAN",
    "HanLayer",
    "HanNodeAttention",
    "HanSemanticAttention",
    "HetGNN",
    "HetGnnLayer",
]
