"""GAT encoder (Velickovic et al. [42]) — an *extension* beyond the three
variants evaluated in the paper ("other GNNs can be plugged into our
architecture as well", Section 1).  Included so the benchmark suite can
report a fourth pluggable encoder in the ablation harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Dropout, Linear, Module, ModuleList, Tensor, gather
from ..autograd import functional as F
from ..autograd import init
from ..autograd.ops import scatter_add, segment_softmax
from ..graph.hetero import HeteroGraph
from .base import GNNEncoder


@dataclass
class GatGraph:
    num_nodes: int
    src: np.ndarray
    dst: np.ndarray


class GatLayer(Module):
    """Multi-head graph attention layer (concatenating heads)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int,
        rng: np.random.Generator,
        activation: bool = True,
        dropout: float = 0.0,
    ):
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError(f"out_dim {out_dim} not divisible by heads {num_heads}")
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.out_dim = out_dim
        self.linear = Linear(in_dim, out_dim, rng, bias=False)
        self.att_src = init.xavier_uniform((num_heads, self.head_dim), rng)
        self.att_dst = init.xavier_uniform((num_heads, self.head_dim), rng)
        self.activation = activation
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, compiled: GatGraph, h: Tensor, edge_mask=None) -> Tensor:
        n = compiled.num_nodes
        transformed = self.linear(h).reshape(n, self.num_heads, self.head_dim)
        score_src = (transformed * self.att_src).sum(axis=2)  # [N, H]
        score_dst = (transformed * self.att_dst).sum(axis=2)
        edge_scores = (
            gather(score_src, compiled.src) + gather(score_dst, compiled.dst)
        ).leaky_relu(0.2)
        alpha = segment_softmax(edge_scores, compiled.dst, n)  # [E, H]
        if self.dropout is not None:
            alpha = self.dropout(alpha)
        if edge_mask is not None:
            alpha = alpha * edge_mask.reshape(-1, 1)
        messages = gather(transformed, compiled.src) * alpha.reshape(-1, self.num_heads, 1)
        pooled = scatter_add(messages, compiled.dst, n).reshape(n, self.out_dim)
        return F.elu(pooled) if self.activation else pooled


class GAT(GNNEncoder):
    """Multi-layer GAT over the bidirected view with self-loops."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        num_heads: int = 2,
        out_dim: Optional[int] = None,
        dropout: float = 0.5,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = in_dim
        self.out_dim = out_dim if out_dim is not None else hidden_dim
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [self.out_dim]
        self.layers = ModuleList(
            GatLayer(
                dims[i],
                dims[i + 1],
                num_heads,
                rng,
                activation=(i < num_layers - 1),
                dropout=dropout if i < num_layers - 1 else 0.0,
            )
            for i in range(num_layers)
        )

    def compile(self, graph: HeteroGraph) -> GatGraph:
        view = graph.to_bidirected()
        loops = np.arange(graph.num_nodes, dtype=np.int64)
        src = np.concatenate([view.src, loops])
        dst = np.concatenate([view.dst, loops])
        return GatGraph(graph.num_nodes, src, dst)

    def forward(self, compiled: GatGraph, features: Tensor, edge_mask=None) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(compiled, h, edge_mask)
        return h

    def mask_size(self, compiled: GatGraph) -> int:
        return len(compiled.src)

    def expand_edge_mask(self, compiled: GatGraph, per_edge: Tensor) -> Tensor:
        from ..autograd.ops import concat

        ones = Tensor(np.ones(compiled.num_nodes, dtype=np.float32))
        return concat([per_edge, per_edge, ones], axis=0)
