"""HetGNN encoder (Zhang et al. [52]) — a pluggable *extension* encoder.

The paper's related work describes HetGNN as the type-aware alternative
to metapath models: it "encodes the content of each node into a vector
and then adopts a node type-aware aggregation function to collect
information from the neighbors", finishing with "attention over the node
types of the neighborhood" — no metapaths required, unlike HAN/MAGNN.

Three stages per layer, following the original structure:

1. **Content encoding** — a linear projection of the node features (the
   original runs a Bi-LSTM over multi-modal content; this KB has one
   text-derived feature vector per node, so a projection is the exact
   single-modality specialisation).
2. **Same-type neighbour aggregation** — for every node type ``t``, the
   masked mean of type-``t`` neighbour messages (the original's
   Bi-LSTM-over-neighbour-sets is replaced by the order-invariant mean;
   neighbour sets here are unordered, which the mean respects and an
   LSTM would have to learn to ignore).
3. **Type attention** — per node, attention over the available
   type-aggregated vectors plus the node's own content vector:
   ``alpha ~ softmax(LeakyReLU(u^T [h_v || f_t(v)]))``, mixing them into
   the layer output.

Edge masks scale messages before the (re-normalised) mean, so the
GNN-Explainer hook works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..autograd import Dropout, Linear, Module, ModuleList, Tensor
from ..autograd import functional as F
from ..autograd import init
from ..autograd.ops import concat, gather, scatter_add, stack
from ..graph.hetero import HeteroGraph
from .base import GNNEncoder


@dataclass
class HetGnnGraph:
    """Compiled structure: bidirected edges grouped by *source* type.

    ``by_type[t]`` holds ``(src, dst, edge_ids)`` for messages flowing
    from type-``t`` nodes; ``edge_ids`` indexes the original edge list
    (both directions of one original edge share its id) for masking.
    """

    num_nodes: int
    num_edges: int
    node_types: np.ndarray
    by_type: List[Optional[tuple]]  # indexed by node type id


class HetGnnLayer(Module):
    """One HetGNN layer: per-type mean aggregation + type attention."""

    def __init__(
        self,
        dim: int,
        num_node_types: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.dim = dim
        self.num_node_types = num_node_types
        self.transform = Linear(dim, dim, rng)
        # One attention vector scoring [h_v || aggregate] pairs.
        self.attention = init.xavier_uniform((2 * dim,), rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(
        self, compiled: HetGnnGraph, h: Tensor, edge_mask: Optional[Tensor] = None
    ) -> Tensor:
        num_nodes = compiled.num_nodes
        messages = self.transform(h)
        if self.dropout is not None:
            messages = self.dropout(messages)

        # Stage 2: same-type neighbour aggregation (masked mean).
        aggregates: List[Tensor] = [h]  # slot 0 = the node's own content
        availability: List[np.ndarray] = [np.ones(num_nodes, dtype=bool)]
        for type_id in range(self.num_node_types):
            group = compiled.by_type[type_id]
            if group is None:
                continue
            src, dst, edge_ids = group
            msg = gather(messages, src)
            if edge_mask is not None:
                mask = gather(edge_mask, edge_ids).reshape(-1, 1)
                msg = msg * mask
                weight = scatter_add(mask, dst, num_nodes)
            else:
                ones = Tensor(np.ones((len(src), 1), dtype=np.float32))
                weight = scatter_add(ones, dst, num_nodes)
            pooled = scatter_add(msg, dst, num_nodes)
            mean = pooled / (weight + 1e-9)
            aggregates.append(mean)
            counts = np.zeros(num_nodes, dtype=np.int64)
            np.add.at(counts, dst, 1)
            availability.append(counts > 0)

        # Stage 3: type attention over [self] + available aggregates.
        slots = len(aggregates)
        stacked = stack(aggregates, axis=0)  # [slots, N, d]
        h_tiled = stack([h] * slots, axis=0)  # [slots, N, d]
        pair = concat([h_tiled, stacked], axis=2)  # [slots, N, 2d]
        scores = (pair * self.attention).sum(axis=2).leaky_relu(0.2)  # [slots, N]
        # Unavailable (no neighbour of that type) slots must not receive
        # attention mass: subtract a large constant before the softmax.
        avail = np.stack(availability, axis=0)  # [slots, N] bool
        penalty = np.where(avail, 0.0, -1e9).astype(np.float32)
        alpha = F.softmax((scores + Tensor(penalty)).transpose(), axis=-1)  # [N, slots]
        mixed = (stacked * alpha.transpose().reshape(slots, num_nodes, 1)).sum(axis=0)
        return F.elu(mixed)


class HetGNN(GNNEncoder):
    """Multi-layer HetGNN over the bidirected view, grouped by type."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        schema,
        rng: np.random.Generator,
        dropout: float = 0.5,
        normalize_output: bool = True,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = in_dim
        self.out_dim = hidden_dim
        self.normalize_output = normalize_output
        self.schema = schema
        self.input_projection = Linear(in_dim, hidden_dim, rng)
        self.layers = ModuleList(
            HetGnnLayer(hidden_dim, schema.num_node_types, rng, dropout)
            for _ in range(num_layers)
        )

    def compile(self, graph: HeteroGraph) -> HetGnnGraph:
        src, dst, _ = graph.edges()
        edge_ids = np.arange(graph.num_edges, dtype=np.int64)
        # Bidirect: each original edge sends messages both ways, keeping
        # its original edge id so one mask entry gates both directions.
        bi_src = np.concatenate([src, dst])
        bi_dst = np.concatenate([dst, src])
        bi_ids = np.concatenate([edge_ids, edge_ids])
        types = graph.node_types
        by_type: List[Optional[tuple]] = []
        for type_id in range(graph.schema.num_node_types):
            select = types[bi_src] == type_id
            if not select.any():
                by_type.append(None)
                continue
            by_type.append((bi_src[select], bi_dst[select], bi_ids[select]))
        return HetGnnGraph(graph.num_nodes, graph.num_edges, types, by_type)

    def mask_size(self, compiled: HetGnnGraph) -> int:
        return compiled.num_edges

    def forward(self, compiled: HetGnnGraph, features: Tensor, edge_mask=None) -> Tensor:
        h = F.elu(self.input_projection(features))
        for layer in self.layers:
            h = layer(compiled, h, edge_mask)
        if self.normalize_output:
            h = F.l2_normalize(h, axis=1)
        return h
