"""MAGNN encoder (Fu et al. [12]; paper Eqs. 3-4).

Metapath Aggregated GNN for heterogeneous graphs, with the three stages of
the original model:

1. *Node content transformation* — a type-specific linear projection into
   the shared hidden space.
2. *Intra-metapath aggregation* (Eq. 3) — every metapath instance
   ``P(v, u)`` is encoded by a **relational rotation encoder** (RotatE-
   style complex rotation along the hops), then instances are fused per
   target node with multi-head graph attention:
   ``e^P_vu = LeakyReLU(a_P^T [h_v || h_P(u,v)])``, softmax over the
   metapath neighbourhood, weighted sum, activation.
3. *Inter-metapath aggregation* (Eq. 4) — per target node type, metapath
   summaries ``s_P = mean_v tanh(M h^P_v + b)`` are scored by an attention
   vector ``q_A``; the per-type softmax ``beta_P`` mixes the metapath-
   specific embeddings into the final node embedding.

Nodes whose type anchors no metapath (or with no instances) fall back to
their transformed content via the residual combine, so every node of the
query graph and the KB receives an embedding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Dropout, Linear, Module, ModuleDict, ModuleList, Tensor
from ..autograd import functional as F
from ..autograd import init
from ..autograd.ops import concat, gather, scatter_add, segment_softmax, stack
from ..graph.hetero import HeteroGraph
from ..graph.metapath import Metapath, MetapathInstances, default_metapaths, enumerate_instances
from .base import GNNEncoder


@dataclass
class MagnnGraph:
    """Compiled structure: node types + instances for every metapath.

    ``instance_edges[i]`` maps each instance of metapath ``i`` to the
    original-edge ids it traverses (``[n_instances, path_len - 1]``),
    enabling per-edge masking: an instance's mask is the product of its
    hop-edge masks.
    """

    num_nodes: int
    num_edges: int
    node_types: np.ndarray
    instances: List[MetapathInstances]
    instance_edges: List[np.ndarray]


def _rotate_pairs(x: Tensor, cos_phi: Tensor, sin_phi: Tensor) -> Tensor:
    """Complex rotation of feature pairs: ``x`` is ``[n, d]`` with ``d``
    even, interpreted as ``d/2`` complex numbers; ``cos_phi``/``sin_phi``
    are ``[d/2]`` rotation components (unit modulus by construction)."""
    n, d = x.shape
    pairs = x.reshape(n, d // 2, 2)
    real = pairs[:, :, 0]
    imag = pairs[:, :, 1]
    rot_real = real * cos_phi - imag * sin_phi
    rot_imag = real * sin_phi + imag * cos_phi
    return stack([rot_real, rot_imag], axis=2).reshape(n, d)


class RelationalRotationEncoder(Module):
    """Encodes a metapath instance's node features into one vector.

    Hop ``j`` applies the cumulative rotation ``r_1 ... r_j`` (learned
    angles, one vector per hop) to that node's features; the instance
    vector is the mean of the rotated hop vectors — the target node (hop
    0) enters unrotated.
    """

    def __init__(self, dim: int, path_len: int, rng: np.random.Generator):
        super().__init__()
        if dim % 2 != 0:
            raise ValueError("rotation encoder needs an even hidden dim")
        self.dim = dim
        self.path_len = path_len
        self.angles = [
            Tensor(
                (rng.uniform(-np.pi, np.pi, size=dim // 2)).astype(np.float32),
                requires_grad=True,
            )
            for _ in range(path_len - 1)
        ]

    def forward(self, hop_features: Sequence[Tensor]) -> Tensor:
        if len(hop_features) != self.path_len:
            raise ValueError(
                f"expected {self.path_len} hop feature blocks, got {len(hop_features)}"
            )
        total = hop_features[0]
        cumulative: Optional[Tensor] = None
        for j in range(1, self.path_len):
            phi = self.angles[j - 1]
            cumulative = phi if cumulative is None else cumulative + phi
            rotated = _rotate_pairs(hop_features[j], cumulative.cos(), cumulative.sin())
            total = total + rotated
        return total / float(self.path_len)


class IntraMetapathAggregator(Module):
    """Eq. 3: multi-head attention over a node's metapath instances."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.attention = init.xavier_uniform((num_heads, 2 * self.head_dim), rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(
        self,
        h: Tensor,
        instance_vectors: Tensor,
        targets: np.ndarray,
        num_nodes: int,
    ) -> Tensor:
        n_inst = instance_vectors.shape[0]
        h_target = gather(h, targets)
        tgt_heads = h_target.reshape(n_inst, self.num_heads, self.head_dim)
        inst_heads = instance_vectors.reshape(n_inst, self.num_heads, self.head_dim)
        both = concat([tgt_heads, inst_heads], axis=2)  # [I, H, 2*dh]
        scores = (both * self.attention).sum(axis=2).leaky_relu(0.01)  # [I, H]
        alpha = segment_softmax(scores, targets, num_nodes)
        if self.dropout is not None:
            alpha = self.dropout(alpha)
        weighted = inst_heads * alpha.reshape(n_inst, self.num_heads, 1)
        pooled = scatter_add(weighted, targets, num_nodes)  # [N, H, dh]
        return F.elu(pooled.reshape(num_nodes, self.dim))


class InterMetapathAggregator(Module):
    """Eq. 4: attention over metapath-specific embeddings per node type."""

    def __init__(self, dim: int, attention_dim: int, rng: np.random.Generator):
        super().__init__()
        self.summary = Linear(dim, attention_dim, rng)
        self.query = init.xavier_uniform((attention_dim,), rng)

    def forward(
        self,
        per_metapath: List[Tensor],
        type_mask: np.ndarray,
    ) -> Tensor:
        """Mix ``per_metapath`` embeddings (each ``[N, d]``) for the nodes
        selected by ``type_mask`` (boolean ``[N]``)."""
        mask = Tensor(type_mask.astype(np.float32)[:, None])
        count = max(float(type_mask.sum()), 1.0)
        scores: List[Tensor] = []
        for h_p in per_metapath:
            summary = F.tanh(self.summary(h_p))  # [N, d_s]
            pooled = (summary * mask).sum(axis=0) / count  # s_P
            scores.append((pooled * self.query).sum())
        beta = F.softmax(stack(scores, axis=0).reshape(1, -1), axis=-1).reshape(-1)
        mixed = per_metapath[0] * beta[0]
        for i in range(1, len(per_metapath)):
            mixed = mixed + per_metapath[i] * beta[i]
        return mixed


class MagnnLayer(Module):
    """One MAGNN layer over a fixed metapath set."""

    def __init__(
        self,
        dim: int,
        metapaths: Sequence[Metapath],
        num_heads: int,
        attention_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.dim = dim
        self.metapaths = list(metapaths)
        self.rotators = ModuleList(
            RelationalRotationEncoder(dim, mp.length, rng) for mp in self.metapaths
        )
        self.intra = ModuleList(
            IntraMetapathAggregator(dim, num_heads, rng, dropout) for _ in self.metapaths
        )
        # One inter-metapath attention per target node type that anchors
        # at least one metapath.
        target_types = sorted({mp.target_type for mp in self.metapaths})
        self.inter = ModuleDict(
            {t: InterMetapathAggregator(dim, attention_dim, rng) for t in target_types}
        )
        self.combine = Linear(2 * dim, dim, rng)

    def forward(self, compiled: MagnnGraph, h: Tensor, schema, edge_mask=None) -> Tensor:
        num_nodes = compiled.num_nodes
        # Intra-metapath aggregation for every metapath with instances.
        per_metapath: Dict[int, Tensor] = {}
        for i, (mp, inst) in enumerate(zip(self.metapaths, compiled.instances)):
            if inst.num_instances == 0:
                continue
            hops = [gather(h, inst.paths[:, j]) for j in range(mp.length)]
            vectors = self.rotators[i](hops)
            if edge_mask is not None:
                hop_edges = compiled.instance_edges[i]
                inst_mask = gather(edge_mask, hop_edges[:, 0])
                for j in range(1, hop_edges.shape[1]):
                    inst_mask = inst_mask * gather(edge_mask, hop_edges[:, j])
                vectors = vectors * inst_mask.reshape(-1, 1)
            per_metapath[i] = self.intra[i](h, vectors, inst.targets, num_nodes)

        # Inter-metapath aggregation per target type, assembled over all nodes.
        meta_context: Optional[Tensor] = None
        for type_name in self.inter.keys():
            type_id = schema.node_type_id(type_name)
            type_mask = compiled.node_types == type_id
            if not type_mask.any():
                continue
            members = [
                per_metapath[i]
                for i, mp in enumerate(self.metapaths)
                if mp.target_type == type_name and i in per_metapath
            ]
            if not members:
                continue
            mixed = self.inter[type_name](members, type_mask)
            masked = mixed * Tensor(type_mask.astype(np.float32)[:, None])
            meta_context = masked if meta_context is None else meta_context + masked

        if meta_context is None:
            meta_context = Tensor(np.zeros((num_nodes, self.dim), dtype=np.float32))
        # Residual combine keeps nodes without metapath context embedded.
        return F.elu(self.combine(concat([h, meta_context], axis=1)))


class MAGNN(GNNEncoder):
    """Multi-layer MAGNN with type-specific input projections.

    Inter-metapath attention (Eq. 4) pools summaries over *all* nodes of
    a type, so embeddings depend on the whole graph — a disjoint union
    mixes graphs and is not equivalent to per-graph forwards.

    ``metapaths`` defaults to the schema-derived set of
    :func:`~repro.graph.metapath.default_metapaths`.
    """

    union_batchable = False

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        schema,
        rng: np.random.Generator,
        metapaths: Optional[Sequence[Metapath]] = None,
        num_heads: int = 2,
        attention_dim: int = 128,
        dropout: float = 0.5,
        max_instances_per_node: int = 16,
        normalize_output: bool = True,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = in_dim
        self.out_dim = hidden_dim
        self.normalize_output = normalize_output
        self.schema = schema
        self.metapaths = (
            list(metapaths) if metapaths is not None else default_metapaths(schema)
        )
        if not self.metapaths:
            raise ValueError("MAGNN needs at least one metapath")
        self.max_instances_per_node = max_instances_per_node
        self.type_transform = ModuleDict(
            {t: Linear(in_dim, hidden_dim, rng) for t in schema.node_types}
        )
        self.layers = ModuleList(
            MagnnLayer(hidden_dim, self.metapaths, num_heads, attention_dim, rng, dropout)
            for _ in range(num_layers)
        )

    def compile(self, graph: HeteroGraph) -> MagnnGraph:
        instances = [
            enumerate_instances(graph, mp, max_instances_per_node=self.max_instances_per_node)
            for mp in self.metapaths
        ]
        # Map undirected node pairs back to original edge ids for masking.
        src, dst, _ = graph.edges()
        pair_to_edge: Dict[tuple, int] = {}
        for e, (s, d) in enumerate(zip(src.tolist(), dst.tolist())):
            pair_to_edge.setdefault((s, d), e)
            pair_to_edge.setdefault((d, s), e)
        instance_edges: List[np.ndarray] = []
        for inst in instances:
            if inst.num_instances == 0:
                instance_edges.append(np.empty((0, inst.metapath.length - 1), dtype=np.int64))
                continue
            hop_ids = np.zeros((inst.num_instances, inst.metapath.length - 1), dtype=np.int64)
            for row, path in enumerate(inst.paths.tolist()):
                for j in range(len(path) - 1):
                    hop_ids[row, j] = pair_to_edge[(path[j], path[j + 1])]
            instance_edges.append(hop_ids)
        return MagnnGraph(
            graph.num_nodes, graph.num_edges, graph.node_types, instances, instance_edges
        )

    def mask_size(self, compiled: MagnnGraph) -> int:
        return compiled.num_edges

    def forward(self, compiled: MagnnGraph, features: Tensor, edge_mask=None) -> Tensor:
        # Type-specific content transformation (stage 1).
        h: Optional[Tensor] = None
        for type_name in self.schema.node_types:
            type_id = self.schema.node_type_id(type_name)
            mask = compiled.node_types == type_id
            if not mask.any():
                continue
            projected = self.type_transform[type_name](features)
            masked = projected * Tensor(mask.astype(np.float32)[:, None])
            h = masked if h is None else h + masked
        assert h is not None, "graph has no nodes"
        for layer in self.layers:
            h = layer(compiled, h, self.schema, edge_mask)
        if self.normalize_output:
            h = F.l2_normalize(h, axis=1)
        return h
