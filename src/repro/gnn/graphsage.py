"""GraphSAGE encoder (Hamilton et al. [16]; paper Eq. 1).

Each layer aggregates the neighbourhood (mean aggregator over the
*undirected* edge view — GraphSAGE is relation-blind, which is exactly the
property the paper's ablation exploits: query-graph augmentation adds
relation labels that this encoder cannot see) and combines it with the
node's own state::

    h_N(v) = AGGREGATE({h_u : u in N(v)})
    h_v    = sigma(W . [h_v || h_N(v)])

Hidden states are L2-normalised per layer as in the original paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Dropout, Linear, Module, ModuleList, Tensor, concat, gather
from ..autograd import functional as F
from ..autograd.ops import scatter_add
from ..graph.hetero import HeteroGraph
from .base import GNNEncoder


@dataclass
class SageGraph:
    """Compiled structure: undirected edge endpoints + in-degree."""

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray
    degree: np.ndarray  # incoming degree per node under the undirected view


class SageLayer(Module):
    """One GraphSAGE layer with mean aggregation (Eq. 1)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.linear = Linear(2 * in_dim, out_dim, rng)
        self.activation = activation
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, compiled: SageGraph, h: Tensor, edge_mask=None) -> Tensor:
        messages = gather(h, compiled.src)
        if edge_mask is not None:
            messages = messages * edge_mask.reshape(-1, 1)
        summed = scatter_add(messages, compiled.dst, compiled.num_nodes)
        denom = Tensor(np.maximum(compiled.degree, 1.0)[:, None].astype(np.float32))
        neighborhood = summed / denom
        combined = self.linear(concat([h, neighborhood], axis=1))
        if self.activation:
            combined = F.relu(combined)
        if self.dropout is not None:
            combined = self.dropout(combined)
        return F.l2_normalize(combined, axis=1)


class GraphSAGE(GNNEncoder):
    """Multi-layer GraphSAGE encoder."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        out_dim: Optional[int] = None,
        dropout: float = 0.5,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = in_dim
        self.out_dim = out_dim if out_dim is not None else hidden_dim
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [self.out_dim]
        self.layers = ModuleList(
            SageLayer(
                dims[i],
                dims[i + 1],
                rng,
                activation=(i < num_layers - 1),
                dropout=dropout if i < num_layers - 1 else 0.0,
            )
            for i in range(num_layers)
        )

    def compile(self, graph: HeteroGraph) -> SageGraph:
        view = graph.to_bidirected()
        degree = np.bincount(view.dst, minlength=graph.num_nodes).astype(np.float32)
        return SageGraph(graph.num_nodes, view.src, view.dst, degree)

    def forward(self, compiled: SageGraph, features: Tensor, edge_mask=None) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(compiled, h, edge_mask)
        return h

    def mask_size(self, compiled: SageGraph) -> int:
        return len(compiled.src)

    def expand_edge_mask(self, compiled: SageGraph, per_edge: Tensor) -> Tensor:
        # Bidirected view lists forward edges then their inverses.
        from ..autograd.ops import concat

        return concat([per_edge, per_edge], axis=0)
