"""Plain GCN encoder (Kipf & Welling [20]).

Used by the NCEL baseline (Section 4.2): NCEL "applies graph convolutional
network to integrate both local contextual features and global coherence
information", but — as the paper notes — "does not take edge types into
consideration".  This encoder therefore works on the untyped, symmetric-
normalised adjacency with self-loops::

    H' = sigma(D^-1/2 (A + I) D^-1/2 H W)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Dropout, Linear, Module, ModuleList, Tensor, gather
from ..autograd import functional as F
from ..autograd.ops import scatter_add
from ..graph.hetero import HeteroGraph
from .base import GNNEncoder


@dataclass
class GcnGraph:
    num_nodes: int
    src: np.ndarray
    dst: np.ndarray
    edge_weight: np.ndarray  # symmetric normalisation coefficients


class GcnLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: bool = True,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng)
        self.activation = activation
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, compiled: GcnGraph, h: Tensor, edge_mask=None) -> Tensor:
        transformed = self.linear(h)
        messages = gather(transformed, compiled.src) * Tensor(compiled.edge_weight[:, None])
        if edge_mask is not None:
            messages = messages * edge_mask.reshape(-1, 1)
        out = scatter_add(messages, compiled.dst, compiled.num_nodes)
        if self.activation:
            out = F.relu(out)
        if self.dropout is not None:
            out = self.dropout(out)
        return out


class GCN(GNNEncoder):
    """Multi-layer untyped GCN over the bidirected view with self-loops."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        out_dim: Optional[int] = None,
        dropout: float = 0.5,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = in_dim
        self.out_dim = out_dim if out_dim is not None else hidden_dim
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [self.out_dim]
        self.layers = ModuleList(
            GcnLayer(
                dims[i],
                dims[i + 1],
                rng,
                activation=(i < num_layers - 1),
                dropout=dropout if i < num_layers - 1 else 0.0,
            )
            for i in range(num_layers)
        )

    def compile(self, graph: HeteroGraph) -> GcnGraph:
        view = graph.to_bidirected()
        loops = np.arange(graph.num_nodes, dtype=np.int64)
        src = np.concatenate([view.src, loops])
        dst = np.concatenate([view.dst, loops])
        degree = np.bincount(dst, minlength=graph.num_nodes).astype(np.float32)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1.0))
        weight = (inv_sqrt[src] * inv_sqrt[dst]).astype(np.float32)
        return GcnGraph(graph.num_nodes, src, dst, weight)

    def forward(self, compiled: GcnGraph, features: Tensor, edge_mask=None) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(compiled, h, edge_mask)
        return h

    def mask_size(self, compiled: GcnGraph) -> int:
        return len(compiled.src)

    def expand_edge_mask(self, compiled: GcnGraph, per_edge: Tensor) -> Tensor:
        # Layout: forward edges, inverse edges, then self-loops (unmasked).
        from ..autograd.ops import concat

        num_loops = compiled.num_nodes
        ones = Tensor(np.ones(num_loops, dtype=np.float32))
        return concat([per_edge, per_edge, ones], axis=0)
