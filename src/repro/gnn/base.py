"""Common interface of the pluggable GNN encoders (Section 2.1).

Every encoder separates *compilation* (graph-dependent, parameter-free
preprocessing: edge arrays, per-relation slices, metapath instances) from
the *forward pass* (differentiable message passing over the compiled
structure).  ``G_ref`` is compiled once per training run; the tiny query
graphs are compiled per batch.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..autograd import Module, Tensor
from ..graph.hetero import HeteroGraph


class GNNEncoder(Module):
    """Base class: ``compile`` a graph, then ``forward`` features over it.

    Subclasses must set ``in_dim`` / ``out_dim`` and implement
    :meth:`compile` and :meth:`forward`.
    """

    in_dim: int
    out_dim: int

    #: True when embedding a disjoint union of graphs yields the same
    #: per-node embeddings as embedding each graph alone.  Every purely
    #: local message-passing encoder qualifies; encoders with graph-global
    #: pooling (MAGNN/HAN semantic attention averages summaries over all
    #: nodes of a type) must override this with False so the serving
    #: layer's micro-batcher falls back to per-graph forwards.
    union_batchable: bool = True

    def compile(self, graph: HeteroGraph) -> Any:
        """Parameter-free preprocessing of a graph into the structure the
        forward pass consumes.  Must not capture Tensors."""
        raise NotImplementedError

    def forward(self, compiled: Any, features: Tensor, edge_mask: Optional[Tensor] = None) -> Tensor:
        """Embed every node: ``[num_nodes, out_dim]``.

        ``edge_mask`` (optional, differentiable) scales messages per
        compiled edge — the hook the GNN-Explainer optimises (Fig. 4a).
        Its length/layout is encoder specific; see :meth:`mask_size` and
        each encoder's docs.
        """
        raise NotImplementedError

    def mask_size(self, compiled: Any) -> int:
        """Length of the ``edge_mask`` vector this encoder expects for a
        compiled graph (0 when masking is not supported)."""
        return 0

    def expand_edge_mask(self, compiled: Any, per_edge: Tensor) -> Tensor:
        """Expand a per-original-edge mask ``[num_edges]`` into the
        encoder's compiled mask layout (default: identity)."""
        return per_edge

    def encode(self, graph: HeteroGraph, features: Optional[np.ndarray] = None) -> Tensor:
        """Convenience one-shot: compile + forward.

        ``features`` defaults to the graph's stored features; an encoder
        used in a training loop should call ``compile`` once instead.
        """
        if features is None:
            if graph.features is None:
                raise ValueError("graph has no features; pass them explicitly")
            features = graph.features
        if features.shape[1] != self.in_dim:
            raise ValueError(
                f"feature dim {features.shape[1]} != encoder in_dim {self.in_dim}"
            )
        return self.forward(self.compile(graph), Tensor(np.asarray(features, dtype=np.float32)))


def check_feature_dim(features: Tensor, expected: int, who: str) -> None:
    if features.shape[-1] != expected:
        raise ValueError(f"{who}: feature dim {features.shape[-1]} != expected {expected}")
