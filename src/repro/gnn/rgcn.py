"""R-GCN encoder (Schlichtkrull et al. [37]; paper Eq. 2).

Relation-aware convolution: each relation type gets its own weight matrix
and messages are normalised per (node, relation)::

    h_v = sigma(W_0 h_v + sum_r sum_{u in N_r(v)} (1 / c_{v,r}) W_r h_u)

The compiled view expands the KB's relations with inverse directions
(forward ids stay, inverse = id + R) so context flows both ways while the
weight bank still distinguishes direction — the standard R-GCN treatment
of directed KBs.  Basis decomposition is available to keep the parameter
count controlled on relation-rich schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..autograd import Dropout, Module, ModuleList, Tensor, gather, stack
from ..autograd import functional as F
from ..autograd import init
from ..autograd.ops import scatter_add
from ..graph.hetero import HeteroGraph
from .base import GNNEncoder


@dataclass
class RelEdges:
    """Edges of one relation: endpoints plus 1/c_{v,r} per edge.

    ``view_index`` holds each edge's position in the bidirected view's
    global ordering, so a global edge mask can be sliced per relation.
    """

    relation: int
    src: np.ndarray
    dst: np.ndarray
    inv_norm: np.ndarray  # [n_edges] = 1 / |N_r(dst)|
    view_index: np.ndarray


@dataclass
class RgcnGraph:
    num_nodes: int
    num_relations: int
    per_relation: List[RelEdges]


class RgcnLayer(Module):
    """One relational graph convolution layer (Eq. 2)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        rng: np.random.Generator,
        num_bases: Optional[int] = None,
        activation: bool = True,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_relations = num_relations
        self.num_bases = num_bases
        self.self_weight = init.xavier_uniform((in_dim, out_dim), rng)
        self.bias = init.zeros_init((out_dim,))
        if num_bases is None or num_bases >= num_relations:
            self.num_bases = None
            self.rel_weights = [
                init.xavier_uniform((in_dim, out_dim), rng) for _ in range(num_relations)
            ]
        else:
            self.bases = [
                init.xavier_uniform((in_dim, out_dim), rng) for _ in range(num_bases)
            ]
            self.coefficients = init.xavier_uniform((num_relations, num_bases), rng)
        self.activation = activation
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def _weight_for(self, relation: int) -> Tensor:
        if self.num_bases is None:
            return self.rel_weights[relation]
        mixed = stack(self.bases, axis=0)  # [B, in, out]
        coeff = self.coefficients[relation].reshape(-1, 1, 1)  # [B,1,1]
        return (mixed * coeff).sum(axis=0)

    def forward(self, compiled: RgcnGraph, h: Tensor, edge_mask=None) -> Tensor:
        out = h @ self.self_weight
        for rel in compiled.per_relation:
            if len(rel.src) == 0:
                continue
            messages = gather(h, rel.src) @ self._weight_for(rel.relation)
            messages = messages * Tensor(rel.inv_norm[:, None])
            if edge_mask is not None:
                messages = messages * gather(edge_mask, rel.view_index).reshape(-1, 1)
            out = out + scatter_add(messages, rel.dst, compiled.num_nodes)
        out = out + self.bias
        if self.activation:
            out = F.relu(out)
        if self.dropout is not None:
            out = self.dropout(out)
        return out


class RGCN(GNNEncoder):
    """Multi-layer R-GCN encoder over the bidirected relation vocabulary."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        num_relations: int,
        rng: np.random.Generator,
        out_dim: Optional[int] = None,
        num_bases: Optional[int] = None,
        dropout: float = 0.5,
        normalize_output: bool = False,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = in_dim
        self.out_dim = out_dim if out_dim is not None else hidden_dim
        self.normalize_output = normalize_output
        # Forward + inverse relations (graph.to_bidirected doubles ids).
        self.expanded_relations = 2 * num_relations
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [self.out_dim]
        self.layers = ModuleList(
            RgcnLayer(
                dims[i],
                dims[i + 1],
                self.expanded_relations,
                rng,
                num_bases=num_bases,
                activation=(i < num_layers - 1),
                dropout=dropout if i < num_layers - 1 else 0.0,
            )
            for i in range(num_layers)
        )

    def compile(self, graph: HeteroGraph) -> RgcnGraph:
        if 2 * graph.schema.num_relations != self.expanded_relations:
            raise ValueError(
                f"encoder built for {self.expanded_relations // 2} relations, "
                f"graph has {graph.schema.num_relations}"
            )
        view = graph.to_bidirected()
        per_relation: List[RelEdges] = []
        for r in range(view.num_relations):
            mask = view.etypes == r
            src, dst = view.src[mask], view.dst[mask]
            view_index = np.nonzero(mask)[0]
            if len(src):
                counts = np.bincount(dst, minlength=graph.num_nodes).astype(np.float32)
                inv_norm = (1.0 / counts[dst]).astype(np.float32)
            else:
                inv_norm = np.zeros(0, dtype=np.float32)
            per_relation.append(RelEdges(r, src, dst, inv_norm, view_index))
        return RgcnGraph(graph.num_nodes, view.num_relations, per_relation)

    def forward(self, compiled: RgcnGraph, features: Tensor, edge_mask=None) -> Tensor:
        h = features
        for layer in self.layers:
            h = layer(compiled, h, edge_mask)
        if self.normalize_output:
            h = F.l2_normalize(h, axis=1)
        return h

    def mask_size(self, compiled: RgcnGraph) -> int:
        return int(sum(len(rel.src) for rel in compiled.per_relation))

    def expand_edge_mask(self, compiled: RgcnGraph, per_edge: Tensor) -> Tensor:
        # The bidirected view lists forward edges then their inverses, so
        # the global layout is [mask, mask].
        from ..autograd.ops import concat

        return concat([per_edge, per_edge], axis=0)
