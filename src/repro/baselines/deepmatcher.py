"""DeepMatcher baseline (Mudgal et al. [30]) — the *attention* variant.

A supervised textual entity-matching model: the two sides of a pair (the
ambiguous mention and the candidate entity name) are encoded as token
sequences, summarised by a GRU-with-attention encoder, and compared
through the standard interaction vector ``[u, v, |u - v|, u * v]`` fed to
an MLP classifier.

As in the paper's setup, DeepMatcher never sees graph structure — only
the two text attributes — which is exactly why it cannot separate
acronym collisions ("ARF" matches both expansions equally well).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import MLP, SequenceEncoder, Tensor, concat
from ..graph.hetero import HeteroGraph
from ..text.embedder import HashingNgramEmbedder
from .base import PairBaseline, PairExample, TokenMatrixizer


class DeepMatcher(PairBaseline):
    """Attention-based sequence matcher over (mention, entity) pairs."""

    name = "DeepMatcher"

    def __init__(
        self,
        kb: HeteroGraph,
        token_dim: int = 64,
        hidden_dim: int = 64,
        max_tokens: int = 8,
        **kwargs,
    ):
        super().__init__(kb, **kwargs)
        rng = np.random.default_rng(self.seed)
        self.tokens = TokenMatrixizer(HashingNgramEmbedder(dim=token_dim), max_tokens)
        self.encoder = SequenceEncoder(token_dim, hidden_dim, rng)
        self.classifier = MLP(4 * hidden_dim, [hidden_dim], 1, rng)

    def score_pairs(self, pairs: Sequence[PairExample]) -> Tensor:
        left = Tensor(self.tokens.encode_batch(self.mention_surfaces(pairs)))
        right = Tensor(self.tokens.encode_batch(self.entity_names(pairs)))
        u = self.encoder(left)
        v = self.encoder(right)
        interaction = concat([u, v, (u - v).abs(), u * v], axis=1)
        return self.classifier(interaction).reshape(-1)
