"""NCEL baseline (Cao et al. [3]).

Neural Collective Entity Linking builds a small graph over the candidate
entity and the entities of the surrounding mentions, then applies a plain
GCN so local context and global coherence mix.  Per the paper's
characterisation (Section 4.3) it "only considers the immediate
neighbours of an entity mention and does not take edge types into
consideration" — so the subgraph here is untyped and 1-hop.

For each (snippet, candidate) pair the subgraph contains the candidate
plus the KB anchors of the snippet's context mentions, wired with the
untyped KB edges among them; node features combine the entity-name
embedding with local lexical-similarity features against the mention.
All pair subgraphs of a batch are processed as one disjoint union.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..autograd import MLP, Linear, Tensor, gather
from ..autograd import functional as F
from ..autograd.ops import scatter_add
from ..graph.hetero import HeteroGraph
from ..graph.index import InvertedIndex
from ..text.embedder import HashingNgramEmbedder
from .base import PairBaseline, PairExample


@dataclass
class PairGraph:
    """One pair's candidate subgraph (local node ids; 0 = candidate)."""

    features: np.ndarray  # [n, feat_dim]
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray  # symmetric normalisation


class NCEL(PairBaseline):
    """Candidate-subgraph GCN scorer."""

    name = "NCEL"

    def __init__(
        self,
        kb: HeteroGraph,
        token_dim: int = 64,
        hidden_dim: int = 64,
        max_context: int = 6,
        **kwargs,
    ):
        super().__init__(kb, **kwargs)
        rng = np.random.default_rng(self.seed)
        self.embedder = HashingNgramEmbedder(dim=token_dim)
        self.max_context = max_context
        self.index = InvertedIndex(kb)
        in_dim = token_dim + 2  # name embedding + lexical sim + candidate flag
        self.gcn1 = Linear(in_dim, hidden_dim, rng)
        self.gcn2 = Linear(hidden_dim, hidden_dim, rng)
        self.head = MLP(hidden_dim, [hidden_dim], 1, rng)
        self._graph_cache: Dict[Tuple[int, int], PairGraph] = {}
        self._anchor_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def _anchors(self, pair: PairExample) -> List[int]:
        key = id(pair.snippet)
        if key not in self._anchor_cache:
            anchors: List[int] = []
            for surface in self.context_surfaces(pair.snippet):
                candidates = self.index.lookup(surface)
                if candidates:
                    anchors.append(candidates[0])
                if len(anchors) >= self.max_context:
                    break
            self._anchor_cache[key] = anchors
        return self._anchor_cache[key]

    def _pair_graph(self, pair: PairExample) -> PairGraph:
        key = (id(pair.snippet), pair.entity)
        if key in self._graph_cache:
            return self._graph_cache[key]
        nodes = [pair.entity] + [a for a in self._anchors(pair) if a != pair.entity]
        n = len(nodes)
        mention = pair.snippet.ambiguous_mention.mention
        mention_vec = self.embedder.embed(mention)
        names = [self.kb.node_name(v) for v in nodes]
        name_vecs = self.embedder.embed_batch(names)
        lexical = name_vecs @ mention_vec
        flags = np.zeros(n, dtype=np.float32)
        flags[0] = 1.0
        feats = np.concatenate(
            [name_vecs, lexical[:, None], flags[:, None]], axis=1
        ).astype(np.float32)

        # Cao et al. connect the candidates of neighbouring mentions
        # unconditionally and let the GCN propagate coherence through the
        # node *features* — the graph is a scaffold, not a KB-adjacency
        # oracle.  Candidate (node 0) links to every context anchor, and
        # consecutive anchors link to each other (mention adjacency).
        src: List[int] = []
        dst: List[int] = []
        for i in range(n):
            src.append(i)
            dst.append(i)  # self loop
        for j in range(1, n):
            src += [0, j]
            dst += [j, 0]
        for j in range(1, n - 1):
            src += [j, j + 1]
            dst += [j + 1, j]
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        degree = np.bincount(dst_arr, minlength=n).astype(np.float32)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1.0))
        weight = (inv_sqrt[src_arr] * inv_sqrt[dst_arr]).astype(np.float32)
        graph = PairGraph(feats, src_arr, dst_arr, weight)
        self._graph_cache[key] = graph
        return graph

    # ------------------------------------------------------------------
    def score_pairs(self, pairs: Sequence[PairExample]) -> Tensor:
        graphs = [self._pair_graph(p) for p in pairs]
        offsets = np.cumsum([0] + [g.features.shape[0] for g in graphs])
        total = int(offsets[-1])
        feats = np.vstack([g.features for g in graphs])
        src = np.concatenate([g.src + off for g, off in zip(graphs, offsets[:-1])])
        dst = np.concatenate([g.dst + off for g, off in zip(graphs, offsets[:-1])])
        weight = np.concatenate([g.weight for g in graphs])
        candidate_rows = offsets[:-1]  # node 0 of each pair graph

        h = Tensor(feats)
        w = Tensor(weight[:, None])
        h = F.relu(scatter_add(gather(self.gcn1(h), src) * w, dst, total))
        h = F.relu(scatter_add(gather(self.gcn2(h), src) * w, dst, total))
        return self.head(gather(h, candidate_rows)).reshape(-1)
