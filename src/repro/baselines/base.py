"""Shared scaffolding for the baseline systems of Section 4.2.

All three baselines (DeepMatcher, NormCo, NCEL) are *pair classifiers*:
given (snippet with an ambiguous mention, candidate KB entity) they emit a
matching logit.  They train on the same snippets as ED-GNN and are
evaluated on the *same* evaluation pairs (positive + semantic hard
negatives, seeded identically — the Section 4.1 protocol), so Table 3's
columns are directly comparable.

Information restrictions follow the paper's characterisation:

* DeepMatcher and NormCo see **text only** (mention, context surfaces,
  entity names) — never the KB graph;
* NCEL additionally sees the **untyped** 1-hop structure among candidate
  and context entities, but no edge types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Adam, Module, Tensor, clip_grad_norm, no_grad
from ..autograd import functional as F
from ..core.negative_sampling import (
    EvaluationProtocol,
    SemanticNegativeSampler,
    UniformNegativeSampler,
    evaluation_features,
)
from ..eval.metrics import PRF, classify_logits, precision_recall_f1
from ..graph.hetero import HeteroGraph
from ..text.corpus import Snippet, parse_cui
from ..text.embedder import HashingNgramEmbedder
from ..text.tokenize import tokenize


@dataclass
class PairExample:
    """One (snippet, candidate entity) classification example."""

    snippet: Snippet
    entity: int
    label: int


@dataclass
class BaselineResult:
    test: PRF
    best_val: PRF
    best_epoch: int
    history: List[Tuple[int, float, float]] = field(default_factory=list)  # epoch, loss, val F1


def gold_entity(snippet: Snippet) -> int:
    return parse_cui(snippet.ambiguous_mention.link_id)


def build_eval_pairs(
    kb: HeteroGraph,
    snippets: Sequence[Snippet],
    k: int,
    seed: int,
    protocol: Optional[EvaluationProtocol] = None,
) -> List[PairExample]:
    """The Section 4.1 evaluation pairs: each positive plus ``k`` hard
    negatives from the shared protocol.  Seeded identically across
    systems so every method classifies the same pairs."""
    protocol = protocol or EvaluationProtocol(kb, k, seed)
    pairs: List[PairExample] = []
    for snippet in snippets:
        gold = gold_entity(snippet)
        pairs.append(PairExample(snippet, gold, 1))
        for neg in protocol.negatives(gold):
            pairs.append(PairExample(snippet, int(neg), 0))
    return pairs


def build_train_pairs(
    kb: HeteroGraph,
    snippets: Sequence[Snippet],
    k: int,
    rng: np.random.Generator,
    hard_sampler: Optional[SemanticNegativeSampler] = None,
    hard_fraction: float = 0.5,
) -> List[PairExample]:
    """Training pairs: uniform negatives, optionally mixed with semantic
    hard negatives (the baselines' papers train on the same pair
    distribution they are evaluated on)."""
    uniform = UniformNegativeSampler(kb, rng)
    pairs: List[PairExample] = []
    for snippet in snippets:
        gold = gold_entity(snippet)
        pairs.append(PairExample(snippet, gold, 1))
        n_hard = int(round(k * hard_fraction)) if hard_sampler is not None else 0
        negatives: List[int] = []
        if n_hard:
            negatives.extend(int(x) for x in hard_sampler.sample(gold, n_hard))
        if k - len(negatives) > 0:
            negatives.extend(int(x) for x in uniform.sample(gold, k - len(negatives)))
        for neg in negatives:
            pairs.append(PairExample(snippet, neg, 0))
    return pairs


class TokenMatrixizer:
    """Fixed-length token feature matrices for text models.

    Each string becomes ``[max_tokens, dim]``: per-token hashing-embedder
    vectors, zero padded/truncated.  Deterministic and training free —
    the trainable parts live in the models.
    """

    def __init__(self, embedder: HashingNgramEmbedder, max_tokens: int = 8):
        self.embedder = embedder
        self.max_tokens = max_tokens
        self._cache: Dict[str, np.ndarray] = {}

    def encode(self, text: str) -> np.ndarray:
        if text in self._cache:
            return self._cache[text]
        tokens = [t.text for t in tokenize(text)][: self.max_tokens]
        out = np.zeros((self.max_tokens, self.embedder.dim), dtype=np.float32)
        if tokens:
            out[: len(tokens)] = self.embedder.embed_batch(tokens)
        self._cache[text] = out
        return out

    def encode_batch(self, texts: Sequence[str]) -> np.ndarray:
        return np.stack([self.encode(t) for t in texts])


class PairBaseline(Module):
    """Base trainer loop shared by the three baselines.

    Subclasses implement :meth:`score_pairs` (a differentiable logit per
    pair) and :meth:`prepare` (any per-corpus precomputation).
    """

    name: str = "baseline"

    def __init__(
        self,
        kb: HeteroGraph,
        seed: int = 0,
        epochs: int = 100,
        patience: int = 30,
        lr: float = 3e-3,
        weight_decay: float = 1e-4,
        negatives_per_positive: int = 4,
        eval_negatives: int = 1,
        grad_clip: float = 5.0,
    ):
        super().__init__()
        self.kb = kb
        self.seed = seed
        self.epochs = epochs
        self.patience = patience
        self.lr = lr
        self.weight_decay = weight_decay
        self.negatives_per_positive = negatives_per_positive
        self.eval_negatives = eval_negatives
        self.grad_clip = grad_clip
        self.rng = np.random.default_rng(seed)
        self._hard_sampler = SemanticNegativeSampler(
            kb, evaluation_features(kb), np.random.default_rng(seed + 2)
        )

    # -- to implement ----------------------------------------------------
    def prepare(self, snippets: Sequence[Snippet]) -> None:
        """Optional warm-up over the full snippet corpus (vocab, caches)."""

    def score_pairs(self, pairs: Sequence[PairExample]) -> Tensor:
        raise NotImplementedError

    # -- shared loop -------------------------------------------------------
    def fit(
        self,
        train_snippets: Sequence[Snippet],
        val_snippets: Sequence[Snippet],
        test_snippets: Sequence[Snippet],
    ) -> BaselineResult:
        self.prepare(list(train_snippets) + list(val_snippets) + list(test_snippets))
        protocol = EvaluationProtocol(self.kb, self.eval_negatives, self.seed)
        val_pairs = build_eval_pairs(
            self.kb, val_snippets, self.eval_negatives, self.seed, protocol
        )
        test_pairs = build_eval_pairs(
            self.kb, test_snippets, self.eval_negatives, self.seed, protocol
        )
        optimizer = Adam(self.parameters(), lr=self.lr, weight_decay=self.weight_decay)

        best_val = PRF(0.0, 0.0, 0.0)
        best_epoch = -1
        best_state = self.state_dict()
        history: List[Tuple[int, float, float]] = []
        stale = 0
        for epoch in range(self.epochs):
            self.train()
            pairs = build_train_pairs(
                self.kb,
                train_snippets,
                self.negatives_per_positive,
                self.rng,
                hard_sampler=self._hard_sampler if epoch > 0 else None,
            )
            optimizer.zero_grad()
            logits = self.score_pairs(pairs)
            labels = np.asarray([p.label for p in pairs], dtype=np.float32)
            # Weight positives by the imbalance ratio so the models learn
            # pair discrimination instead of the class prior.
            loss = F.binary_cross_entropy_with_logits(
                logits, labels, pos_weight=float(self.negatives_per_positive)
            )
            loss.backward()
            clip_grad_norm(self.parameters(), self.grad_clip)
            optimizer.step()

            val = self.evaluate(val_pairs)
            history.append((epoch, float(loss.item()), val.f1))
            if val.f1 > best_val.f1:
                best_val, best_epoch, stale = val, epoch, 0
                best_state = self.state_dict()
            else:
                stale += 1
                if stale >= self.patience:
                    break

        self.load_state_dict(best_state)
        test = self.evaluate(test_pairs)
        return BaselineResult(test=test, best_val=best_val, best_epoch=best_epoch, history=history)

    def evaluate(self, pairs: Sequence[PairExample]) -> PRF:
        self.eval()
        with no_grad():
            logits = self.score_pairs(pairs).data
        labels = np.asarray([p.label for p in pairs], dtype=bool)
        return precision_recall_f1(labels, classify_logits(logits))

    # -- common helpers ----------------------------------------------------
    def entity_names(self, pairs: Sequence[PairExample]) -> List[str]:
        return [self.kb.node_name(p.entity) for p in pairs]

    def mention_surfaces(self, pairs: Sequence[PairExample]) -> List[str]:
        return [p.snippet.ambiguous_mention.mention for p in pairs]

    def context_surfaces(self, snippet: Snippet) -> List[str]:
        return [
            m.mention
            for i, m in enumerate(snippet.mentions)
            if i != snippet.ambiguous_index
        ]
