"""NormCo baseline (Wright et al. [47]).

Deep coherence model for disease-entity normalisation: the matching score
combines

* an **entity phrase model** — the mention phrase embedded as the mean of
  its word vectors, projected into the entity space, and
* a **coherence model** — a GRU over the *other* mentions of the snippet
  (their topical coherence), whose final state is projected into the same
  space.

Both submodels are trained jointly (their scores are summed) against the
candidate entity's name embedding, mirroring the joint training described
in the original paper.  NormCo uses text only — no KB structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import GRU, Linear, Tensor, rows_dot
from ..graph.hetero import HeteroGraph
from ..text.embedder import HashingNgramEmbedder
from .base import PairBaseline, PairExample


class NormCo(PairBaseline):
    """Phrase + coherence scorer for (mention-in-context, entity) pairs."""

    name = "NormCo"

    def __init__(
        self,
        kb: HeteroGraph,
        token_dim: int = 64,
        hidden_dim: int = 64,
        max_context: int = 6,
        **kwargs,
    ):
        super().__init__(kb, **kwargs)
        if token_dim != hidden_dim:
            raise ValueError("NormCo residual projections need token_dim == hidden_dim")
        rng = np.random.default_rng(self.seed)
        self.embedder = HashingNgramEmbedder(dim=token_dim)
        self.max_context = max_context
        self.phrase_proj = Linear(token_dim, hidden_dim, rng)
        self.coherence_gru = GRU(token_dim, hidden_dim, rng)
        self.entity_proj = Linear(token_dim, hidden_dim, rng)
        self.mix = Tensor(np.asarray([0.25], dtype=np.float32), requires_grad=True)
        self.scale = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        self.offset = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)

    def _context_matrix(self, pairs: Sequence[PairExample]) -> np.ndarray:
        """[batch, max_context, dim] of context-mention embeddings."""
        out = np.zeros((len(pairs), self.max_context, self.embedder.dim), dtype=np.float32)
        for i, pair in enumerate(pairs):
            context = self.context_surfaces(pair.snippet)[: self.max_context]
            if context:
                out[i, : len(context)] = self.embedder.embed_batch(context)
        return out

    def score_pairs(self, pairs: Sequence[PairExample]) -> Tensor:
        mentions = Tensor(self.embedder.embed_batch(self.mention_surfaces(pairs)))
        entities = Tensor(self.embedder.embed_batch(self.entity_names(pairs)))
        # Residual projections: the phrase score starts as the raw
        # lexical cosine and the model refines it during training.
        phrase = mentions + self.phrase_proj(mentions).tanh()
        entity_vec = entities + self.entity_proj(entities).tanh()
        _, coherence_state = self.coherence_gru(Tensor(self._context_matrix(pairs)))
        phrase_score = rows_dot(phrase, entity_vec)
        coherence_score = rows_dot(coherence_state, entity_vec)
        return phrase_score * self.scale + coherence_score * self.mix + self.offset
