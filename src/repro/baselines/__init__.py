"""Baseline systems of Section 4.2: DeepMatcher, NormCo and NCEL,
re-implemented with the information restrictions the paper describes
(text-only for the first two; untyped local structure for NCEL).
"""

from .base import (  # noqa: F401
    BaselineResult,
    PairBaseline,
    PairExample,
    TokenMatrixizer,
    build_eval_pairs,
    build_train_pairs,
    gold_entity,
)
from .deepmatcher import DeepMatcher  # noqa: F401
from .ncel import NCEL  # noqa: F401
from .normco import NormCo  # noqa: F401

BASELINES = {
    "DeepMatcher": DeepMatcher,
    "NormCo": NormCo,
    "NCEL": NCEL,
}

__all__ = [
    "PairBaseline",
    "PairExample",
    "BaselineResult",
    "TokenMatrixizer",
    "build_eval_pairs",
    "build_train_pairs",
    "gold_entity",
    "DeepMatcher",
    "NormCo",
    "NCEL",
    "BASELINES",
]
