"""Baseline systems of Section 4.2: DeepMatcher, NormCo and NCEL,
re-implemented with the information restrictions the paper describes
(text-only for the first two; untyped local structure for NCEL).

The baselines are registered in the encoder table
(:data:`repro.core.model.ENCODER_BUILDERS`, surfaced as
``repro.api.registry.ENCODERS``) so ``repro evaluate --system NCEL``
and the GNN variants dispatch through one registry.  They are pair
classifiers, not GNN encoders, so the registered builder is a *marker*:
it carries the baseline class as ``builder.baseline_cls`` for the
evaluator, and raises if anything tries to construct it as an encoder
(``LinkerConfig.validate`` rejects baseline variants up front).
"""

from ..core.model import register_encoder
from .base import (  # noqa: F401
    BaselineResult,
    PairBaseline,
    PairExample,
    TokenMatrixizer,
    build_eval_pairs,
    build_train_pairs,
    gold_entity,
)
from .deepmatcher import DeepMatcher  # noqa: F401
from .ncel import NCEL  # noqa: F401
from .normco import NormCo  # noqa: F401

BASELINES = {
    "DeepMatcher": DeepMatcher,
    "NormCo": NormCo,
    "NCEL": NCEL,
}


def _register_baseline(name: str, cls) -> None:
    def _not_an_encoder(config, schema, common):
        raise ValueError(
            f"{name!r} is a baseline system, not a GNN encoder: it trains "
            f"through repro.eval.run_system / `repro evaluate --system {name}`"
        )

    _not_an_encoder.baseline_cls = cls
    register_encoder(name, _not_an_encoder)


for _name, _cls in BASELINES.items():
    _register_baseline(_name, _cls)

__all__ = [
    "PairBaseline",
    "PairExample",
    "BaselineResult",
    "TokenMatrixizer",
    "build_eval_pairs",
    "build_train_pairs",
    "gold_entity",
    "DeepMatcher",
    "NormCo",
    "NCEL",
    "BASELINES",
]
