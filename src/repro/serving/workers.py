"""Process-based shard workers for true parallel candidate scoring.

The thread-backed :class:`~repro.serving.sharding.ShardedKB` fan-out
contends on the GIL: the per-shard matcher math is a mix of fancy-index
gathers and small matmuls whose Python/numpy bookkeeping holds the GIL,
so N shards on threads buy little real parallelism.  This module moves
each shard into its own long-lived worker **process**:

* at startup every worker receives its :class:`ShardPayload` **once** —
  either pickled whole (the shard-local :meth:`HeteroGraph.subgraph`
  view, the ``h_ref``/``x_ref`` slices, and a :class:`ScorerSpec`
  (matcher name + state dict + lexical-skip terms) it rebuilds into a
  :class:`PairScorer`), or, with ``use_arena=True``, as a
  :class:`ShardPayloadHandle` of shared-memory descriptors — the
  matrices live in a parent-owned
  :class:`~repro.storage.arena.SharedMemoryArena` and the init message
  is O(1) in their size (``payload_ship_bytes`` vs
  ``payload_matrix_nbytes`` measures the gap); a ``distribute()`` then
  rewrites the segments in place instead of re-pickling slices per
  worker;
* thereafter the pipe only carries compact score requests (the chunk's
  query embedding matrix + aligned id arrays) and score replies, so the
  steady-state IPC per micro-batch is a few KB while the per-shard
  gather/matmul work runs on a private interpreter and GIL; a payload
  may also carry a :class:`RetrievalSpec` — the shard's slice of the
  sublinear candidate index (:mod:`repro.retrieval`) — and then
  ``candidates`` requests (surface + query vector) fan shortlist lookups
  across the same workers;
* :meth:`ShardWorkerPool.distribute` warm-starts live workers after a
  weight refresh (new embedding slice + new scorer state, no restart);
* a crashed worker is respawned from its retained payload and the
  in-flight request is retried (``max_respawns`` per request);
* :meth:`ShardWorkerPool.close` drains in-flight requests (clock-
  injected deadline, unit-testable with a fake clock) before stopping
  the workers.

Scoring is bit-identical to the in-process path: the worker replays the
exact :meth:`EDGNN.score_pairs` op sequence (gather → matcher → lexical
skip) on the same float32 inputs.

The pool prefers the ``fork`` start method (cheap, no re-import) and
falls back to ``spawn``; :func:`resolve_shard_backend` downgrades a
``"process"`` request to ``"thread"`` with a warning on platforms with
no usable multiprocessing context.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..autograd import Tensor, enable_grad, gather, no_grad
from ..autograd.ops import rows_dot
from ..core.matching import make_matcher
from ..graph.hetero import HeteroGraph
from ..retrieval.base import RetrievalConfig, RetrievalIndex, index_from_arrays
from ..storage.arena import ArraySpec, SharedMemoryArena, attach_array

__all__ = [
    "SHARD_BACKENDS",
    "CandidateJob",
    "PairScorer",
    "RetrievalSpec",
    "ScorerSpec",
    "ShardPayload",
    "ShardPayloadHandle",
    "ShardWorkerError",
    "ShardWorkerPool",
    "default_shard_backend",
    "resolve_shard_backend",
]

#: the ``ShardedKB`` execution backends a config may name
SHARD_BACKENDS = ("thread", "process")

#: environment default for the backend (the CI shard matrix sets this)
SHARD_BACKEND_ENV = "REPRO_SHARD_BACKEND"

#: startup-handshake budget: generous enough for a cold ``spawn``
#: re-import, but bounded — a child deadlocked before its "ready" (e.g.
#: a lock inherited across a fork from a multithreaded parent) must
#: surface as ShardWorkerError instead of hanging the parent forever.
HANDSHAKE_TIMEOUT_S = 60.0


class ShardWorkerError(RuntimeError):
    """A shard worker failed (scoring error, or crash beyond the respawn
    budget)."""


def _mp_context():
    """The preferred multiprocessing context, or ``None`` when the
    platform offers no usable start method.  ``fork`` wins when available
    (no re-import, instant startup); the payload is shipped over the pipe
    either way, so the worker protocol is start-method-agnostic."""
    try:
        methods = multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms only
        return None
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None  # pragma: no cover - exotic platforms only


def process_backend_available() -> bool:
    """Whether this platform can run the process shard backend."""
    return _mp_context() is not None


def default_shard_backend() -> str:
    """The backend used when nothing names one explicitly: the
    ``REPRO_SHARD_BACKEND`` environment variable when set (the CI shard
    matrix forces real subprocesses this way), else ``"thread"``."""
    return os.environ.get(SHARD_BACKEND_ENV, "").strip() or "thread"


def resolve_shard_backend(requested: Optional[str] = None) -> str:
    """Resolve a backend name: explicit argument, else the
    ``REPRO_SHARD_BACKEND`` environment default, else ``"thread"``.

    An unknown name raises; a ``"process"`` request on a platform with no
    usable multiprocessing context degrades to ``"thread"`` with a
    warning (threads are always safe, just slower).
    """
    backend = requested or default_shard_backend()
    if backend not in SHARD_BACKENDS:
        raise ValueError(
            f"unknown shard backend {backend!r}; options: {SHARD_BACKENDS}"
        )
    if backend == "process" and not process_backend_available():
        warnings.warn(
            "process shard backend unavailable on this platform; "
            "falling back to threads",
            RuntimeWarning,
            stacklevel=2,
        )
        return "thread"
    return backend


# ---------------------------------------------------------------------------
# Worker-side scoring
# ---------------------------------------------------------------------------
@dataclass
class ScorerSpec:
    """Picklable recipe for the pair-scoring math of an ``EDGNN``.

    The live model is not shipped (tensors on an autograd tape may hold
    unpicklable backward closures); instead the worker rebuilds the
    matcher from its name + state dict and replays the exact
    :meth:`EDGNN.score_pairs` op sequence, so worker scores are
    bit-identical to the parent's.
    """

    matcher_name: str
    dim: int
    state: Dict[str, np.ndarray]
    lexical_skip: bool
    lexical_scale: np.ndarray

    @classmethod
    def from_model(cls, model) -> "ScorerSpec":
        return cls(
            matcher_name=model.config.matcher,
            dim=model.encoder.out_dim,
            state=model.matcher.state_dict(),
            lexical_skip=bool(model.config.lexical_skip),
            lexical_scale=model.lexical_scale.data.copy(),
        )

    def build(self) -> "PairScorer":
        # Parameter construction must see tape recording enabled: a
        # worker respawned mid-batch is forked from a parent thread
        # inside no_grad, and tensors created with recording off drop
        # requires_grad — the rebuilt matcher would register no
        # parameters and reject its own state dict.
        with enable_grad():
            matcher = make_matcher(
                self.matcher_name, self.dim, np.random.default_rng(0)
            )
            matcher.load_state_dict(self.state)
        matcher.eval()
        return PairScorer(matcher, self.lexical_skip, self.lexical_scale)


class PairScorer:
    """Worker-side replica of :meth:`EDGNN.score_pairs` over shard-local
    reference rows."""

    def __init__(self, matcher, lexical_skip: bool, lexical_scale: np.ndarray):
        self.matcher = matcher
        self.lexical_skip = lexical_skip
        self.lexical_scale = lexical_scale

    def score(
        self,
        h_query: np.ndarray,
        query_ids: np.ndarray,
        h_ref: np.ndarray,
        ref_ids: np.ndarray,
        x_query: Optional[np.ndarray],
        x_ref: Optional[np.ndarray],
    ) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.int64)
        ref_ids = np.asarray(ref_ids, dtype=np.int64)
        with no_grad():
            logits = self.matcher(
                gather(Tensor(h_query), query_ids), gather(Tensor(h_ref), ref_ids)
            )
            if self.lexical_skip and x_query is not None and x_ref is not None:
                lexical = rows_dot(
                    gather(Tensor(x_query), query_ids), gather(Tensor(x_ref), ref_ids)
                )
                logits = logits + lexical * Tensor(self.lexical_scale)
            return logits.data


@dataclass
class RetrievalSpec:
    """Picklable recipe for a shard-local retrieval index slice.

    The live :class:`~repro.retrieval.base.RetrievalIndex` is not shipped
    (an LSH slice may hold an embedder, and a packed index may wrap
    memory-mapped views); instead the worker rebuilds the slice from its
    flat arrays via :func:`~repro.retrieval.base.index_from_arrays`.  With
    an arena, ``arrays`` carries :class:`ArraySpec` descriptors instead of
    the arrays themselves — the worker maps the parent-owned segments
    read-only, so N workers share one copy of the postings/signatures.

    Workers never embed: candidate requests carry the query vector (the
    LSH backend needs it; the n-gram backend queries by surface alone).
    """

    backend: str
    config: dict  # RetrievalConfig kwargs (JSON-compatible)
    params: dict
    arrays: Dict[str, Union[np.ndarray, ArraySpec]]

    @classmethod
    def from_index(cls, index: RetrievalIndex) -> "RetrievalSpec":
        return cls(
            backend=index.backend,
            config=index.config.to_dict(),
            params=index.params(),
            arrays=dict(index.arrays()),
        )

    def build(self, segments: Optional[list] = None) -> RetrievalIndex:
        arrays: Dict[str, np.ndarray] = {}
        for name, value in self.arrays.items():
            if isinstance(value, ArraySpec):
                array, segment = attach_array(value)
                if segments is not None:
                    segments.append(segment)
                arrays[name] = array
            else:
                arrays[name] = value
        return index_from_arrays(
            self.backend, RetrievalConfig(**self.config), self.params, arrays
        )


@dataclass
class ShardPayload:
    """Everything a worker needs, shipped exactly once at (re)spawn.

    ``view`` is the shard-local induced subgraph — the worker does not
    need it for pair scoring (the parent ships embeddings), but it gives
    a future worker-side re-embedding path the full node/edge context,
    and it makes the payload self-describing for debugging.  ``retrieval``
    is the shard's slice of the sublinear candidate index (when the
    serving layer has one), so candidate shortlisting can fan out across
    the same workers as pair scoring.
    """

    index: int
    num_shards: int
    node_ids: np.ndarray
    h_ref: np.ndarray
    x_ref: np.ndarray
    scorer: ScorerSpec
    view: Optional[HeteroGraph] = None
    retrieval: Optional[RetrievalSpec] = None


@dataclass
class ShardPayloadHandle:
    """Descriptor form of a :class:`ShardPayload` for arena-published
    shards: the matrices stay in parent-owned shared-memory segments and
    the init message ships only their :class:`ArraySpec` descriptors —
    pipe traffic is O(1) in the matrix size, and a warm-start
    ``distribute()`` needs no payload re-ship at all (the parent updates
    the segments in place and bumps ``version``)."""

    index: int
    num_shards: int
    node_ids: ArraySpec
    h_ref: ArraySpec
    x_ref: ArraySpec
    scorer: ScorerSpec
    version: int = 0  # arena publish version at ship time
    retrieval: Optional[RetrievalSpec] = None  # arrays as ArraySpec descriptors


def _worker_main(connection) -> None:  # pragma: no cover - subprocess body
    """Long-lived worker loop: one ``init``, then score/refresh/stop.

    Runs in the child process (excluded from parent coverage; the scoring
    math itself is covered in-parent through :class:`PairScorer`).
    """
    kind, payload = connection.recv()
    assert kind == "init"
    segments = []  # keep shm mappings alive for the worker's lifetime
    if isinstance(payload, ShardPayloadHandle):
        h_ref, segment = attach_array(payload.h_ref)
        segments.append(segment)
        x_ref, segment = attach_array(payload.x_ref)
        segments.append(segment)
    else:
        h_ref = payload.h_ref
        x_ref = payload.x_ref
    scorer = payload.scorer.build()
    retrieval = (
        payload.retrieval.build(segments) if payload.retrieval is not None else None
    )
    connection.send(("ready", payload.index))
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break  # parent died or closed the pipe: exit quietly
        kind = message[0]
        if kind == "stop":
            connection.close()
            break
        if kind == "refresh":
            _, fresh_h_ref, spec = message
            if fresh_h_ref is not None:
                h_ref = fresh_h_ref
            # Arena-published shards refresh with fresh_h_ref=None: the
            # parent already rewrote the segment bytes in place, and this
            # worker's mapping sees them with zero copies.
            scorer = spec.build()
            connection.send(("refreshed", payload.index))
            continue
        if kind == "score":
            _, seq, h_query, x_query, query_ids, ref_ids = message
            try:
                # The elapsed seconds ride on the reply so the parent can
                # attribute wall time to this shard without guessing from
                # its own (gather-serialised) clock.
                t0 = time.perf_counter()
                scores = scorer.score(h_query, query_ids, h_ref, ref_ids, x_query, x_ref)
                connection.send(("ok", seq, scores, time.perf_counter() - t0))
            except Exception as exc:
                connection.send(("err", seq, f"{type(exc).__name__}: {exc}"))
            continue
        if kind == "candidates":
            _, seq, surface, query_vec = message
            try:
                t0 = time.perf_counter()
                if retrieval is None:
                    ids = np.zeros(0, dtype=np.int64)
                else:
                    ids = retrieval.query(surface, query_vec=query_vec)
                connection.send(("ok", seq, ids, time.perf_counter() - t0))
            except Exception as exc:
                connection.send(("err", seq, f"{type(exc).__name__}: {exc}"))
            continue
        connection.send(("err", None, f"unknown message kind {kind!r}"))


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    process: object
    connection: object
    broken: bool = False


@dataclass
class ScoreJob:
    """One shard's slice of a fan-out: score ``ref_ids`` (shard-local)
    against rows ``query_ids`` of the chunk's query matrices."""

    shard_index: int
    h_query: np.ndarray
    query_ids: np.ndarray
    ref_ids: np.ndarray
    x_query: Optional[np.ndarray] = None


@dataclass
class CandidateJob:
    """One shard's slice of a candidate fan-out: query the shard-local
    retrieval index for a surface form.  ``query_vec`` is the surface's
    embedder vector, computed once in the parent (workers hold no
    embedder; the LSH backend needs the vector, the n-gram backend
    queries by surface alone).  The reply carries *global* node ids."""

    shard_index: int
    surface: str
    query_vec: Optional[np.ndarray] = None


class ShardWorkerPool:
    """N long-lived worker processes, one per shard payload.

    Fan-outs overlap across workers (send-all, then gather replies); a
    pool-level lock serialises concurrent fan-outs so pipe traffic stays
    request/reply-matched.  ``clock`` is injected for the drain deadline
    in :meth:`close` (fake-clock testable).
    """

    def __init__(
        self,
        payloads: Sequence[ShardPayload],
        *,
        start_method: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        max_respawns: int = 2,
        use_arena: bool = False,
    ):
        if not payloads:
            raise ValueError("ShardWorkerPool needs at least one payload")
        context = (
            multiprocessing.get_context(start_method) if start_method else _mp_context()
        )
        if context is None:
            raise RuntimeError("no usable multiprocessing start method")
        self._context = context
        self._payloads: List[ShardPayload] = list(payloads)
        self.clock = clock or time.monotonic
        self.max_respawns = max_respawns
        self.respawns = 0  # lifetime respawn counter (telemetry + tests)
        # Per-shard score telemetry: requests answered and the wall time
        # the workers reported spending on them (worker-side clocks, so
        # concurrent shards are attributed honestly).
        self.shard_calls = [0] * len(payloads)
        self.shard_seconds = [0.0] * len(payloads)
        # Payload-ship telemetry: bytes actually written to command pipes
        # for init/refresh messages, vs the matrix bytes a pickled ship
        # would have cost (the arena's whole point is the gap between
        # these two numbers).
        self.payload_ship_bytes = 0
        self.payload_matrix_nbytes = sum(
            payload.h_ref.nbytes + payload.x_ref.nbytes for payload in payloads
        )
        self._seq = 0
        self._lock = threading.Lock()  # serialises pipe fan-outs
        self._state = threading.Condition()  # close/in-flight bookkeeping
        self._in_flight = 0
        self._closed = False
        self._workers: List[_WorkerHandle] = []
        self._arena: Optional[SharedMemoryArena] = None
        try:
            if use_arena:
                self._arena = SharedMemoryArena()
                for payload in self._payloads:
                    self._arena.publish(f"{payload.index}:node_ids", payload.node_ids)
                    self._arena.publish(f"{payload.index}:h_ref", payload.h_ref)
                    self._arena.publish(f"{payload.index}:x_ref", payload.x_ref)
                    if payload.retrieval is not None:
                        # Postings/signature arrays are read-only at query
                        # time, so N workers share the parent's one copy.
                        for name, array in payload.retrieval.arrays.items():
                            self._arena.publish(
                                f"{payload.index}:retrieval:{name}", array
                            )
            for index in range(len(payloads)):
                self._workers.append(self._spawn(index))
        except BaseException:
            # Partial startup must not leak the workers already forked
            # (or the arena segments already published).
            for worker in self._workers:
                try:
                    worker.connection.close()
                except OSError:  # pragma: no cover - close on a dead pipe
                    pass
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            if self._arena is not None:
                self._arena.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _init_payload(self, index: int) -> Union[ShardPayload, ShardPayloadHandle]:
        """What the init message ships: the retained payload itself, or —
        with an arena — a descriptor handle whose size is independent of
        the matrices (a respawned worker maps the same segments, which
        already hold the latest distributed bytes)."""
        payload = self._payloads[index]
        if self._arena is None:
            return payload
        retrieval = payload.retrieval
        if retrieval is not None:
            retrieval = RetrievalSpec(
                backend=retrieval.backend,
                config=retrieval.config,
                params=retrieval.params,
                arrays={
                    name: self._arena.spec(f"{payload.index}:retrieval:{name}")
                    for name in retrieval.arrays
                },
            )
        return ShardPayloadHandle(
            index=payload.index,
            num_shards=payload.num_shards,
            node_ids=self._arena.spec(f"{payload.index}:node_ids"),
            h_ref=self._arena.spec(f"{payload.index}:h_ref"),
            x_ref=self._arena.spec(f"{payload.index}:x_ref"),
            scorer=payload.scorer,
            version=self._arena.version,
            retrieval=retrieval,
        )

    def _ship(self, connection, message: tuple) -> None:
        """Send a payload-carrying message, metering its pickled size
        (``send_bytes`` of a pickle is what ``Connection.send`` does under
        the hood, so the worker's ``recv()`` is none the wiser)."""
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        connection.send_bytes(data)
        self.payload_ship_bytes += len(data)

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_end,),
            name=f"kb-shard-worker-{index}",
            daemon=True,
        )
        process.start()
        child_end.close()
        try:
            try:
                self._ship(parent_end, ("init", self._init_payload(index)))
                if not parent_end.poll(HANDSHAKE_TIMEOUT_S):
                    raise ShardWorkerError(
                        f"shard worker {index} hung during startup"
                    )
                kind, echoed = parent_end.recv()
            except (EOFError, OSError) as exc:
                raise ShardWorkerError(
                    f"shard worker {index} died during startup"
                ) from exc
            if kind != "ready" or echoed != self._payloads[index].index:
                raise ShardWorkerError(f"shard worker {index} botched its handshake")
        except BaseException:
            # A failed handshake must not leak the process (alive and
            # blocked in recv forever) or the parent pipe end.
            try:
                parent_end.close()
            except OSError:  # pragma: no cover - close on a dead pipe
                pass
            process.terminate()
            process.join(timeout=5.0)
            raise
        return _WorkerHandle(process, parent_end)

    def _respawn(self, index: int) -> None:
        if self._closed:
            # close() already stopped (or is stopping) the workers; a
            # late in-flight retry must not fork fresh ones past it.
            raise ShardWorkerError("ShardWorkerPool is closed")
        worker = self._workers[index]
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover - close on a dead pipe
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        self.respawns += 1
        self._workers[index] = self._spawn(index)

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def arena(self) -> Optional[SharedMemoryArena]:
        """The shared-memory arena holding the published shard payloads,
        or ``None`` when payloads ship pickled over the pipes."""
        return self._arena

    @property
    def processes(self) -> List[object]:
        """Live worker process handles (for telemetry and crash tests)."""
        return [worker.process for worker in self._workers]

    def alive(self) -> List[bool]:
        return [worker.process.is_alive() for worker in self._workers]

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain in-flight fan-outs, then stop every worker.

        New requests are rejected immediately; requests already past
        :meth:`_begin` finish (bounded by ``timeout`` seconds on the
        injected clock — on expiry the workers are stopped anyway).
        Idempotent.
        """
        with self._state:
            already_closed = self._closed
            self._closed = True
            deadline = None if timeout is None else self.clock() + timeout
            while self._in_flight > 0:
                remaining = None if deadline is None else deadline - self.clock()
                if remaining is not None and remaining <= 0:
                    break  # drain budget blown: stop the workers anyway
                self._state.wait(0.05 if remaining is None else min(remaining, 0.05))
        if already_closed:
            return
        # Bounded acquisition: a hung worker can leave a fan-out blocked
        # in recv() holding the lock forever — the expired drain budget
        # must still stop the workers, so fall through to a hard
        # terminate when the lock cannot be had.
        graceful = self._lock.acquire(timeout=5.0)
        try:
            for worker in self._workers:
                if graceful:
                    try:
                        worker.connection.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass  # already dead; join/terminate below
                    try:
                        worker.connection.close()
                    except OSError:  # pragma: no cover - close on a dead pipe
                        pass
                else:  # pragma: no cover - hung-worker shutdown only
                    worker.process.terminate()
            for worker in self._workers:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
            self._workers = []
        finally:
            if graceful:
                self._lock.release()
        # Workers are gone (or terminated); unlinking the arena segments
        # is now safe — and it must happen even after crash/respawn
        # churn, which is why the arena (not any worker) owns them.
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # In-flight bookkeeping (the drain contract of close())
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        with self._state:
            if self._closed:
                raise RuntimeError("ShardWorkerPool is closed")
            self._in_flight += 1

    def _end(self) -> None:
        with self._state:
            self._in_flight -= 1
            self._state.notify_all()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_many(
        self, jobs: Sequence[Union[ScoreJob, CandidateJob]]
    ) -> List[np.ndarray]:
        """Run every job, overlapping the shard workers.

        Requests are written to all target workers first, then replies
        are gathered, so distinct shards compute concurrently.  A worker
        that crashed mid-batch is respawned from its retained payload and
        its request is retried.  Jobs may mix pair scoring
        (:class:`ScoreJob`) and candidate shortlisting
        (:class:`CandidateJob`); both follow the same seq-matched
        request/reply protocol.
        """
        self._begin()
        try:
            with self._lock:
                return self._score_many_locked(jobs)
        finally:
            self._end()

    def _score_many_locked(
        self, jobs: Sequence[Union[ScoreJob, CandidateJob]]
    ) -> List[np.ndarray]:
        results: List[Optional[np.ndarray]] = [None] * len(jobs)
        sent: List[Tuple[int, int]] = []  # (job position, seq)
        retry: List[int] = []
        errors: List[ShardWorkerError] = []
        for position, job in enumerate(jobs):
            if self._workers[job.shard_index].broken:
                # Heal a worker left desynced by a previous fan-out (its
                # pipe may hold stale replies) before reusing it.
                self._respawn(job.shard_index)
            worker = self._workers[job.shard_index]
            seq = self._next_seq()
            try:
                worker.connection.send(self._score_message(seq, job))
                sent.append((position, seq))
            except (BrokenPipeError, OSError):
                worker.broken = True
                retry.append(position)
        # Gather phase: every sent request's reply is consumed — even
        # after a scoring error — so one bad reply can never leave stale
        # replies queued in other workers' pipes (which would desync the
        # request/reply protocol for every later fan-out).
        for position, seq in sent:
            job = jobs[position]
            worker = self._workers[job.shard_index]
            if worker.broken:
                # An earlier send to this worker already failed; its pipe
                # is unusable, so this request must be replayed too.
                retry.append(position)
                continue
            try:
                reply = worker.connection.recv()
            except (EOFError, ConnectionResetError, OSError):
                worker.broken = True
                retry.append(position)
                continue
            if reply[0] == "ok" and reply[1] == seq:
                results[position] = reply[2]
                self._note_shard(job.shard_index, reply)
            elif reply[0] == "err" and reply[1] == seq:
                # Deterministic scoring failure: the worker is healthy
                # and in sync; raise (below) without burning a respawn.
                errors.append(ShardWorkerError(f"shard worker failed: {reply[2]}"))
            else:
                worker.broken = True  # reply stream desynced; heal on next use
                retry.append(position)
        if errors:
            raise errors[0]
        for position in retry:
            results[position] = self._retry_job(jobs[position])
        return results  # type: ignore[return-value]

    def _retry_job(self, job: Union[ScoreJob, CandidateJob]) -> np.ndarray:
        """Respawn the job's (crashed) worker and replay the request."""
        for attempt in range(self.max_respawns):
            self._respawn(job.shard_index)
            worker = self._workers[job.shard_index]
            seq = self._next_seq()
            try:
                worker.connection.send(self._score_message(seq, job))
                reply = worker.connection.recv()
                result = self._parse_reply(reply, seq)
                self._note_shard(job.shard_index, reply)
                return result
            except (BrokenPipeError, EOFError, ConnectionResetError, OSError):
                worker.broken = True
        raise ShardWorkerError(
            f"shard worker {job.shard_index} kept crashing after "
            f"{self.max_respawns} respawns"
        )

    def _note_shard(self, shard_index: int, reply: tuple) -> None:
        """Fold one ok reply's worker-reported wall time into the
        per-shard telemetry."""
        if len(reply) > 3 and isinstance(reply[3], float):
            self.shard_calls[shard_index] += 1
            self.shard_seconds[shard_index] += reply[3]

    @staticmethod
    def _score_message(seq: int, job: Union[ScoreJob, CandidateJob]) -> tuple:
        if isinstance(job, CandidateJob):
            return ("candidates", seq, job.surface, job.query_vec)
        return ("score", seq, job.h_query, job.x_query, job.query_ids, job.ref_ids)

    @staticmethod
    def _parse_reply(reply: tuple, seq: int) -> np.ndarray:
        kind = reply[0]
        if kind == "ok" and reply[1] == seq:
            return reply[2]
        if kind == "err":
            raise ShardWorkerError(f"shard worker failed: {reply[2]}")
        raise ShardWorkerError(  # pragma: no cover - protocol corruption
            f"shard worker protocol error: expected reply {seq}, got {reply!r}"
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Warm-start refresh
    # ------------------------------------------------------------------
    def distribute(
        self, h_ref_slices: Sequence[np.ndarray], scorer: ScorerSpec
    ) -> None:
        """Push re-sliced embeddings + the refreshed scorer state to the
        live workers (no restart).  The retained payloads are updated
        first, so a worker that happens to crash here respawns with the
        fresh state anyway."""
        if len(h_ref_slices) != len(self._payloads):
            raise ValueError("one embedding slice per shard payload required")
        self._begin()
        try:
            with self._lock:
                for payload, h_ref in zip(self._payloads, h_ref_slices):
                    payload.h_ref = h_ref
                    payload.scorer = scorer
                    if self._arena is not None:
                        # In-place versioned publish: the workers' live
                        # mappings see the fresh bytes without a single
                        # matrix byte crossing a pipe.  Safe because the
                        # pool lock serialises this against every fan-out
                        # — no worker is reading mid-rewrite.
                        self._arena.update(f"{payload.index}:h_ref", h_ref)
                confirmed = 0
                try:
                    for index, worker in enumerate(self._workers):
                        try:
                            self._ship(
                                worker.connection,
                                (
                                    "refresh",
                                    None if self._arena is not None
                                    else self._payloads[index].h_ref,
                                    scorer,
                                ),
                            )
                            kind, echoed = worker.connection.recv()
                            if kind != "refreshed" or echoed != self._payloads[index].index:
                                raise ShardWorkerError(
                                    f"shard worker {index} botched its refresh"
                                )
                        except (BrokenPipeError, EOFError, ConnectionResetError, OSError):
                            self._respawn(index)  # respawn ships the fresh payload
                        confirmed = index + 1
                except BaseException:
                    # An aborted refresh (e.g. a respawn that itself
                    # failed) must not leave later workers serving stale
                    # embeddings/matcher state: mark every unconfirmed
                    # worker broken so the next fan-out respawns it from
                    # the already-updated payload.
                    for worker in self._workers[confirmed:]:
                        worker.broken = True
                    raise
        finally:
            self._end()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.num_workers} workers"
        return f"ShardWorkerPool({state}, respawns={self.respawns})"
