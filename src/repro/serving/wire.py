"""The typed wire schema of the HTTP front door (:mod:`repro.serving.http`).

The wire format is a real API in the :class:`~repro.api.LinkerConfig`
style: frozen, schema-versioned request/response dataclasses with strict
``to_json`` / ``from_json`` — unknown keys, wrong types, and unsupported
schema versions are rejected (:class:`WireError`, which carries the HTTP
status and a machine-readable error code) instead of being ignored.  A
payload that parses is a payload the server can execute.

* :class:`LinkItem` — one unit of work: either a fully annotated snippet
  (the paper's ground-truth JSON layout via
  :meth:`~repro.text.corpus.Snippet.to_dict`) or raw ``text`` with an
  optional ``mention`` surface to disambiguate (the server runs NER);
* :class:`LinkRequest` — ``POST /link`` body: one or more items plus an
  optional ``top_k`` cap (also the per-line schema of ``/link_stream``,
  where each NDJSON line is a single item payload);
* :class:`WirePrediction` / :class:`LinkResponse` — the ranked entities
  and scores of :meth:`LinkingService.link_batch`, bit-identical through
  the JSON round trip (``json`` serialises floats via ``repr``, which
  ``float()`` inverts exactly);
* :class:`ErrorResponse` — every non-2xx body, and the per-line failure
  record of streaming endpoints (``repro serve --input -`` emits the
  same shape on unparseable lines).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.pipeline import Prediction
from ..core.serialization import ensure_known_keys
from ..text.corpus import Snippet
from .admission import DEFAULT_PRIORITY, PRIORITIES

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ACCEPTED_SCHEMA_VERSIONS",
    "WireError",
    "LinkItem",
    "LinkRequest",
    "WirePrediction",
    "LinkResponse",
    "ErrorResponse",
    "parse_stream_line",
]

#: bump when the wire JSON layout changes incompatibly; v2 added the
#: optional per-item ``priority`` and ``ErrorResponse.retry_after_ms``
#: (both defaulted, so every v1 payload is also a valid v2 payload and
#: v1 requests stay accepted)
WIRE_SCHEMA_VERSION = 2
ACCEPTED_SCHEMA_VERSIONS = (1, 2)


class WireError(ValueError):
    """An invalid wire payload: carries the HTTP status and error code.

    The server maps a ``WireError`` straight to a structured
    :class:`ErrorResponse` with :attr:`status`; clients raise it from
    :meth:`ErrorResponse` payloads they receive.
    """

    def __init__(self, message: str, code: str = "bad_request", status: int = 400):
        super().__init__(message)
        self.code = code
        self.status = status

    def to_response(self, detail: Optional[str] = None) -> "ErrorResponse":
        return ErrorResponse(code=self.code, message=str(self), detail=detail)


def _known(payload: dict, allowed, where: str) -> None:
    try:
        ensure_known_keys(payload, allowed, where)
    except ValueError as exc:
        raise WireError(str(exc)) from None


def _object(payload, where: str) -> dict:
    if not isinstance(payload, dict):
        raise WireError(f"{where} must be a JSON object")
    return payload


def _check_version(payload: dict, where: str) -> None:
    version = payload.get("schema_version")
    if version not in ACCEPTED_SCHEMA_VERSIONS:
        raise WireError(
            f"unsupported {where} schema_version {version!r} "
            f"(expected one of {ACCEPTED_SCHEMA_VERSIONS})",
            code="unsupported_schema_version",
        )


def _loads(text, where: str) -> dict:
    if isinstance(text, (bytes, bytearray)):
        try:
            text = text.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"{where} is not valid UTF-8: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError(f"{where} is not valid JSON: {exc}") from None
    return _object(payload, where)


@dataclass(frozen=True)
class LinkItem:
    """One linking work unit: a full snippet OR raw text (+ mention).

    ``priority`` (wire v2) names the admission class the scheduler
    serves the item under (:data:`~repro.serving.admission.PRIORITIES`);
    it is optional and defaults to ``"normal"``, so v1 payloads parse
    unchanged.
    """

    text: Optional[str] = None
    mention: Optional[str] = None
    snippet: Optional[Snippet] = None
    priority: str = DEFAULT_PRIORITY

    def __post_init__(self):
        if (self.snippet is None) == (self.text is None):
            raise WireError("link item needs exactly one of 'text' or 'snippet'")
        if self.snippet is not None and self.mention is not None:
            raise WireError("'mention' only applies to raw 'text' items")
        if self.priority not in PRIORITIES:
            raise WireError(
                f"unknown link item priority {self.priority!r}; "
                f"options: {PRIORITIES}",
                code="unknown_priority",
            )

    def to_dict(self) -> dict:
        if self.snippet is not None:
            payload = {"snippet": self.snippet.to_dict()}
        else:
            payload = {"text": self.text}
            if self.mention is not None:
                payload["mention"] = self.mention
        if self.priority != DEFAULT_PRIORITY:
            payload["priority"] = self.priority
        return payload

    @classmethod
    def from_dict(cls, payload, where: str = "link item") -> "LinkItem":
        payload = _object(payload, where)
        _known(payload, ("text", "mention", "snippet", "priority"), where)
        snippet = payload.get("snippet")
        if snippet is not None:
            try:
                snippet = Snippet.from_dict(_object(snippet, f"{where} snippet"))
            except (KeyError, TypeError, ValueError) as exc:
                raise WireError(f"bad {where} snippet: {exc!r}") from None
        for key in ("text", "mention"):
            if payload.get(key) is not None and not isinstance(payload[key], str):
                raise WireError(f"{where} {key!r} must be a string")
        priority = payload.get("priority", DEFAULT_PRIORITY)
        if not isinstance(priority, str):
            raise WireError(f"{where} 'priority' must be a string")
        return cls(
            text=payload.get("text"),
            mention=payload.get("mention"),
            snippet=snippet,
            priority=priority,
        )


@dataclass(frozen=True)
class LinkRequest:
    """``POST /link`` body: a batch of items (a single snippet is a
    batch of one) plus an optional per-request ``top_k`` cap."""

    items: Tuple[LinkItem, ...]
    top_k: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(self.items))
        if not self.items:
            raise WireError("link request has no items")
        if self.top_k is not None and (
            isinstance(self.top_k, bool) or not isinstance(self.top_k, int) or self.top_k < 1
        ):
            raise WireError("'top_k' must be a positive integer")

    def to_dict(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "items": [item.to_dict() for item in self.items],
            "top_k": self.top_k,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "LinkRequest":
        payload = _object(payload, "link request")
        _check_version(payload, "link request")
        _known(payload, ("schema_version", "items", "top_k"), "link request")
        items = payload.get("items")
        if not isinstance(items, list):
            raise WireError("link request 'items' must be an array")
        return cls(
            items=tuple(
                LinkItem.from_dict(item, where=f"items[{i}]")
                for i, item in enumerate(items)
            ),
            top_k=payload.get("top_k"),
        )

    @classmethod
    def from_json(cls, text) -> "LinkRequest":
        return cls.from_dict(_loads(text, "link request"))


@dataclass(frozen=True)
class WirePrediction:
    """One ranked candidate list, exactly as the service produced it."""

    mention: str
    entity_ids: Tuple[int, ...]
    scores: Tuple[float, ...]
    entity_names: Tuple[str, ...] = ()

    @classmethod
    def from_prediction(
        cls, prediction: Prediction, entity_names: Tuple[str, ...] = ()
    ) -> "WirePrediction":
        return cls(
            mention=prediction.mention,
            entity_ids=tuple(int(e) for e in prediction.ranked_entities),
            scores=tuple(float(s) for s in prediction.scores),
            entity_names=tuple(entity_names),
        )

    def to_prediction(self) -> Prediction:
        """The :class:`~repro.core.pipeline.Prediction` this encodes —
        bit-identical to the server-side object (JSON floats round-trip
        exactly through ``repr``)."""
        return Prediction(
            mention=self.mention,
            ranked_entities=list(self.entity_ids),
            scores=list(self.scores),
        )

    def to_dict(self) -> dict:
        payload = {
            "mention": self.mention,
            "entity_ids": list(self.entity_ids),
            "scores": list(self.scores),
        }
        if self.entity_names:
            payload["entity_names"] = list(self.entity_names)
        return payload

    @classmethod
    def from_dict(cls, payload, where: str = "prediction") -> "WirePrediction":
        payload = _object(payload, where)
        _known(payload, ("mention", "entity_ids", "scores", "entity_names"), where)
        try:
            return cls(
                mention=payload["mention"],
                entity_ids=tuple(int(e) for e in payload["entity_ids"]),
                scores=tuple(float(s) for s in payload["scores"]),
                entity_names=tuple(payload.get("entity_names", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"bad {where}: {exc!r}") from None


@dataclass(frozen=True)
class LinkResponse:
    """``POST /link`` 200 body: one prediction per request item, in
    request order."""

    predictions: Tuple[WirePrediction, ...]

    def __post_init__(self):
        object.__setattr__(self, "predictions", tuple(self.predictions))

    def to_dict(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "predictions": [p.to_dict() for p in self.predictions],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "LinkResponse":
        payload = _object(payload, "link response")
        _check_version(payload, "link response")
        _known(payload, ("schema_version", "predictions"), "link response")
        predictions = payload.get("predictions")
        if not isinstance(predictions, list):
            raise WireError("link response 'predictions' must be an array")
        return cls(
            predictions=tuple(
                WirePrediction.from_dict(p, where=f"predictions[{i}]")
                for i, p in enumerate(predictions)
            )
        )

    @classmethod
    def from_json(cls, text) -> "LinkResponse":
        return cls.from_dict(_loads(text, "link response"))


@dataclass(frozen=True)
class ErrorResponse:
    """Every non-2xx body, and the per-line failure record of streams.

    ``retry_after_ms`` (wire v2) rides on 429 shed responses: the
    admission controller's estimate of when the queue will be back
    under budget (the ``Retry-After`` header carries the same hint in
    whole seconds).
    """

    code: str
    message: str
    detail: Optional[str] = None
    retry_after_ms: Optional[float] = None

    def __post_init__(self):
        if self.retry_after_ms is not None:
            if isinstance(self.retry_after_ms, bool) or not isinstance(
                self.retry_after_ms, (int, float)
            ):
                raise WireError("'retry_after_ms' must be a number")
            if self.retry_after_ms < 0:
                raise WireError("'retry_after_ms' must be >= 0")

    def to_dict(self) -> dict:
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "code": self.code,
            "message": self.message,
        }
        if self.detail is not None:
            payload["detail"] = self.detail
        if self.retry_after_ms is not None:
            payload["retry_after_ms"] = self.retry_after_ms
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "ErrorResponse":
        payload = _object(payload, "error response")
        _check_version(payload, "error response")
        _known(
            payload,
            ("schema_version", "code", "message", "detail", "retry_after_ms"),
            "error response",
        )
        try:
            return cls(
                code=payload["code"],
                message=payload["message"],
                detail=payload.get("detail"),
                retry_after_ms=payload.get("retry_after_ms"),
            )
        except KeyError as exc:
            raise WireError(f"error response missing key {exc}") from None

    @classmethod
    def from_json(cls, text) -> "ErrorResponse":
        return cls.from_dict(_loads(text, "error response"))


def parse_stream_line(line):
    """One ``/link_stream`` response line: a :class:`WirePrediction` or,
    for a failed input line, an :class:`ErrorResponse` (distinguished by
    the ``code`` field only error payloads carry)."""
    payload = _loads(line, "stream line")
    if "code" in payload:
        return ErrorResponse.from_dict(payload)
    return WirePrediction.from_dict(payload, where="stream line")
