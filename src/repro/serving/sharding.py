"""KB sharding for multi-worker serving.

``ShardedKB`` partitions the reference KB — its node set, feature rows,
and the fingerprinted reference-embedding matrix the serving layer
already caches — into ``num_shards`` shards routed by candidate id
(``candidate_id % num_shards``).  A query's candidate set is scattered to
the shards that own each candidate, scored by shard workers on a
``concurrent.futures`` pool, and gathered back into the original
candidate order, so the merged scores are byte-identical to scoring
against the unsharded KB: the matching math is per (mention, candidate)
pair and never mixes rows.

Shard placement is arithmetic (owner ``id % N``, local row ``id // N``),
which keeps the scatter O(candidates) with no lookup tables, and each
shard carries a shard-local :class:`~repro.graph.hetero.HeteroGraph` view
(``HeteroGraph.subgraph``, the columnar inverse of ``splice``) so a
worker holding only its shard still has the full node/edge context.

Two execution backends share the routing and the exact same scoring
math (``backend=``, default ``"thread"``, overridable via the
``REPRO_SHARD_BACKEND`` environment variable):

* ``"thread"`` — a ``concurrent.futures`` thread pool in-process; cheap,
  always available, but the per-shard numpy bookkeeping contends on the
  GIL;
* ``"process"`` — a :class:`~repro.serving.workers.ShardWorkerPool` of
  long-lived worker processes, each shipped its pickled shard once at
  startup; scoring requests carry only the micro-batch's query matrices
  and id arrays, so N shards score on N independent GILs.  Falls back to
  threads (with a warning) when the platform cannot fork or spawn.

Embeddings are distributed warm-start: the full matrix is computed (or
loaded from the persisted ref cache) once and sliced per shard —
:meth:`ShardedKB.distribute` re-slices after a weight refresh without
touching the shard views, and pushes the fresh slices (plus the
refreshed matcher state) to live process workers.

When built with a ``retrieval_index`` (see :mod:`repro.retrieval`), each
shard also carries its slice of the sublinear candidate index —
:meth:`ShardedKB.candidates_for` fans a surface form across the shards
and unions the shard-local shortlists, on the same thread/process
backends as scoring.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.pipeline import EDPipeline
from ..core.query_graph import QueryGraph
from ..graph.hetero import HeteroGraph
from ..retrieval.base import RetrievalIndex
from ..storage import StorageConfig, shared_memory_available
from .workers import (
    CandidateJob,
    RetrievalSpec,
    ScoreJob,
    ScorerSpec,
    ShardPayload,
    ShardWorkerError,
    ShardWorkerPool,
    resolve_shard_backend,
)


@dataclass
class KBShard:
    """One partition of the reference KB.

    ``node_ids`` are the global KB ids this shard owns (every id with
    ``id % num_shards == index``, ascending); row ``i`` of ``h_ref`` /
    ``x_ref`` and node ``i`` of :attr:`view` correspond to global node
    ``node_ids[i]``, so the local row of global id ``g`` is simply
    ``g // num_shards``.
    """

    index: int
    node_ids: np.ndarray
    h_ref: np.ndarray
    x_ref: np.ndarray
    kb: HeteroGraph
    #: shard-local slice of the sublinear candidate index (global ids),
    #: present when the ``ShardedKB`` was built with one
    retrieval: Optional[RetrievalIndex] = None
    _view: Optional[HeteroGraph] = None

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def view(self) -> HeteroGraph:
        """Shard-local induced subgraph, built lazily: the thread-based
        scoring path only needs ``h_ref``/``x_ref`` rows, so the O(V+E)
        extraction is deferred until a consumer (e.g. a process-based
        worker that must re-embed locally) actually asks for it.  Any KB
        change rebuilds the whole ``ShardedKB``, so the cache stays
        consistent."""
        if self._view is None:
            self._view = self.kb.subgraph(self.node_ids)
        return self._view


class ShardedKB:
    """Candidate-id-routed shards of the KB with fan-out scoring."""

    def __init__(
        self,
        pipeline: EDPipeline,
        num_shards: int,
        ref_embeddings: Optional[np.ndarray] = None,
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
        storage: Optional[StorageConfig] = None,
        ref_features: Optional[np.ndarray] = None,
        retrieval_index: Optional[RetrievalIndex] = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.pipeline = pipeline
        self.num_shards = num_shards
        self.backend = resolve_shard_backend(backend)
        self.storage = storage or StorageConfig()
        self.retrieval_index = retrieval_index
        # Warm start: reuse an already-computed (or cache-loaded) matrix
        # instead of re-embedding the KB per shard.
        h_ref = pipeline.ref_embeddings() if ref_embeddings is None else np.asarray(ref_embeddings)
        if h_ref.shape[0] != pipeline.kb.num_nodes:
            raise ValueError("ref_embeddings rows must match the KB node count")
        kb = pipeline.kb
        # The feature matrix may be store-backed (e.g. an mmap of a packed
        # bundle) rather than the KB's live array; slicing either yields
        # identical bytes in a regular per-shard array.
        features = kb.features if ref_features is None else np.asarray(ref_features)
        if features.shape[0] != kb.num_nodes:
            raise ValueError("ref_features rows must match the KB node count")
        self.shards: List[KBShard] = []
        for index in range(num_shards):
            node_ids = np.arange(index, kb.num_nodes, num_shards, dtype=np.int64)
            self.shards.append(
                KBShard(
                    index=index,
                    node_ids=node_ids,
                    h_ref=np.ascontiguousarray(h_ref[node_ids]),
                    x_ref=np.ascontiguousarray(features[node_ids]),
                    kb=kb,
                    retrieval=(
                        None
                        if retrieval_index is None
                        else retrieval_index.slice_for(node_ids)
                    ),
                )
            )
        # Per-shard score telemetry for the thread/inline paths (process
        # workers report their own timings over the reply pipe; see
        # shard_telemetry for the merged view).
        self._telemetry_lock = threading.Lock()
        self._shard_calls = [0] * num_shards
        self._shard_seconds = [0.0] * num_shards
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pool: Optional[ShardWorkerPool] = None
        if num_shards > 1:
            if self.backend == "process":
                self._pool = self._build_pool()
            if self._pool is None:
                workers = max_workers or min(num_shards, os.cpu_count() or 1)
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="kb-shard"
                )
        else:
            # One shard scores inline — reporting "process" here would
            # claim workers that do not exist.
            self.backend = "thread"

    def _build_pool(self) -> Optional[ShardWorkerPool]:
        """Fork the long-lived shard workers, shipping each its pickled
        shard (view + embedding slice + scorer state) once.  A startup
        failure — fork/resource errors, a worker dying in its handshake,
        an unpicklable payload — degrades to the thread backend instead
        of taking the service down."""
        import pickle
        import warnings

        scorer = ScorerSpec.from_model(self.pipeline.model)
        # Arena mode publishes the matrices into shared memory and ships
        # descriptors; workers score without the subgraph view, so the
        # O(V+E) extraction (and its pickle bytes) is skipped entirely.
        # The classic pickled path keeps shipping the view unchanged.
        use_arena = self.storage.share_payloads and shared_memory_available()
        payloads = [
            ShardPayload(
                index=shard.index,
                num_shards=self.num_shards,
                node_ids=shard.node_ids,
                h_ref=shard.h_ref,
                x_ref=shard.x_ref,
                scorer=scorer,
                view=None if use_arena else shard.view,
                retrieval=(
                    None
                    if shard.retrieval is None
                    else RetrievalSpec.from_index(shard.retrieval)
                ),
            )
            for shard in self.shards
        ]
        try:
            return ShardWorkerPool(payloads, use_arena=use_arena)
        # TypeError/AttributeError are what the pickler actually raises
        # for unpicklable payload members ("cannot pickle '...' object").
        except (
            OSError, ShardWorkerError, pickle.PickleError, TypeError, AttributeError
        ) as exc:
            warnings.warn(
                f"could not start process shard workers ({exc}); "
                "falling back to threads",
                RuntimeWarning,
                stacklevel=3,
            )
            self.backend = "thread"
            return None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, candidate_id: int) -> int:
        """Index of the shard owning a global candidate id."""
        return int(candidate_id) % self.num_shards

    def local_id(self, candidate_id: int) -> int:
        """Row of ``candidate_id`` inside its owning shard."""
        return int(candidate_id) // self.num_shards

    # ------------------------------------------------------------------
    # Embedding refresh
    # ------------------------------------------------------------------
    def distribute(self, ref_embeddings: np.ndarray) -> None:
        """Re-slice a freshly computed full embedding matrix into the
        shards (warm-start after a weight refresh; views are untouched).
        Live process workers receive their fresh slice plus the current
        matcher state over the pipe — no worker restart."""
        ref_embeddings = np.asarray(ref_embeddings)
        if ref_embeddings.shape[0] != self.pipeline.kb.num_nodes:
            raise ValueError("ref_embeddings rows must match the KB node count")
        for shard in self.shards:
            shard.h_ref = np.ascontiguousarray(ref_embeddings[shard.node_ids])
        if self._pool is not None:
            self._pool.distribute(
                [shard.h_ref for shard in self.shards],
                ScorerSpec.from_model(self.pipeline.model),
            )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_pairs_flat(
        self,
        h_query: Tensor,
        query_ids: np.ndarray,
        ref_ids: np.ndarray,
        x_query: Optional[Tensor] = None,
    ) -> np.ndarray:
        """Fan aligned (query node, global KB node) pairs out to the shard
        workers and gather the scores back into input order.

        Drop-in for the flat ``model.score_pairs(...).data`` call of the
        unsharded path; per-pair math makes the merge exact.
        """
        query_ids = np.asarray(query_ids, dtype=np.int64)
        ref_ids = np.asarray(ref_ids, dtype=np.int64)
        if len(ref_ids) == 0:
            return np.zeros(0, dtype=np.float32)
        owner = ref_ids % self.num_shards
        tasks = []
        for shard in self.shards:
            positions = np.nonzero(owner == shard.index)[0]
            if len(positions) == 0:
                continue
            tasks.append((positions, shard, query_ids[positions], ref_ids[positions] // self.num_shards))

        if self._pool is not None:
            # Process fan-out: the chunk references only a handful of
            # distinct query rows (one mention node per graph), so ship
            # just those rows — remapped parent-side — rather than the
            # whole union embedding matrix; each worker gathers and
            # scores against its resident shard on a private GIL.  Row
            # selection is exact, so scores are unchanged.
            unique_ids, remapped = np.unique(query_ids, return_inverse=True)
            h_q = h_query.data[unique_ids]
            x_q = x_query.data[unique_ids] if x_query is not None else None
            jobs = [
                ScoreJob(
                    shard_index=shard.index,
                    h_query=h_q,
                    query_ids=remapped[positions],
                    ref_ids=local_ids,
                    x_query=x_q,
                )
                for positions, shard, _, local_ids in tasks
            ]
            parts = list(
                zip([positions for positions, *_ in tasks], self._pool.score_many(jobs))
            )
        elif self._executor is None or len(tasks) <= 1:
            parts = [
                (positions, self._score_on_shard(shard, h_query, q_ids, local_ids, x_query))
                for positions, shard, q_ids, local_ids in tasks
            ]
        else:
            futures = [
                (positions, self._executor.submit(
                    self._score_on_shard, shard, h_query, q_ids, local_ids, x_query
                ))
                for positions, shard, q_ids, local_ids in tasks
            ]
            parts = [(positions, future.result()) for positions, future in futures]

        out = np.empty(len(ref_ids), dtype=parts[0][1].dtype)
        for positions, scores in parts:
            out[positions] = scores
        return out

    def _score_on_shard(
        self,
        shard: KBShard,
        h_query: Tensor,
        query_ids: np.ndarray,
        local_ids: np.ndarray,
        x_query: Optional[Tensor],
    ) -> np.ndarray:
        t0 = perf_counter()
        with no_grad():
            scores = self.pipeline.model.score_pairs(
                h_query,
                query_ids,
                Tensor(shard.h_ref),
                local_ids,
                x_query=x_query,
                x_ref=Tensor(shard.x_ref),
            ).data
        with self._telemetry_lock:
            self._shard_calls[shard.index] += 1
            self._shard_seconds[shard.index] += perf_counter() - t0
        return scores

    def score_candidates(self, qg: QueryGraph, candidate_ids: np.ndarray) -> np.ndarray:
        """Sharded equivalent of :meth:`EDPipeline.score_candidates`: one
        query-graph forward, then candidate scoring fanned across shards."""
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        model = self.pipeline.model
        model.eval()
        with no_grad():
            compiled = model.compile(qg.graph)
            x_qry = Tensor(qg.graph.features)
            h_qry = model.embed(compiled, x_qry)
        mention_ids = np.full(len(candidate_ids), qg.mention_node, dtype=np.int64)
        return self.score_pairs_flat(h_qry, mention_ids, candidate_ids, x_query=x_qry)

    # ------------------------------------------------------------------
    # Candidate shortlisting
    # ------------------------------------------------------------------
    def candidates_for(
        self, surface: str, query_vec: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Union of the shard-local retrieval shortlists for a surface.

        Each shard's slice keeps global node ids and the full index's
        global weights (idf/norms for n-gram, hyperplanes for LSH), so a
        shard's local top-``shortlist`` is at least as deep as the global
        ranking restricted to its nodes — the union is a superset of the
        unsharded shortlist.  ``query_vec`` is the surface's embedder
        vector; the LSH backend requires it on the process backend
        (workers hold no embedder).  Returns sorted unique int64 ids.
        """
        shards = [shard for shard in self.shards if shard.retrieval is not None]
        if not shards:
            raise RuntimeError(
                "ShardedKB was built without a retrieval index; "
                "pass retrieval_index= to shard candidate shortlisting"
            )
        if query_vec is not None:
            query_vec = np.ascontiguousarray(query_vec, dtype=np.float32)
        if self._pool is not None:
            jobs = [
                CandidateJob(
                    shard_index=shard.index, surface=surface, query_vec=query_vec
                )
                for shard in shards
            ]
            parts = self._pool.score_many(jobs)
        elif self._executor is not None and len(shards) > 1:
            futures = [
                self._executor.submit(
                    shard.retrieval.query, surface, query_vec=query_vec
                )
                for shard in shards
            ]
            parts = [future.result() for future in futures]
        else:
            parts = [
                shard.retrieval.query(surface, query_vec=query_vec)
                for shard in shards
            ]
        return np.unique(
            np.concatenate([np.asarray(part, dtype=np.int64) for part in parts])
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedKB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def worker_pool(self) -> Optional[ShardWorkerPool]:
        """The process worker pool, or ``None`` on the thread backend."""
        return self._pool

    @property
    def respawns(self) -> int:
        """Lifetime worker respawns (0 on the thread backend)."""
        return self._pool.respawns if self._pool is not None else 0

    def shard_telemetry(self) -> Tuple[List[int], List[float]]:
        """Per-shard (score calls, wall seconds), merged across backends:
        thread/inline scoring is timed parent-side, process workers
        report their own compute time over the reply pipe."""
        with self._telemetry_lock:
            calls = list(self._shard_calls)
            seconds = list(self._shard_seconds)
        if self._pool is not None:
            calls = [c + pc for c, pc in zip(calls, self._pool.shard_calls)]
            seconds = [s + ps for s, ps in zip(seconds, self._pool.shard_seconds)]
        return calls, seconds

    @property
    def payload_ship_bytes(self) -> int:
        """Bytes of payload (init/refresh) traffic actually written to
        the worker command pipes (0 on the thread backend)."""
        return self._pool.payload_ship_bytes if self._pool is not None else 0

    @property
    def arena_segments(self) -> int:
        """Shared-memory segments currently published for the workers
        (0 without an arena)."""
        pool = self._pool
        if pool is None or pool.arena is None:
            return 0
        return pool.arena.num_segments

    def __repr__(self) -> str:
        sizes = "+".join(str(s.num_nodes) for s in self.shards)
        return (
            f"ShardedKB(num_shards={self.num_shards}, "
            f"backend={self.backend!r}, nodes={sizes})"
        )
