"""Admission control and adaptive batch policy for the serving stack.

Production entity-linking traffic is bursty: when arrivals exceed the
service's compute capacity, an unbounded queue turns every request into
a timeout.  The classic remedy (and the Clipper-style serving designs in
PAPERS.md) is to *shed early*: bound the queue, reject the overflow with
a structured 429 that carries a ``Retry-After`` hint, and keep the
admitted requests inside their latency contract.

Three pieces, all policy-only (no threads, no wall clock — callers pass
``now`` exactly like :class:`~repro.serving.scheduler.DeadlineBatcher`,
so every decision is unit-testable with a fake clock):

* :class:`AdmissionConfig` — the declarative policy object.  A strict
  frozen section of :class:`~repro.serving.service.ServiceConfig`, so a
  :class:`~repro.api.LinkerConfig` JSON declares overload behaviour the
  same way it declares sharding or storage; the ``REPRO_ADMISSION``
  environment variable supplies the default shed policy.
* :class:`AdmissionController` — the gate in front of the batcher queue.
  Sheds by queue depth and, under ``shed_policy="wait"``, by estimated
  queue wait (depth x an EWMA of observed per-request drain cost).
  Priority classes (``high`` / ``normal`` / ``low``) see scaled budgets:
  low-priority traffic is shed first, and ``normal`` leaves headroom so
  ``high`` still admits at the bound.
* :class:`AdaptiveTuner` — closes the telemetry->policy loop.  AIMD on
  the scheduler's ``deadline_ms`` / max batch size against a sliding
  window of observed queue-wait p95s: multiplicative backoff when the
  p95 blows the target, additive recovery when it is comfortably under,
  always clamped to the configured floor/ceiling.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

import numpy as np

__all__ = [
    "PRIORITIES",
    "DEFAULT_PRIORITY",
    "SHED_POLICIES",
    "PRIORITY_HEADROOM",
    "default_shed_policy",
    "AdmissionConfig",
    "AdmissionError",
    "AdmissionController",
    "AdaptiveTuner",
]

#: priority classes in flush order (highest first); also the wire values
#: accepted on :class:`~repro.serving.wire.LinkItem.priority`
PRIORITIES = ("high", "normal", "low")
DEFAULT_PRIORITY = "normal"

#: shedding policies: "none" keeps today's unbounded queue, "depth"
#: bounds queue depth at ``max_queue``, "wait" additionally sheds when
#: the estimated queue wait exceeds the budget
SHED_POLICIES = ("none", "depth", "wait")

#: fraction of the depth/wait budget each priority class may consume —
#: low is shed first, and normal leaves headroom so high still admits
#: when the queue is nearly full
PRIORITY_HEADROOM = {"high": 1.0, "normal": 0.8, "low": 0.5}

#: EWMA smoothing for the observed per-request drain cost
EWMA_ALPHA = 0.2

#: AIMD constants: multiplicative backoff factor, additive recovery steps
AIMD_BACKOFF = 0.5
DEADLINE_STEP_MS = 1.0
BATCH_STEP = 1


def default_shed_policy() -> str:
    """Shed policy from ``REPRO_ADMISSION`` (default: ``"none"``)."""
    return os.environ.get("REPRO_ADMISSION", "none")


@dataclass(frozen=True)
class AdmissionConfig:
    """Overload policy of the async serving stack.

    Lives inside :class:`~repro.serving.service.ServiceConfig` as the
    ``admission`` section; the round trip through
    :class:`~repro.api.LinkerConfig` JSON is strict and exact like every
    other config section (unknown keys and values are rejected).
    """

    # Shedding policy (see SHED_POLICIES); defaults to $REPRO_ADMISSION.
    shed_policy: str = field(default_factory=default_shed_policy)
    max_queue: int = 256  # queued-request bound for the depth check
    # Estimated-wait budget for shed_policy="wait"; 0 inherits the
    # scheduler's deadline_ms (the latency contract already in force).
    max_wait_ms: float = 0.0
    # Adaptive tuning (AdaptiveTuner) of deadline_ms / max batch size.
    adaptive: bool = False
    target_p95_ms: float = 0.0  # tuner's queue-wait p95 target; 0 = deadline_ms
    tuner_window: int = 64  # queue-wait observations per adjustment window
    tuner_interval_ms: float = 250.0  # min spacing between adjustments
    min_deadline_ms: float = 5.0  # tuner floor for deadline_ms
    max_deadline_ms: float = 250.0  # tuner ceiling for deadline_ms
    min_batch_size: int = 1  # tuner floor for the max batch size

    def __post_init__(self):
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r}; "
                f"options: {SHED_POLICIES}"
            )
        if self.max_queue < 1:
            raise ValueError("admission max_queue must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("admission max_wait_ms must be >= 0")
        if self.target_p95_ms < 0:
            raise ValueError("admission target_p95_ms must be >= 0")
        if self.tuner_window < 2:
            raise ValueError("admission tuner_window must be >= 2")
        if self.tuner_interval_ms <= 0:
            raise ValueError("admission tuner_interval_ms must be > 0")
        if self.min_deadline_ms <= 0:
            raise ValueError("admission min_deadline_ms must be > 0")
        if self.max_deadline_ms < self.min_deadline_ms:
            raise ValueError(
                "admission max_deadline_ms must be >= min_deadline_ms"
            )
        if self.min_batch_size < 1:
            raise ValueError("admission min_batch_size must be >= 1")


class AdmissionError(RuntimeError):
    """A request shed by admission control.

    Maps to HTTP 429 with a ``Retry-After`` header; ``retry_after_ms``
    is the controller's estimate of when the queue will have drained
    back under budget.
    """

    def __init__(
        self, message: str, *, reason: str, priority: str, retry_after_ms: float
    ):
        super().__init__(message)
        self.reason = reason  # "queue_depth" | "estimated_wait"
        self.priority = priority
        self.retry_after_ms = retry_after_ms


class AdmissionController:
    """Pure shed-or-admit policy over the batcher's queue depth.

    Holds no lock and reads no clock; the scheduler calls :meth:`check`
    under its own condition variable and feeds
    :meth:`observe_batch` from completed batches so the estimated-wait
    model tracks the service's real drain rate.
    """

    def __init__(self, config: AdmissionConfig, deadline_ms: float):
        self.config = config
        self.wait_budget_ms = (
            config.max_wait_ms if config.max_wait_ms > 0 else deadline_ms
        )
        self._per_item_ms: Optional[float] = None  # EWMA drain cost / request

    @property
    def enabled(self) -> bool:
        return self.config.shed_policy != "none"

    def observe_batch(self, size: int, seconds: float) -> None:
        """Fold one completed batch into the drain-cost EWMA."""
        if size <= 0:
            return
        per_item = seconds * 1000.0 / size
        if self._per_item_ms is None:
            self._per_item_ms = per_item
        else:
            self._per_item_ms += EWMA_ALPHA * (per_item - self._per_item_ms)

    def estimated_wait_ms(self, depth: int) -> float:
        """Expected queue wait at ``depth`` (0.0 before any batch ran)."""
        if self._per_item_ms is None:
            return 0.0
        return depth * self._per_item_ms

    def retry_after_ms(self, depth: int) -> float:
        """Retry hint for a shed request: the estimated drain time of the
        current queue, floored at the wait budget."""
        return max(self.estimated_wait_ms(max(depth, 1)), self.wait_budget_ms)

    def depth_budget(self, priority: str) -> int:
        return max(1, int(self.config.max_queue * PRIORITY_HEADROOM[priority]))

    def check(self, priority: str, depth: int) -> Optional[AdmissionError]:
        """The shed decision for one arriving request, or None to admit."""
        if not self.enabled:
            return None
        budget = self.depth_budget(priority)
        if depth >= budget:
            return AdmissionError(
                f"queue depth {depth} is at the {priority!r}-priority "
                f"bound of {budget} (max_queue={self.config.max_queue})",
                reason="queue_depth",
                priority=priority,
                retry_after_ms=self.retry_after_ms(depth),
            )
        if self.config.shed_policy == "wait":
            wait = self.estimated_wait_ms(depth + 1)
            wait_budget = self.wait_budget_ms * PRIORITY_HEADROOM[priority]
            if wait > wait_budget:
                return AdmissionError(
                    f"estimated queue wait {wait:.1f}ms exceeds the "
                    f"{priority!r}-priority budget of {wait_budget:.1f}ms",
                    reason="estimated_wait",
                    priority=priority,
                    retry_after_ms=self.retry_after_ms(depth),
                )
        return None


class AdaptiveTuner:
    """AIMD tuner of the scheduler's ``deadline_ms`` / max batch size.

    Observes per-request queue waits (submit -> batch formed, the metric
    the deadline contract is written against); once a window holds
    enough samples and ``tuner_interval_ms`` has elapsed since the last
    adjustment, compares the window's p95 to the target:

    * p95 over target — multiplicative backoff: halve the deadline and
      the batch size (flush sooner and smaller), clamped to the floors;
    * p95 under half the target — additive recovery: one step back
      toward the configured ceilings;
    * otherwise — stable, no change.

    The window is cleared after every adjustment so the next decision
    reflects only the new policy.  Like ``DeadlineBatcher`` it never
    reads the clock — callers pass ``now`` — so convergence is provable
    with a fake clock.
    """

    def __init__(self, config: AdmissionConfig, deadline_ms: float, max_batch_size: int):
        self.config = config
        self.target_ms = (
            config.target_p95_ms if config.target_p95_ms > 0 else deadline_ms
        )
        self.floor_ms = config.min_deadline_ms
        self.ceiling_ms = config.max_deadline_ms
        self.deadline_ms = min(max(deadline_ms, self.floor_ms), self.ceiling_ms)
        self.batch_floor = config.min_batch_size
        self.batch_ceiling = max(max_batch_size, config.min_batch_size)
        self.batch_size = self.batch_ceiling
        self.adjustments = 0
        self._window: Deque[float] = deque(maxlen=config.tuner_window)
        self._last_adjust_at: Optional[float] = None

    def observe(self, queue_wait_ms: float, now: float) -> bool:
        """Record one queue wait; True when the policy just changed."""
        self._window.append(queue_wait_ms)
        return self.maybe_adjust(now)

    def window_p95(self) -> float:
        if not self._window:
            return 0.0
        return float(np.percentile(np.asarray(self._window), 95))

    def maybe_adjust(self, now: float) -> bool:
        """One AIMD step if a decision is due; True when policy changed."""
        if len(self._window) < max(2, (self._window.maxlen or 2) // 2):
            return False
        if (
            self._last_adjust_at is not None
            and (now - self._last_adjust_at) * 1000.0 < self.config.tuner_interval_ms
        ):
            return False
        p95 = self.window_p95()
        deadline, batch = self.deadline_ms, self.batch_size
        if p95 > self.target_ms:
            deadline = max(self.floor_ms, self.deadline_ms * AIMD_BACKOFF)
            batch = max(self.batch_floor, self.batch_size // 2)
        elif p95 <= 0.5 * self.target_ms:
            deadline = min(self.ceiling_ms, self.deadline_ms + DEADLINE_STEP_MS)
            batch = min(self.batch_ceiling, self.batch_size + BATCH_STEP)
        self._last_adjust_at = now
        if deadline == self.deadline_ms and batch == self.batch_size:
            return False
        self.deadline_ms = deadline
        self.batch_size = batch
        self.adjustments += 1
        self._window.clear()
        return True
