"""The network front door: an asyncio + stdlib HTTP server over the
deadline-aware linking service.

Everything below :class:`LinkingHTTPServer` is in-process only; this
module turns the serving stack into a deployable network service without
adding a single dependency — the HTTP/1.1 framing is hand-rolled over
``asyncio.start_server`` (keep-alive, chunked responses for streams) and
the payloads are the typed, schema-versioned wire dataclasses of
:mod:`repro.serving.wire`.

Endpoints:

* ``POST /link`` — a :class:`~repro.serving.wire.LinkRequest` (single
  snippet or batch); the response's predictions are bit-identical to
  ``LinkingService.link_batch`` on the same snippets.  Requests from
  concurrent connections share micro-batches through the wrapped
  :class:`~repro.serving.AsyncLinkingService`.
* ``POST /link_stream`` — NDJSON bulk jobs: each input line is one
  :class:`~repro.serving.wire.LinkItem` payload; each output line is a
  prediction (or a per-line :class:`~repro.serving.wire.ErrorResponse`
  for unparseable input), flushed incrementally in input order as
  micro-batches complete.
* ``GET /healthz`` — liveness; reports (and returns 503 for) a draining
  server so load balancers stop routing before shutdown.
* ``GET /stats`` — :class:`~repro.serving.ServiceStats` as JSON, or
  Prometheus text exposition when the ``Accept`` header asks for
  ``text/plain``.

Errors are structured: malformed JSON, unknown keys and schema-version
mismatches are 400s carrying an ``ErrorResponse`` body, an oversized
batch or body is a 413, and any request arriving while the server drains
is a 503.  :meth:`LinkingHTTPServer.close` drains: new work is refused
with 503 while in-flight futures complete, then the wrapped async
service shuts down on its existing injected clock.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple

from ..core.pipeline import EDPipeline
from .admission import AdmissionError
from .scheduler import AsyncLinkingService
from .service import HttpConfig, LinkingService
from .stats import ServiceStats
from .wire import (
    WIRE_SCHEMA_VERSION,
    ErrorResponse,
    LinkItem,
    LinkRequest,
    LinkResponse,
    WireError,
    WirePrediction,
)

__all__ = ["LinkingHTTPServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: request head (request line + headers) size cap
_MAX_HEAD_BYTES = 64 * 1024

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"  # Prometheus exposition


class _HttpError(Exception):
    """Internal routing signal: status + structured error body (plus any
    extra response headers, e.g. ``Retry-After`` on a 429)."""

    def __init__(
        self, status: int, error: ErrorResponse, headers: Optional[dict] = None
    ):
        super().__init__(error.message)
        self.status = status
        self.error = error
        self.headers = headers or {}


def _shed_http_error(exc: AdmissionError) -> _HttpError:
    """An admission shed as a 429: the structured body carries the
    controller's ``retry_after_ms`` estimate, the ``Retry-After`` header
    the same hint in whole seconds (ceiling, so never 0)."""
    retry_after_s = max(1, int(-(-exc.retry_after_ms // 1000)))
    return _HttpError(
        429,
        ErrorResponse(
            "overloaded", str(exc), retry_after_ms=round(exc.retry_after_ms, 3)
        ),
        headers={"Retry-After": str(retry_after_s)},
    )


def _wire_http_error(exc: WireError, detail: Optional[str] = None) -> _HttpError:
    return _HttpError(exc.status, exc.to_response(detail))


class LinkingHTTPServer:
    """Serve a linker over HTTP (see the module docstring for the API).

    Accepts a ready :class:`AsyncLinkingService`, or anything an async
    service can wrap — a :class:`LinkingService`, a raw
    :class:`EDPipeline`, or a :class:`repro.api.Linker` facade — in which
    case the scheduler is built here with the config's ``deadline_ms``
    budget.  The server owns what it builds (and adopts what it is
    given): :meth:`close` drains the HTTP layer first, then closes the
    async service, which drains its queue and shard workers on the
    injected clock they already carry.

        server = LinkingHTTPServer(linker.serve(), HttpConfig(port=0))
        server.start()                      # or: with server: ...
        print(server.port)                  # the bound port
        server.close()                      # drain, then shut down
    """

    def __init__(self, service, config: Optional[HttpConfig] = None):
        self.config = config or HttpConfig()
        if isinstance(service, AsyncLinkingService):
            self.service = service
        else:
            if not isinstance(service, (LinkingService, EDPipeline)):
                # A Linker facade (duck-typed; http sits below the api layer).
                service = getattr(service, "pipeline", service)
            self.service = AsyncLinkingService(
                service, deadline_ms=self.config.deadline_ms
            )
        self.host = self.config.host
        self.port = self.config.port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._start_error: Optional[BaseException] = None
        self._in_flight = 0
        self._draining = False
        self._closed = threading.Event()

    @property
    def stats(self) -> ServiceStats:
        return self.service.stats

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LinkingHTTPServer":
        """Bind and serve in a background thread; returns once the socket
        is listening (``self.port`` then holds the real port, also with
        ``port=0``).  Raises the bind error (e.g. address in use)."""
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="linking-http-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            self._thread.join()
            raise self._start_error
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection, self.host, self.port,
                    limit=_MAX_HEAD_BYTES,
                )
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._server.close()
            self._loop.run_until_complete(self._server.wait_closed())
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    def drain(self) -> None:
        """Refuse new work with 503; in-flight requests keep completing."""
        self._draining = True

    def close(self, drain_timeout: float = 30.0) -> None:
        """Drain, wait for in-flight requests, stop serving, shut down the
        wrapped async service (which drains its own queue and shard
        workers on the clock injected at construction)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self.drain()
        if self._thread is not None and self._start_error is None:
            self._idle.wait(drain_timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
        self.service.close()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`close` is called (the CLI's foreground
        mode); returns whether the server closed within ``timeout``."""
        return self._closed.wait(timeout)

    def __enter__(self) -> "LinkingHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                try:
                    method, path, headers = self._parse_head(head)
                except _HttpError as exc:
                    await self._write_error(writer, exc, keep_alive=False)
                    return
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    body = await self._read_body(reader, headers)
                except _HttpError as exc:
                    # The body was not consumed; the framing is lost, so
                    # the connection cannot be reused.
                    await self._write_error(writer, exc, keep_alive=False)
                    return
                try:
                    await self._dispatch(method, path, headers, body, writer, keep_alive)
                except _HttpError as exc:
                    await self._write_error(writer, exc, keep_alive)
                except ConnectionError:
                    return
                except Exception as exc:  # surface, never kill the server
                    await self._write_error(
                        writer,
                        _HttpError(500, ErrorResponse("internal", repr(exc))),
                        keep_alive,
                    )
                if not keep_alive:
                    return
        finally:
            writer.close()

    def _parse_head(self, head: bytes) -> Tuple[str, str, dict]:
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(
                400, ErrorResponse("bad_request", "malformed HTTP request line")
            ) from None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(
                    400, ErrorResponse("bad_request", f"malformed header {line!r}")
                )
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target.split("?", 1)[0], headers

    async def _read_body(self, reader, headers: dict) -> bytes:
        if "transfer-encoding" in headers:
            raise _HttpError(
                400,
                ErrorResponse("bad_request", "chunked request bodies are not supported"),
            )
        raw = headers.get("content-length", "0")
        try:
            length = int(raw)
            if length < 0:
                raise ValueError
        except ValueError:
            raise _HttpError(
                400, ErrorResponse("bad_request", f"bad Content-Length {raw!r}")
            ) from None
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                ErrorResponse(
                    "payload_too_large",
                    f"request body of {length} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit",
                ),
            )
        if length == 0:
            return b""
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _HttpError(
                400, ErrorResponse("bad_request", "request body shorter than Content-Length")
            ) from None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method, path, headers, body, writer, keep_alive) -> None:
        route = {
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/stats"): self._get_stats,
        }.get((method, path))
        if route is not None:
            status, content_type, payload = route(headers)
            await self._write(writer, status, payload, content_type, keep_alive)
            return
        if path == "/link" or path == "/link_stream":
            if method != "POST":
                raise _HttpError(
                    405, ErrorResponse("method_not_allowed", f"{path} expects POST")
                )
            if self._draining:
                raise _HttpError(
                    503, ErrorResponse("draining", "server is draining; retry elsewhere")
                )
            self._enter()
            try:
                if path == "/link":
                    status, content_type, payload = await self._post_link(body)
                    await self._write(writer, status, payload, content_type, keep_alive)
                else:
                    await self._post_link_stream(body, writer, keep_alive)
            finally:
                self._exit()
            return
        raise _HttpError(404, ErrorResponse("not_found", f"no route for {method} {path}"))

    def _enter(self) -> None:
        self._in_flight += 1
        self._idle.clear()

    def _exit(self) -> None:
        self._in_flight -= 1
        if self._in_flight == 0:
            self._idle.set()

    def _get_healthz(self, headers: dict) -> Tuple[int, str, bytes]:
        status = "draining" if self._draining else "ok"
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "status": status,
            "in_flight": self._in_flight,
        }
        code = 503 if self._draining else 200
        return code, _JSON, json.dumps(payload).encode()

    def _get_stats(self, headers: dict) -> Tuple[int, str, bytes]:
        accept = headers.get("accept", "")
        if "text/plain" in accept:
            return 200, _TEXT, self.stats.to_prometheus().encode()
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "stats": self.stats.to_dict(),
        }
        return 200, _JSON, json.dumps(payload).encode()

    # ------------------------------------------------------------------
    # Work endpoints
    # ------------------------------------------------------------------
    def _resolve_snippet(self, item: LinkItem, where: str):
        if item.snippet is not None:
            return item.snippet
        try:
            return self.service.pipeline.snippet_from_text(item.text, item.mention)
        except ValueError as exc:
            raise WireError(f"{where}: {exc}") from None

    def _submit(self, snippet, priority: str = "normal"):
        try:
            return self.service.submit(snippet, priority=priority)
        except AdmissionError as exc:  # shed: 429 + Retry-After, not 503
            raise _shed_http_error(exc) from None
        except RuntimeError as exc:  # the async service is already closed
            raise _HttpError(503, ErrorResponse("draining", str(exc))) from None

    def _to_wire(self, prediction, top_k: Optional[int]) -> WirePrediction:
        if top_k is not None:
            prediction = type(prediction)(
                mention=prediction.mention,
                ranked_entities=prediction.ranked_entities[:top_k],
                scores=prediction.scores[:top_k],
            )
        names = tuple(
            self.service.pipeline.entity_name(e) for e in prediction.ranked_entities
        )
        return WirePrediction.from_prediction(prediction, entity_names=names)

    async def _post_link(self, body: bytes) -> Tuple[int, str, bytes]:
        try:
            request = LinkRequest.from_json(body)
            if len(request.items) > self.config.max_batch:
                raise WireError(
                    f"{len(request.items)} items exceed the per-request "
                    f"limit of {self.config.max_batch}",
                    code="payload_too_large",
                    status=413,
                )
            snippets = [
                self._resolve_snippet(item, f"items[{i}]")
                for i, item in enumerate(request.items)
            ]
        except WireError as exc:
            raise _wire_http_error(exc) from None
        # All-or-nothing admission: when an item is shed mid-request the
        # already-queued siblings are cancelled and the whole request is
        # the 429 (partial responses would break the items<->predictions
        # alignment the wire contract promises).
        futures = []
        try:
            for snippet, item in zip(snippets, request.items):
                futures.append(self._submit(snippet, item.priority))
        except _HttpError:
            for future in futures:
                future.cancel()
            raise
        predictions = await asyncio.gather(
            *(asyncio.wrap_future(f) for f in futures)
        )
        response = LinkResponse(
            predictions=tuple(self._to_wire(p, request.top_k) for p in predictions)
        )
        return 200, _JSON, response.to_json().encode()

    async def _post_link_stream(self, body: bytes, writer, keep_alive: bool) -> None:
        """NDJSON in, NDJSON out: results flush incrementally in input
        order; a bad input line becomes an ErrorResponse line instead of
        aborting the job."""
        head = (
            f"HTTP/1.1 200 {_REASONS[200]}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        lines = [line for line in body.split(b"\n") if line.strip()]
        window = []  # (future | None, error | None) in input order

        async def flush(blocking: bool) -> None:
            while window:
                future, error = window[0]
                if error is None and not blocking and not future.done():
                    break
                window.pop(0)
                if error is not None:
                    payload = error.to_json()
                else:
                    try:
                        prediction = await asyncio.wrap_future(future)
                        payload = json.dumps(self._to_wire(prediction, None).to_dict())
                    except Exception as exc:
                        payload = ErrorResponse("internal", repr(exc)).to_json()
                chunk = payload.encode() + b"\n"
                writer.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                await writer.drain()

        for line in lines:
            try:
                item = LinkItem.from_dict(
                    json.loads(line.decode("utf-8")), where="stream item"
                )
                snippet = self._resolve_snippet(item, "stream item")
                window.append((self._submit(snippet, item.priority), None))
            except (json.JSONDecodeError, UnicodeDecodeError, WireError) as exc:
                window.append(
                    (None, ErrorResponse("parse_error", str(exc), detail=line.decode("utf-8", "replace")))
                )
            except _HttpError as exc:
                # A shed line is a per-line error record (carrying the
                # retry hint) — the rest of the stream keeps flowing.
                window.append((None, exc.error))
            await flush(blocking=False)
        await flush(blocking=True)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------
    async def _write(
        self, writer, status, payload: bytes, content_type, keep_alive,
        extra_headers: Optional[dict] = None,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _write_error(self, writer, exc: _HttpError, keep_alive: bool) -> None:
        try:
            await self._write(
                writer, exc.status, exc.error.to_json().encode(), _JSON, keep_alive,
                extra_headers=exc.headers,
            )
        except ConnectionError:
            pass
