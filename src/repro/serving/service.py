"""Batched, cached inference over a fitted :class:`~repro.core.pipeline.EDPipeline`.

The pipeline's :meth:`disambiguate_snippet` ranks candidates for one
mention at a time, paying per call for a query-graph compile and a GNN
forward.  ``LinkingService`` amortises those costs for service-style
traffic:

* the **reference-embedding cache** — KB node embeddings are computed
  once at construction (optionally persisted to disk) and reused for
  every request; a fingerprint over the model weights and the KB shape
  invalidates the cache when either changes;
* the **micro-batch scheduler** — each request's query graphs are packed
  into disjoint unions of at most ``max_batch_size`` graphs (via
  :func:`repro.graph.batch.batch_graphs`) and embedded in one forward
  pass, with all candidate pairs scored by a single ``score_pairs`` call;
* the **result LRU cache** — rankings are memoised under (normalised
  surface, candidate set, query-graph digest), so repeat mentions skip
  the model entirely;
* :class:`~repro.serving.stats.ServiceStats` — throughput, cache hit
  rate, and batch-size telemetry, surfaced by ``repro serve``.

Results are bit-for-bit identical to the sequential pipeline: a disjoint
union has no cross-graph edges, so message passing never mixes graphs,
and the scoring math is the same ``score_pairs`` the pipeline uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.pipeline import EDPipeline, Prediction
from ..core.query_graph import QueryGraph, build_query_graph
from ..graph.batch import batch_graphs
from ..graph.index import normalize_surface
from ..storage import StorageConfig, open_stores
from ..storage.bundle import content_fingerprint as _content_fingerprint
from ..storage.bundle import weights_crc as _weights_crc
from ..text.corpus import Snippet
from ..text.embedder import HashingNgramEmbedder
from .admission import AdmissionConfig
from .cache import LRUCache
from .stats import ServiceStats
from .workers import SHARD_BACKENDS, default_shard_backend


class MemoizingEmbedder:
    """Surface-embedding memo over a :class:`HashingNgramEmbedder`.

    The hashing embedder is a deterministic pure function of the text, so
    memoising it is exact; in serving traffic the same mention surfaces
    recur across requests, and re-hashing them dominates query-graph
    construction.  Bounded LRU so a high-cardinality stream cannot grow
    it without limit.
    """

    def __init__(self, inner: HashingNgramEmbedder, capacity: int = 65536):
        self.inner = inner
        self._memo = LRUCache(capacity)

    @property
    def dim(self) -> int:
        return self.inner.dim

    def embed(self, text: str) -> np.ndarray:
        vec = self._memo.get(text)
        if vec is None:
            vec = self.inner.embed(text)
            self._memo.put(text, vec)
        return vec

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.inner.dim), dtype=np.float32)
        return np.stack([self.embed(t) for t in texts])


@dataclass(frozen=True)
class HttpConfig:
    """The network endpoint of the HTTP front door
    (:class:`~repro.serving.http.LinkingHTTPServer`).

    Lives inside :class:`ServiceConfig` as the optional ``http`` section,
    so a :class:`~repro.api.LinkerConfig` JSON can declare a fully
    network-served linker; the round trip is strict and exact like every
    other config section.
    """

    host: str = "127.0.0.1"
    port: int = 8080  # 0 binds an ephemeral port (see server.port)
    max_batch: int = 256  # items per /link request; more is a 413
    max_body_bytes: int = 4 * 1024 * 1024  # request body cap; more is a 413
    deadline_ms: float = 25.0  # scheduler budget of the wrapped async service

    def __post_init__(self):
        if not (0 <= self.port <= 65535):
            raise ValueError("http port must be in [0, 65535]")
        if self.max_batch < 1:
            raise ValueError("http max_batch must be >= 1")
        if self.max_body_bytes < 1024:
            raise ValueError("http max_body_bytes must be >= 1024")
        if self.deadline_ms <= 0:
            raise ValueError("http deadline_ms must be > 0")


@dataclass
class ServiceConfig:
    """Knobs of the linking service."""

    max_batch_size: int = 32  # query graphs per disjoint-union forward
    cache_size: int = 2048  # LRU entries; <= 0 disables the result cache
    top_k: int = 5
    restrict_to_candidates: bool = True
    ref_cache_path: Optional[str] = None  # persist KB embeddings here
    num_shards: int = 1  # KB shards for fan-out candidate scoring
    shard_workers: Optional[int] = None  # worker threads (default: one per shard)
    # Shard execution backend: "thread" (in-process pool) or "process"
    # (long-lived forked workers, one GIL per shard).  Defaults to the
    # REPRO_SHARD_BACKEND environment variable when set.
    shard_backend: str = field(default_factory=default_shard_backend)
    # Optional network front door (repro.serving.http); a dict — the shape
    # dataclasses.asdict and the LinkerConfig JSON round trip produce — is
    # strictly coerced into an HttpConfig.
    http: Optional[HttpConfig] = None
    # Where the KB feature table and reference-embedding matrix live and
    # how process-shard payloads ship (repro.storage); like http, the
    # dict form from asdict / the LinkerConfig JSON round trip is
    # strictly coerced.
    storage: StorageConfig = field(default_factory=StorageConfig)
    # Overload policy of the async scheduler (repro.serving.admission):
    # queue bound, shed policy (default $REPRO_ADMISSION), priorities,
    # and the adaptive deadline/batch tuner.  Same strict dict coercion
    # as http/storage, so it round-trips through LinkerConfig JSON.
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard_backend {self.shard_backend!r}; "
                f"options: {SHARD_BACKENDS}"
            )
        if isinstance(self.http, dict):
            try:
                self.http = HttpConfig(**self.http)
            except TypeError as exc:
                raise ValueError(f"bad http section in ServiceConfig: {exc}") from None
        elif self.http is not None and not isinstance(self.http, HttpConfig):
            raise ValueError("ServiceConfig http must be an HttpConfig (or its dict form)")
        if isinstance(self.storage, dict):
            try:
                self.storage = StorageConfig(**self.storage)
            except TypeError as exc:
                raise ValueError(
                    f"bad storage section in ServiceConfig: {exc}"
                ) from None
        elif not isinstance(self.storage, StorageConfig):
            raise ValueError(
                "ServiceConfig storage must be a StorageConfig (or its dict form)"
            )
        if isinstance(self.admission, dict):
            try:
                self.admission = AdmissionConfig(**self.admission)
            except TypeError as exc:
                raise ValueError(
                    f"bad admission section in ServiceConfig: {exc}"
                ) from None
        elif not isinstance(self.admission, AdmissionConfig):
            raise ValueError(
                "ServiceConfig admission must be an AdmissionConfig (or its dict form)"
            )


class LinkingService:
    """High-throughput entity-linking frontend over a fitted pipeline.

    Accepts either the raw :class:`EDPipeline` engine or a
    :class:`repro.api.Linker` facade (unwrapped on entry; prefer
    ``Linker.serve()`` which also applies the config's service section).
    """

    def __init__(self, pipeline, config: Optional[ServiceConfig] = None):
        if not isinstance(pipeline, EDPipeline):
            # A Linker facade (duck-typed: serving must not import the
            # api layer, which sits above it).
            pipeline = getattr(pipeline, "pipeline", pipeline)
        self.pipeline = pipeline
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self._cache = LRUCache(self.config.cache_size)
        self._embedder = MemoizingEmbedder(pipeline.embedder)
        # Where the matrices live (repro.storage): the memory backend is
        # today's live arrays (+ optional .npz persistence via
        # ref_cache_path); the mmap backend serves both matrices as
        # read-only maps of a packed bundle.
        self._kb_store, self._embedding_store = open_stores(
            self.config.storage, pipeline.kb, ref_cache_path=self.config.ref_cache_path
        )
        self._fingerprint: Optional[tuple] = None
        self._h_ref: Optional[Tensor] = None
        self._x_ref: Optional[Tensor] = None
        self._sharded = None  # ShardedKB when config.num_shards > 1
        self.refresh(force=True)

    # ------------------------------------------------------------------
    # Reference-embedding cache
    # ------------------------------------------------------------------
    def _weights_crc(self) -> int:
        return _weights_crc(self.pipeline.model)

    def fingerprint(self) -> tuple:
        """Cheap per-request dirty check: model weights checksum plus the
        KB's mutation counter and shape.  Catches weight updates and any
        KB change made through the ``HeteroGraph`` API (including edge
        rewires that keep counts constant); in-place edits of ``features``
        rows bypass it — call :meth:`refresh` with ``force=True`` after
        such surgery."""
        kb = self.pipeline.kb
        return (self._weights_crc(), kb.version, kb.num_nodes, kb.num_edges)

    def content_fingerprint(self) -> int:
        """Full content checksum (weights + KB nodes/edges/features) that
        keys the *persisted* reference-embedding matrix — unlike
        :meth:`fingerprint` it is stable across processes (it is the key
        both the memory backend's ``.npz`` cache and the mmap bundle's
        manifest carry)."""
        return _content_fingerprint(self.pipeline)

    def refresh(self, force: bool = False) -> bool:
        """Recompute the reference embeddings if the model or KB changed
        since they were cached.  Returns True when a rebuild happened."""
        current = self.fingerprint()
        if not force and current == self._fingerprint:
            return False
        self.pipeline.invalidate_ref_cache()
        self._kb_store.refresh()
        content = self.content_fingerprint()
        h_ref = self._embedding_store.load(content)
        if h_ref is None:
            h_ref = self._embedding_store.store(
                content, self.pipeline.ref_embeddings()
            )
        # Seed the pipeline's own cache so sequential calls agree (and,
        # with a store-backed matrix, score out of the same bytes).
        self.pipeline._h_ref = np.asarray(h_ref)
        x_ref = self._kb_store.features
        self._h_ref = Tensor(h_ref)
        self._x_ref = Tensor(x_ref)
        if self.config.num_shards > 1:
            self._refresh_shards(
                np.asarray(h_ref), x_ref, previous=self._fingerprint, current=current
            )
        self._fingerprint = current
        self._cache.clear()
        self.stats.record_ref_refresh()
        self.stats.record_storage(
            self._kb_store.backend,
            ship_bytes=self._sharded.payload_ship_bytes if self._sharded else 0,
            arena_segments=self._sharded.arena_segments if self._sharded else 0,
        )
        return True

    def _refresh_shards(
        self,
        h_ref: np.ndarray,
        x_ref: np.ndarray,
        previous: Optional[tuple],
        current: tuple,
    ) -> None:
        """(Re)build or warm-start the sharded scoring backend.

        When only the weights changed (KB version/shape untouched) the
        shard views stay valid and the fresh embedding matrix is just
        re-sliced into them — the warm-start ref-cache distribution
        (with arena-published payloads, an in-place segment rewrite);
        any KB change rebuilds the partition."""
        from .sharding import ShardedKB

        kb_unchanged = previous is not None and previous[1:] == current[1:]
        if self._sharded is not None and kb_unchanged:
            t0 = perf_counter()
            self._sharded.distribute(h_ref)
            self.stats.record_publish(perf_counter() - t0)
            return
        if self._sharded is not None:
            self._sharded.close()
        self._sharded = ShardedKB(
            self.pipeline,
            self.config.num_shards,
            ref_embeddings=h_ref,
            max_workers=self.config.shard_workers,
            backend=self.config.shard_backend,
            storage=self.config.storage,
            ref_features=x_ref,
            # An indexed generator's retrieval index rides along so each
            # shard carries its local slice of the postings/signatures.
            retrieval_index=getattr(
                self.pipeline.candidate_generator, "retrieval_index", None
            ),
        )

    @property
    def sharded(self):
        """The :class:`~repro.serving.sharding.ShardedKB` backend, or
        ``None`` when scoring runs against the unsharded KB."""
        return self._sharded

    @property
    def kb_store(self):
        """The :class:`~repro.storage.KBStore` serving ``x_ref``."""
        return self._kb_store

    @property
    def embedding_store(self):
        """The :class:`~repro.storage.EmbeddingStore` serving ``h_ref``."""
        return self._embedding_store

    def close(self) -> None:
        """Release shard workers (thread pool or worker processes, plus
        any shared-memory arena they published) and the storage
        backends."""
        if self._sharded is not None:
            self._sharded.close()
        self._kb_store.close()
        self._embedding_store.close()

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def link_batch(
        self,
        snippets: Sequence[Snippet],
        top_k: Optional[int] = None,
        restrict_to_candidates: Optional[bool] = None,
    ) -> List[Prediction]:
        """Link the ambiguous mention of every snippet; order-preserving.

        Equivalent to calling ``disambiguate_snippet`` per snippet, but
        cache-aware and batched.
        """
        top_k = self.config.top_k if top_k is None else top_k
        restrict = (
            self.config.restrict_to_candidates
            if restrict_to_candidates is None
            else restrict_to_candidates
        )
        self.refresh()
        caching = self._cache.capacity > 0
        predictions: List[Optional[Prediction]] = [None] * len(snippets)
        pending: List[Tuple[int, QueryGraph, np.ndarray, tuple]] = []
        queued: set = set()  # keys already in `pending` this request
        deferred: List[Tuple[int, QueryGraph, np.ndarray, tuple]] = []
        hits = misses = 0
        for i, snippet in enumerate(snippets):
            qg = self._build_query_graph(snippet)
            t0 = perf_counter()
            candidates = self.pipeline.candidate_ids(
                qg.mention_surface,
                category=snippet.ambiguous_mention.category,
                restrict_to_candidates=restrict,
            )
            self.stats.record_candidates(perf_counter() - t0)
            key = self._cache_key(qg, candidates, restrict) if caching else None
            cached = self._cache.get(key) if caching else None
            if cached is not None:
                hits += 1
                ranked_ids, ranked_scores = cached
                predictions[i] = Prediction(
                    mention=qg.mention_surface,
                    ranked_entities=ranked_ids[:top_k],
                    scores=ranked_scores[:top_k],
                )
            elif caching and key in queued:
                # Intra-batch repeat: the identical request is already
                # queued for computation; serve this copy from the cache
                # entry that computation will write.
                hits += 1
                deferred.append((i, qg, candidates, key))
            else:
                misses += 1
                queued.add(key)
                pending.append((i, qg, candidates, key))

        for start in range(0, len(pending), self.config.max_batch_size):
            chunk = pending[start : start + self.config.max_batch_size]
            t0 = perf_counter()
            scored = self._score_chunk([qg for _, qg, _, _ in chunk],
                                       [cands for _, _, cands, _ in chunk])
            self.stats.record_batch(len(chunk), perf_counter() - t0)
            for (i, qg, candidates, key), scores in zip(chunk, scored):
                order = np.argsort(-scores, kind="stable")
                ranked_ids = [int(candidates[j]) for j in order]
                ranked_scores = [float(scores[j]) for j in order]
                self._cache.put(key, (ranked_ids, ranked_scores))
                predictions[i] = Prediction(
                    mention=qg.mention_surface,
                    ranked_entities=ranked_ids[:top_k],
                    scores=ranked_scores[:top_k],
                )

        for i, qg, candidates, key in deferred:
            value = self._cache.get(key)
            if value is None:
                # The entry was evicted within this request (cache smaller
                # than the request); recompute this one directly — and
                # account it as the miss + forward pass it really is.
                t0 = perf_counter()
                [scores] = self._score_chunk([qg], [candidates])
                self.stats.record_batch(1, perf_counter() - t0)
                hits -= 1
                misses += 1
                order = np.argsort(-scores, kind="stable")
                value = (
                    [int(candidates[j]) for j in order],
                    [float(scores[j]) for j in order],
                )
                self._cache.put(key, value)
            ranked_ids, ranked_scores = value
            predictions[i] = Prediction(
                mention=qg.mention_surface,
                ranked_entities=ranked_ids[:top_k],
                scores=ranked_scores[:top_k],
            )

        self.stats.record_request(len(snippets))
        self.stats.record_cache(hits, misses)
        if self._sharded is not None:
            calls, seconds = self._sharded.shard_telemetry()
            self.stats.record_shards(self._sharded.respawns, calls, seconds)
        generator = self.pipeline.candidate_generator
        self.stats.record_candidate_sources(
            getattr(generator, "name", type(generator).__name__),
            getattr(generator, "index_hits", 0),
            getattr(generator, "fallback_hits", 0),
        )
        return predictions  # type: ignore[return-value]

    def link_texts(
        self,
        texts: Sequence[str],
        ambiguous_surfaces: Optional[Sequence[Optional[str]]] = None,
        top_k: Optional[int] = None,
    ) -> List[Prediction]:
        """NER + linking for raw texts (one ambiguous mention per text)."""
        if ambiguous_surfaces is None:
            ambiguous_surfaces = [None] * len(texts)
        if len(ambiguous_surfaces) != len(texts):
            raise ValueError("ambiguous_surfaces must align with texts")
        snippets = [
            self.pipeline.snippet_from_text(text, surface)
            for text, surface in zip(texts, ambiguous_surfaces)
        ]
        return self.link_batch(snippets, top_k=top_k)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_query_graph(self, snippet: Snippet) -> QueryGraph:
        """Same construction as the pipeline's, through the surface-
        embedding memo (exact — the hashing embedder is deterministic)."""
        pipeline = self.pipeline
        return build_query_graph(
            snippet,
            pipeline.kb,
            pipeline.index,
            self._embedder,
            augment=pipeline.augment,
            schema=pipeline.schema,
        )

    def _cache_key(self, qg: QueryGraph, candidates: np.ndarray, restrict: bool) -> tuple:
        """(surface, candidate set, context digest): two requests share an
        entry only when the model would score them identically, so caching
        never changes results — the digest covers the query graph's
        features (mention surfaces) and typed edge structure."""
        graph = qg.graph
        digest = hashlib.sha1()
        if graph.features is not None:
            digest.update(np.ascontiguousarray(graph.features).tobytes())
        src, dst, et = graph.edges()
        digest.update(src.tobytes())
        digest.update(dst.tobytes())
        digest.update(et.tobytes())
        digest.update(np.int64(qg.mention_node).tobytes())
        return (
            normalize_surface(qg.mention_surface),
            candidates.tobytes(),
            digest.digest(),
            restrict,
        )

    def _score_chunk(
        self,
        query_graphs: Sequence[QueryGraph],
        candidate_sets: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """One batched forward + one score_pairs call for a chunk.

        Union-batchable encoders embed the whole chunk as one disjoint
        union; graph-global encoders (MAGNN/HAN) embed per graph, and
        only the pair scoring is batched — results are identical to the
        sequential pipeline either way.
        """
        model = self.pipeline.model
        lengths = [len(c) for c in candidate_sets]
        model.eval()
        with no_grad():
            if model.encoder.union_batchable:
                union, offsets = batch_graphs([qg.graph for qg in query_graphs])
                compiled = model.compile(union)
                x_qry = Tensor(union.features)
                h_qry = model.embed(compiled, x_qry)
            else:
                offsets = list(np.cumsum([0] + [qg.graph.num_nodes for qg in query_graphs[:-1]]))
                x_parts = [qg.graph.features for qg in query_graphs]
                h_parts = [
                    model.embed(model.compile(qg.graph), Tensor(qg.graph.features)).data
                    for qg in query_graphs
                ]
                x_qry = Tensor(np.vstack(x_parts))
                h_qry = Tensor(np.vstack(h_parts))
            mention_ids = np.concatenate([
                np.full(n, offsets[j] + query_graphs[j].mention_node, dtype=np.int64)
                for j, n in enumerate(lengths)
            ])
            ref_ids = np.concatenate([
                np.asarray(c, dtype=np.int64) for c in candidate_sets
            ])
            if self._sharded is not None:
                # Fan the flat pair list out across the KB shards; the
                # gather is positional, so scores match the unsharded call.
                flat = self._sharded.score_pairs_flat(
                    h_qry, mention_ids, ref_ids, x_query=x_qry
                )
            else:
                flat = model.score_pairs(
                    h_qry,
                    mention_ids,
                    self._h_ref,
                    ref_ids,
                    x_query=x_qry,
                    x_ref=self._x_ref,
                ).data
        bounds = np.cumsum([0] + lengths)
        return [flat[bounds[j] : bounds[j + 1]] for j in range(len(lengths))]
