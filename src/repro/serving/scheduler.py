"""Deadline-aware asynchronous serving.

``AsyncLinkingService`` fronts the batched :class:`LinkingService` with a
request queue and a background worker that forms micro-batches under a
deadline policy:

* a batch is flushed the moment ``max_batch_size`` requests are waiting
  (high traffic gets full batches with no added latency), OR
* when the *oldest* queued request's ``deadline_ms`` budget would be
  blown by waiting longer (low traffic never stalls behind a fixed batch
  size).

The policy itself lives in :class:`DeadlineBatcher`, which holds no
threads and never reads the wall clock — the caller passes ``now`` — so
it is unit-testable with a fake clock.  The worker thread wraps it with a
condition variable whose wait timeout is the oldest pending deadline.

Results are the same ``Prediction`` objects the sequential
``EDPipeline.disambiguate_snippet`` produces (the equivalence contract of
the serving layer): compute is delegated to a ``LinkingService``, which
may itself fan candidate scoring out across a
:class:`~repro.serving.sharding.ShardedKB` — on threads or, with
``ServiceConfig(shard_backend="process")``, on the long-lived worker
processes of a :class:`~repro.serving.workers.ShardWorkerPool`.
``close()`` joins the batch worker before closing the service, so shard
workers only shut down once every queued request has been served.

Request latency (submit -> result) and queue wait (submit -> batch
formed) are recorded into :class:`~repro.serving.stats.ServiceStats`,
which serves p50/p95 percentiles for the CLI and the latency bench.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..core.pipeline import EDPipeline, Prediction
from ..text.corpus import Snippet
from .admission import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    AdaptiveTuner,
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
)
from .service import LinkingService, ServiceConfig
from .stats import ServiceStats


@dataclass
class QueuedRequest:
    """One request waiting for a micro-batch slot."""

    snippet: Snippet
    enqueued_at: float
    deadline_at: float
    future: Future = field(default_factory=Future)
    priority: str = DEFAULT_PRIORITY


class DeadlineBatcher:
    """Pure deadline-policy micro-batch former (no threads, no clock).

    One FIFO queue of :class:`QueuedRequest` per priority class;
    :meth:`poll` decides — given the caller's ``now`` — whether a batch
    is due: immediately when a full ``max_batch_size`` is waiting, else
    once the *oldest* queued request's deadline (across all classes)
    would be blown by waiting longer.  A popped batch is filled in
    priority order (``high`` before ``normal`` before ``low``, FIFO
    within a class), so under backlog high-priority requests always ride
    the next flush.
    """

    def __init__(self, max_batch_size: int, deadline_s: float):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if deadline_s < 0:
            raise ValueError("deadline_s must be >= 0")
        self.max_batch_size = max_batch_size
        self.deadline_s = deadline_s
        self._queues: Dict[str, Deque[QueuedRequest]] = {
            priority: deque() for priority in PRIORITIES
        }

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def add(self, request: QueuedRequest) -> None:
        self._queues[request.priority].append(request)

    def next_deadline(self) -> Optional[float]:
        """Absolute deadline of the oldest queued request (None if idle).

        Deadlines are assigned FIFO per class, so the oldest deadline is
        the minimum over the class heads — low-priority requests may be
        popped last, but their deadline still drives flush timing, so no
        class can be starved of flushes indefinitely.
        """
        heads = [q[0].deadline_at for q in self._queues.values() if q]
        return min(heads) if heads else None

    def seconds_until_flush(self, now: float) -> Optional[float]:
        """Longest the worker may sleep before a flush can become due.

        ``None`` when the queue is idle (sleep until a request arrives),
        ``0`` when a batch is already due.
        """
        next_deadline = self.next_deadline()
        if next_deadline is None:
            return None
        if len(self) >= self.max_batch_size:
            return 0.0
        return max(0.0, next_deadline - now)

    def poll(self, now: float) -> List[QueuedRequest]:
        """The next micro-batch to run, or ``[]`` if none is due yet."""
        if len(self) >= self.max_batch_size:
            return self._pop(self.max_batch_size)
        next_deadline = self.next_deadline()
        if next_deadline is not None and now >= next_deadline:
            return self._pop(self.max_batch_size)
        return []

    def drain(self) -> List[QueuedRequest]:
        """Pop up to one batch regardless of deadlines (shutdown path)."""
        return self._pop(self.max_batch_size)

    def _pop(self, limit: int) -> List[QueuedRequest]:
        batch: List[QueuedRequest] = []
        for priority in PRIORITIES:
            queue = self._queues[priority]
            while queue and len(batch) < limit:
                batch.append(queue.popleft())
        return batch


class AsyncLinkingService:
    """Queue-fronted linking with deadline-bounded micro-batching.

    ``submit`` enqueues one snippet and returns a
    ``concurrent.futures.Future`` resolving to the same ``Prediction``
    the sequential pipeline would return; ``link_batch`` and
    ``link_stream`` are order-preserving conveniences on top.  Accepts a
    fitted :class:`EDPipeline` (a ``LinkingService`` is built from
    ``config``) or an existing ``LinkingService`` (e.g. one configured
    with ``num_shards > 1`` for sharded scoring).
    """

    def __init__(
        self,
        pipeline_or_service: Union[EDPipeline, LinkingService],
        config: Optional[ServiceConfig] = None,
        *,
        deadline_ms: float = 25.0,
        max_batch_size: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        admission: Optional[AdmissionConfig] = None,
    ):
        if isinstance(pipeline_or_service, LinkingService):
            if config is not None:
                raise ValueError("pass config to the LinkingService, not here")
            self.service = pipeline_or_service
        else:
            self.service = LinkingService(pipeline_or_service, config)
        # The worker's Condition.wait timeout elapses in real time, so the
        # service clock must be the monotonic wall clock; fake-clock tests
        # target DeadlineBatcher / AdmissionController / AdaptiveTuner,
        # which take `now` from their callers.
        self.clock = time.monotonic
        self.deadline_s = deadline_ms / 1000.0
        batch = max_batch_size or self.service.config.max_batch_size
        self.batcher = DeadlineBatcher(batch, self.deadline_s)
        self.max_in_flight = max_in_flight or max(64, 4 * batch)
        self.admission_config = admission or self.service.config.admission
        self.admission = AdmissionController(self.admission_config, deadline_ms)
        self.tuner: Optional[AdaptiveTuner] = (
            AdaptiveTuner(self.admission_config, deadline_ms, batch)
            if self.admission_config.adaptive
            else None
        )
        self._cond = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="async-linking-worker", daemon=True
        )
        self._worker.start()

    @property
    def stats(self) -> ServiceStats:
        return self.service.stats

    @property
    def pipeline(self) -> EDPipeline:
        return self.service.pipeline

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(
        self, snippet: Snippet, priority: str = DEFAULT_PRIORITY
    ) -> "Future[Prediction]":
        """Enqueue one snippet; the future resolves to its Prediction.

        The admission gate runs here, in front of the queue: an
        over-budget arrival raises
        :class:`~repro.serving.admission.AdmissionError` (HTTP maps it
        to 429 + ``Retry-After``) instead of enqueueing.
        """
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; options: {PRIORITIES}"
            )
        now = self.clock()
        request = QueuedRequest(
            snippet, now, now + self.deadline_s, priority=priority
        )
        with self._cond:
            if self._closed:
                raise RuntimeError("AsyncLinkingService is closed")
            shed = self.admission.check(priority, len(self.batcher))
            if shed is not None:
                self.stats.record_shed(priority)
                raise shed
            self.stats.record_admission(priority)
            self.batcher.add(request)
            self._cond.notify()
        return request.future

    def link_batch(
        self,
        snippets: Sequence[Snippet],
        timeout: Optional[float] = None,
        priority: str = DEFAULT_PRIORITY,
    ) -> List[Prediction]:
        """Submit every snippet and gather results in input order.

        All-or-nothing under admission control: when a submit mid-batch
        is shed, the already-queued futures are cancelled and the
        :class:`AdmissionError` propagates.
        """
        futures = []
        try:
            for snippet in snippets:
                futures.append(self.submit(snippet, priority))
        except AdmissionError:
            for future in futures:
                future.cancel()
            raise
        return [future.result(timeout) for future in futures]

    def link_stream(
        self, snippets: Iterable[Snippet], priority: str = DEFAULT_PRIORITY
    ) -> Iterator[Prediction]:
        """Order-preserving incremental results over a (lazy) stream.

        Yields each prediction as soon as it — and everything before it —
        is done, keeping at most ``max_in_flight`` requests outstanding
        so an unbounded stdin stream cannot grow the queue without limit.
        """
        window: Deque[Future] = deque()
        for snippet in snippets:
            window.append(self.submit(snippet, priority))
            if len(window) >= self.max_in_flight:
                yield window.popleft().result()
            while window and window[0].done():
                yield window.popleft().result()
        while window:
            yield window.popleft().result()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    batch = self.batcher.poll(self.clock())
                    if not batch and self._closed:
                        batch = self.batcher.drain()
                        if not batch:
                            return
                    if batch:
                        break
                    self._cond.wait(self.batcher.seconds_until_flush(self.clock()))
            self._run_batch(batch)

    def _run_batch(self, batch: List[QueuedRequest]) -> None:
        formed_at = self.clock()
        # A caller may have cancelled its future while the request sat in
        # the queue; transition the rest to RUNNING so set_result below is
        # always legal and the worker thread can never be killed by an
        # InvalidStateError.
        live = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if not live:
            return
        try:
            predictions = self.service.link_batch([r.snippet for r in live])
        except BaseException as exc:  # propagate to every waiter in the batch
            for request in live:
                request.future.set_exception(exc)
            return
        done_at = self.clock()
        for request, prediction in zip(live, predictions):
            self.stats.record_latency(
                done_at - request.enqueued_at, formed_at - request.enqueued_at
            )
            request.future.set_result(prediction)
        # Feed the policy loop: the controller's estimated-wait model
        # tracks the real drain rate, and the tuner AIMD-adjusts the
        # deadline/batch policy from the observed queue waits.
        self.admission.observe_batch(len(live), done_at - formed_at)
        if self.tuner is not None:
            adjusted = False
            for request in live:
                adjusted |= self.tuner.observe(
                    (formed_at - request.enqueued_at) * 1000.0, done_at
                )
            if adjusted:
                with self._cond:
                    self.deadline_s = self.tuner.deadline_ms / 1000.0
                    self.batcher.deadline_s = self.deadline_s
                    self.batcher.max_batch_size = self.tuner.batch_size
            self.stats.record_tuner(
                self.tuner.deadline_ms, self.tuner.batch_size, self.tuner.adjustments
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the queue, stop the worker, release shard workers."""
        with self._cond:
            if self._closed and not self._worker.is_alive():
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()
        self.service.close()

    def __enter__(self) -> "AsyncLinkingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
