"""Deadline-aware asynchronous serving.

``AsyncLinkingService`` fronts the batched :class:`LinkingService` with a
request queue and a background worker that forms micro-batches under a
deadline policy:

* a batch is flushed the moment ``max_batch_size`` requests are waiting
  (high traffic gets full batches with no added latency), OR
* when the *oldest* queued request's ``deadline_ms`` budget would be
  blown by waiting longer (low traffic never stalls behind a fixed batch
  size).

The policy itself lives in :class:`DeadlineBatcher`, which holds no
threads and never reads the wall clock — the caller passes ``now`` — so
it is unit-testable with a fake clock.  The worker thread wraps it with a
condition variable whose wait timeout is the oldest pending deadline.

Results are the same ``Prediction`` objects the sequential
``EDPipeline.disambiguate_snippet`` produces (the equivalence contract of
the serving layer): compute is delegated to a ``LinkingService``, which
may itself fan candidate scoring out across a
:class:`~repro.serving.sharding.ShardedKB` — on threads or, with
``ServiceConfig(shard_backend="process")``, on the long-lived worker
processes of a :class:`~repro.serving.workers.ShardWorkerPool`.
``close()`` joins the batch worker before closing the service, so shard
workers only shut down once every queued request has been served.

Request latency (submit -> result) and queue wait (submit -> batch
formed) are recorded into :class:`~repro.serving.stats.ServiceStats`,
which serves p50/p95 percentiles for the CLI and the latency bench.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Iterable, Iterator, List, Optional, Sequence, Union

from ..core.pipeline import EDPipeline, Prediction
from ..text.corpus import Snippet
from .service import LinkingService, ServiceConfig
from .stats import ServiceStats


@dataclass
class QueuedRequest:
    """One request waiting for a micro-batch slot."""

    snippet: Snippet
    enqueued_at: float
    deadline_at: float
    future: Future = field(default_factory=Future)


class DeadlineBatcher:
    """Pure deadline-policy micro-batch former (no threads, no clock).

    FIFO queue of :class:`QueuedRequest`; :meth:`poll` decides — given
    the caller's ``now`` — whether a batch is due: immediately when a
    full ``max_batch_size`` is waiting, else once the oldest request's
    deadline would be blown by waiting longer.
    """

    def __init__(self, max_batch_size: int, deadline_s: float):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if deadline_s < 0:
            raise ValueError("deadline_s must be >= 0")
        self.max_batch_size = max_batch_size
        self.deadline_s = deadline_s
        self._queue: Deque[QueuedRequest] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def next_deadline(self) -> Optional[float]:
        """Absolute deadline of the oldest queued request (None if idle)."""
        return self._queue[0].deadline_at if self._queue else None

    def seconds_until_flush(self, now: float) -> Optional[float]:
        """Longest the worker may sleep before a flush can become due.

        ``None`` when the queue is idle (sleep until a request arrives),
        ``0`` when a batch is already due.
        """
        if not self._queue:
            return None
        if len(self._queue) >= self.max_batch_size:
            return 0.0
        return max(0.0, self._queue[0].deadline_at - now)

    def poll(self, now: float) -> List[QueuedRequest]:
        """The next micro-batch to run, or ``[]`` if none is due yet."""
        if len(self._queue) >= self.max_batch_size:
            return self._pop(self.max_batch_size)
        if self._queue and now >= self._queue[0].deadline_at:
            return self._pop(self.max_batch_size)
        return []

    def drain(self) -> List[QueuedRequest]:
        """Pop up to one batch regardless of deadlines (shutdown path)."""
        return self._pop(self.max_batch_size)

    def _pop(self, limit: int) -> List[QueuedRequest]:
        return [self._queue.popleft() for _ in range(min(limit, len(self._queue)))]


class AsyncLinkingService:
    """Queue-fronted linking with deadline-bounded micro-batching.

    ``submit`` enqueues one snippet and returns a
    ``concurrent.futures.Future`` resolving to the same ``Prediction``
    the sequential pipeline would return; ``link_batch`` and
    ``link_stream`` are order-preserving conveniences on top.  Accepts a
    fitted :class:`EDPipeline` (a ``LinkingService`` is built from
    ``config``) or an existing ``LinkingService`` (e.g. one configured
    with ``num_shards > 1`` for sharded scoring).
    """

    def __init__(
        self,
        pipeline_or_service: Union[EDPipeline, LinkingService],
        config: Optional[ServiceConfig] = None,
        *,
        deadline_ms: float = 25.0,
        max_batch_size: Optional[int] = None,
        max_in_flight: Optional[int] = None,
    ):
        if isinstance(pipeline_or_service, LinkingService):
            if config is not None:
                raise ValueError("pass config to the LinkingService, not here")
            self.service = pipeline_or_service
        else:
            self.service = LinkingService(pipeline_or_service, config)
        # The worker's Condition.wait timeout elapses in real time, so the
        # service clock must be the monotonic wall clock; fake-clock tests
        # target DeadlineBatcher, which takes `now` from its caller.
        self.clock = time.monotonic
        self.deadline_s = deadline_ms / 1000.0
        batch = max_batch_size or self.service.config.max_batch_size
        self.batcher = DeadlineBatcher(batch, self.deadline_s)
        self.max_in_flight = max_in_flight or max(64, 4 * batch)
        self._cond = threading.Condition()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="async-linking-worker", daemon=True
        )
        self._worker.start()

    @property
    def stats(self) -> ServiceStats:
        return self.service.stats

    @property
    def pipeline(self) -> EDPipeline:
        return self.service.pipeline

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(self, snippet: Snippet) -> "Future[Prediction]":
        """Enqueue one snippet; the future resolves to its Prediction."""
        now = self.clock()
        request = QueuedRequest(snippet, now, now + self.deadline_s)
        with self._cond:
            if self._closed:
                raise RuntimeError("AsyncLinkingService is closed")
            self.batcher.add(request)
            self._cond.notify()
        return request.future

    def link_batch(
        self, snippets: Sequence[Snippet], timeout: Optional[float] = None
    ) -> List[Prediction]:
        """Submit every snippet and gather results in input order."""
        futures = [self.submit(snippet) for snippet in snippets]
        return [future.result(timeout) for future in futures]

    def link_stream(self, snippets: Iterable[Snippet]) -> Iterator[Prediction]:
        """Order-preserving incremental results over a (lazy) stream.

        Yields each prediction as soon as it — and everything before it —
        is done, keeping at most ``max_in_flight`` requests outstanding
        so an unbounded stdin stream cannot grow the queue without limit.
        """
        window: Deque[Future] = deque()
        for snippet in snippets:
            window.append(self.submit(snippet))
            if len(window) >= self.max_in_flight:
                yield window.popleft().result()
            while window and window[0].done():
                yield window.popleft().result()
        while window:
            yield window.popleft().result()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    batch = self.batcher.poll(self.clock())
                    if not batch and self._closed:
                        batch = self.batcher.drain()
                        if not batch:
                            return
                    if batch:
                        break
                    self._cond.wait(self.batcher.seconds_until_flush(self.clock()))
            self._run_batch(batch)

    def _run_batch(self, batch: List[QueuedRequest]) -> None:
        formed_at = self.clock()
        # A caller may have cancelled its future while the request sat in
        # the queue; transition the rest to RUNNING so set_result below is
        # always legal and the worker thread can never be killed by an
        # InvalidStateError.
        live = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if not live:
            return
        try:
            predictions = self.service.link_batch([r.snippet for r in live])
        except BaseException as exc:  # propagate to every waiter in the batch
            for request in live:
                request.future.set_exception(exc)
            return
        done_at = self.clock()
        for request, prediction in zip(live, predictions):
            self.stats.record_latency(
                done_at - request.enqueued_at, formed_at - request.enqueued_at
            )
            request.future.set_result(prediction)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the queue, stop the worker, release shard workers."""
        with self._cond:
            if self._closed and not self._worker.is_alive():
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()
        self.service.close()

    def __enter__(self) -> "AsyncLinkingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
