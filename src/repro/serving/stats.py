"""Service-side telemetry for the batched linking service.

``ServiceStats`` is a plain counter object the :class:`LinkingService`
updates on every request: mentions served, micro-batches executed and
their sizes, result-cache hits/misses, reference-embedding refreshes,
and wall time spent in batched forwards.  It renders to a dict (for the
CLI's ``--json``) or a small aligned table (for humans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ServiceStats:
    """Throughput / cache counters of one :class:`LinkingService`."""

    requests: int = 0  # link_batch / link_texts calls
    mentions: int = 0  # mentions linked (cached + computed)
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0  # micro-batch forward passes
    batch_sizes: List[int] = field(default_factory=list)
    ref_refreshes: int = 0  # reference-embedding cache rebuilds
    compute_seconds: float = 0.0  # wall time inside batched forwards

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, num_mentions: int) -> None:
        self.requests += 1
        self.mentions += num_mentions

    def record_batch(self, size: int, seconds: float) -> None:
        self.batches += 1
        self.batch_sizes.append(size)
        self.compute_seconds += seconds

    def record_cache(self, hits: int, misses: int) -> None:
        self.cache_hits += hits
        self.cache_misses += misses

    def record_ref_refresh(self) -> None:
        self.ref_refreshes += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        return sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0

    @property
    def max_batch_size(self) -> int:
        return max(self.batch_sizes) if self.batch_sizes else 0

    @property
    def mentions_per_second(self) -> float:
        """Throughput of the compute path (cached hits cost ~nothing)."""
        computed = sum(self.batch_sizes)
        return computed / self.compute_seconds if self.compute_seconds > 0 else 0.0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "mentions": self.mentions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch_size": self.max_batch_size,
            "ref_refreshes": self.ref_refreshes,
            "compute_seconds": round(self.compute_seconds, 4),
            "mentions_per_second": round(self.mentions_per_second, 2),
        }

    def format(self) -> str:
        rows = self.to_dict()
        width = max(len(k) for k in rows)
        lines = ["serving stats:"]
        for key, value in rows.items():
            lines.append(f"  {key.ljust(width)}  {value}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.requests = 0
        self.mentions = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batch_sizes = []
        self.ref_refreshes = 0
        self.compute_seconds = 0.0
