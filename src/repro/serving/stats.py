"""Service-side telemetry for the batched linking service.

``ServiceStats`` is a plain counter object the :class:`LinkingService`
updates on every request: mentions served, micro-batches executed and
their sizes, result-cache hits/misses, reference-embedding refreshes,
and wall time spent in batched forwards.  The deadline scheduler
(:mod:`repro.serving.scheduler`) additionally records per-request
latency (submit -> result) and queue wait (submit -> batch formed), from
which p50/p95 percentiles are served.  It renders to a dict (for the
CLI's ``--json``) or a small aligned table (for humans).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List

import numpy as np

#: Sliding-window size for latency percentiles: a long-lived async
#: service must not grow per-request state without bound, and recent
#: requests are what an operator watching p95 cares about.
LATENCY_WINDOW = 8192


@dataclass
class ServiceStats:
    """Throughput / cache counters of one :class:`LinkingService`."""

    requests: int = 0  # link_batch / link_texts calls
    mentions: int = 0  # mentions linked (cached + computed)
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0  # micro-batch forward passes
    batch_sizes: List[int] = field(default_factory=list)
    ref_refreshes: int = 0  # reference-embedding cache rebuilds
    compute_seconds: float = 0.0  # wall time inside batched forwards
    # Storage telemetry (repro.storage): which backend serves the KB
    # matrices, how many payload bytes actually crossed the worker
    # command pipes, how many shared-memory segments are published, and
    # the cost of warm-start distribute() publishes.
    storage_backend: str = "memory"
    payload_ship_bytes: int = 0
    arena_segments: int = 0
    publishes: int = 0  # warm-start distribute() calls
    publish_seconds: float = 0.0  # wall time inside those publishes
    # Candidate-generation telemetry (repro.retrieval): which generator
    # serves candidates, wall time in the candidate stage, and how often
    # the inverted index answered outright vs the fallback retrieval ran
    # (gauges snapshotted from the generator's own counters).
    candidate_generator: str = "exact"
    candidate_lookups: int = 0  # candidate_ids calls timed
    candidate_seconds: float = 0.0  # wall time in the candidate stage
    candidate_index_hits: int = 0
    candidate_fallbacks: int = 0
    # Admission / overload telemetry (repro.serving.admission): admitted
    # and shed requests per priority class, plus the adaptive tuner's
    # live policy (gauges; tuner_batch_size stays 0 when tuning is off).
    admitted: Dict[str, int] = field(default_factory=dict)
    shed: Dict[str, int] = field(default_factory=dict)
    tuner_deadline_ms: float = 0.0
    tuner_batch_size: int = 0
    tuner_adjustments: int = 0
    # Per-shard telemetry (repro.serving.sharding/workers): lifetime
    # worker respawns and per-shard score calls / wall time, snapshotted
    # from the sharded backend's own counters.
    shard_respawns: int = 0
    shard_score_calls: List[int] = field(default_factory=list)
    shard_score_seconds: List[float] = field(default_factory=list)
    # submit -> result / submit -> batch formed, most recent LATENCY_WINDOW
    latencies_ms: Deque[float] = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    queue_waits_ms: Deque[float] = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    # per-lookup candidate-stage latency, most recent LATENCY_WINDOW
    candidate_ms: Deque[float] = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, num_mentions: int) -> None:
        self.requests += 1
        self.mentions += num_mentions

    def record_batch(self, size: int, seconds: float) -> None:
        self.batches += 1
        self.batch_sizes.append(size)
        self.compute_seconds += seconds

    def record_cache(self, hits: int, misses: int) -> None:
        self.cache_hits += hits
        self.cache_misses += misses

    def record_ref_refresh(self) -> None:
        self.ref_refreshes += 1

    def record_storage(
        self, backend: str, ship_bytes: int = 0, arena_segments: int = 0
    ) -> None:
        """Snapshot of the storage backend's state (gauges, not deltas)."""
        self.storage_backend = backend
        self.payload_ship_bytes = ship_bytes
        self.arena_segments = arena_segments

    def record_publish(self, seconds: float) -> None:
        """One warm-start ``distribute()`` publish and its wall time."""
        self.publishes += 1
        self.publish_seconds += seconds

    def record_latency(self, total_seconds: float, queue_wait_seconds: float = 0.0) -> None:
        """One async request's end-to-end latency and its queue wait."""
        self.latencies_ms.append(total_seconds * 1000.0)
        self.queue_waits_ms.append(queue_wait_seconds * 1000.0)

    def record_candidates(self, seconds: float) -> None:
        """One candidate-generation lookup and its wall time."""
        self.candidate_lookups += 1
        self.candidate_seconds += seconds
        self.candidate_ms.append(seconds * 1000.0)

    def record_candidate_sources(
        self, generator: str, index_hits: int, fallbacks: int
    ) -> None:
        """Snapshot of the generator's lifetime hit/fallback counters."""
        self.candidate_generator = generator
        self.candidate_index_hits = index_hits
        self.candidate_fallbacks = fallbacks

    def record_admission(self, priority: str) -> None:
        """One request admitted past the gate under ``priority``."""
        self.admitted[priority] = self.admitted.get(priority, 0) + 1

    def record_shed(self, priority: str) -> None:
        """One request shed at the gate under ``priority``."""
        self.shed[priority] = self.shed.get(priority, 0) + 1

    def record_tuner(
        self, deadline_ms: float, batch_size: int, adjustments: int
    ) -> None:
        """Snapshot of the adaptive tuner's live policy (gauges)."""
        self.tuner_deadline_ms = deadline_ms
        self.tuner_batch_size = batch_size
        self.tuner_adjustments = adjustments

    def record_shards(
        self, respawns: int, calls: List[int], seconds: List[float]
    ) -> None:
        """Snapshot of the sharded backend's lifetime counters: worker
        respawns plus per-shard score calls and wall time (gauges)."""
        self.shard_respawns = respawns
        self.shard_score_calls = list(calls)
        self.shard_score_seconds = list(seconds)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_admitted(self) -> int:
        return sum(self.admitted.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        """Fraction of gate arrivals shed (0.0 before any arrival)."""
        total = self.total_admitted + self.total_shed
        return self.total_shed / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        return sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0

    @property
    def max_batch_size(self) -> int:
        return max(self.batch_sizes) if self.batch_sizes else 0

    @property
    def mentions_per_second(self) -> float:
        """Throughput of the compute path (cached hits cost ~nothing)."""
        computed = sum(self.batch_sizes)
        return computed / self.compute_seconds if self.compute_seconds > 0 else 0.0

    def latency_percentile(self, p: float) -> float:
        """p-th percentile of request latency in ms over the most recent
        ``LATENCY_WINDOW`` requests (0.0 before any async request
        completes)."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), p))

    def queue_wait_percentile(self, p: float) -> float:
        """p-th percentile of time spent queued before a batch formed."""
        if not self.queue_waits_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.queue_waits_ms), p))

    def candidate_percentile(self, p: float) -> float:
        """p-th percentile of candidate-stage latency in ms (sliding window)."""
        if not self.candidate_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.candidate_ms), p))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, float]:
        payload = {
            "requests": self.requests,
            "mentions": self.mentions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch_size": self.max_batch_size,
            "ref_refreshes": self.ref_refreshes,
            "compute_seconds": round(self.compute_seconds, 4),
            "mentions_per_second": round(self.mentions_per_second, 2),
            "storage_backend": self.storage_backend,
            "payload_ship_bytes": self.payload_ship_bytes,
            "arena_segments": self.arena_segments,
            "publishes": self.publishes,
            "publish_ms": round(self.publish_seconds * 1000.0, 2),
            "candidate_generator": self.candidate_generator,
            "candidate_lookups": self.candidate_lookups,
            "candidate_index_hits": self.candidate_index_hits,
            "candidate_fallbacks": self.candidate_fallbacks,
            "candidate_seconds": round(self.candidate_seconds, 4),
            "admitted": dict(self.admitted),
            "shed": dict(self.shed),
            "shed_rate": round(self.shed_rate, 4),
        }
        if self.tuner_batch_size > 0:
            # Only adaptive serving reports a tuner; the payload keeps
            # its original shape otherwise.
            payload.update(
                tuner_deadline_ms=round(self.tuner_deadline_ms, 3),
                tuner_batch_size=self.tuner_batch_size,
                tuner_adjustments=self.tuner_adjustments,
            )
        if self.shard_score_calls:
            payload.update(
                shard_respawns=self.shard_respawns,
                shard_score_calls=list(self.shard_score_calls),
                shard_score_ms=[
                    round(s * 1000.0, 2) for s in self.shard_score_seconds
                ],
            )
        if self.candidate_ms:
            payload.update(
                candidate_p50_ms=round(self.candidate_percentile(50), 3),
                candidate_p95_ms=round(self.candidate_percentile(95), 3),
            )
        if self.latencies_ms:
            # Only async serving records latencies; the sync service's
            # payload keeps its original shape.
            payload.update(
                latency_p50_ms=round(self.latency_percentile(50), 2),
                latency_p95_ms=round(self.latency_percentile(95), 2),
                queue_wait_p50_ms=round(self.queue_wait_percentile(50), 2),
                queue_wait_p95_ms=round(self.queue_wait_percentile(95), 2),
            )
        return payload

    def format(self) -> str:
        rows = self.to_dict()
        width = max(len(k) for k in rows)
        lines = ["serving stats:"]
        for key, value in rows.items():
            lines.append(f"  {key.ljust(width)}  {value}")
        return "\n".join(lines)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition of the counters, served by the HTTP
        front door's ``GET /stats`` under ``Accept: text/plain``."""
        counters = [
            ("requests_total", self.requests, "link_batch / link_texts calls"),
            ("mentions_total", self.mentions, "mentions linked (cached + computed)"),
            ("cache_hits_total", self.cache_hits, "result cache hits"),
            ("cache_misses_total", self.cache_misses, "result cache misses"),
            ("batches_total", self.batches, "micro-batch forward passes"),
            ("ref_refreshes_total", self.ref_refreshes, "reference-embedding rebuilds"),
            ("compute_seconds_total", self.compute_seconds, "wall time in batched forwards"),
            ("storage_publishes_total", self.publishes, "warm-start distribute() publishes"),
            ("storage_publish_seconds_total", self.publish_seconds, "wall time in publishes"),
            ("candidates_lookups_total", self.candidate_lookups, "candidate-generation lookups"),
            ("candidates_seconds_total", self.candidate_seconds, "wall time in candidate generation"),
            ("candidates_index_hits_total", self.candidate_index_hits, "inverted-index candidate hits"),
            ("candidates_fallbacks_total", self.candidate_fallbacks, "fallback retrieval invocations"),
        ]
        gauges = [
            ("cache_hit_rate", self.cache_hit_rate, "result cache hit rate"),
            ("admission_shed_rate", self.shed_rate, "fraction of gate arrivals shed"),
            ("tuner_deadline_ms", self.tuner_deadline_ms, "adaptive tuner's live deadline budget"),
            ("tuner_batch_size", self.tuner_batch_size, "adaptive tuner's live max batch size"),
            ("tuner_adjustments", self.tuner_adjustments, "adaptive tuner policy adjustments"),
            ("mean_batch_size", self.mean_batch_size, "mean micro-batch size"),
            ("mentions_per_second", self.mentions_per_second, "compute-path throughput"),
            ("storage_payload_ship_bytes", self.payload_ship_bytes, "payload bytes shipped over worker pipes"),
            ("storage_arena_segments", self.arena_segments, "published shared-memory segments"),
        ]
        lines: List[str] = []
        for name, value, help_text in counters:
            lines += [
                f"# HELP {prefix}_{name} {help_text}",
                f"# TYPE {prefix}_{name} counter",
                f"{prefix}_{name} {value}",
            ]
        # Admission gate: per-priority admitted/shed counters (always
        # exported, so dashboards see explicit zeros before any shed).
        for name, values, help_text in (
            ("admission_admitted_total", self.admitted, "requests admitted past the gate"),
            ("admission_shed_total", self.shed, "requests shed at the gate"),
        ):
            lines += [
                f"# HELP {prefix}_{name} {help_text}",
                f"# TYPE {prefix}_{name} counter",
            ]
            for priority in ("high", "normal", "low"):
                lines.append(
                    f'{prefix}_{name}{{priority="{priority}"}} '
                    f"{values.get(priority, 0)}"
                )
        lines += [
            f"# HELP {prefix}_shard_respawns_total lifetime shard worker respawns",
            f"# TYPE {prefix}_shard_respawns_total counter",
            f"{prefix}_shard_respawns_total {self.shard_respawns}",
            f"# HELP {prefix}_shard_score_calls_total per-shard score fan-out calls",
            f"# TYPE {prefix}_shard_score_calls_total counter",
        ]
        for shard, calls in enumerate(self.shard_score_calls):
            lines.append(
                f'{prefix}_shard_score_calls_total{{shard="{shard}"}} {calls}'
            )
        lines += [
            f"# HELP {prefix}_shard_score_seconds_total per-shard score wall time",
            f"# TYPE {prefix}_shard_score_seconds_total counter",
        ]
        for shard, seconds in enumerate(self.shard_score_seconds):
            lines.append(
                f'{prefix}_shard_score_seconds_total{{shard="{shard}"}} {seconds}'
            )
        for name, value, help_text in gauges:
            lines += [
                f"# HELP {prefix}_{name} {help_text}",
                f"# TYPE {prefix}_{name} gauge",
                f"{prefix}_{name} {value}",
            ]
        for name, percentile_of in (
            ("request_latency_ms", self.latency_percentile),
            ("queue_wait_ms", self.queue_wait_percentile),
        ):
            lines += [
                f"# HELP {prefix}_{name} async request timing (sliding window)",
                f"# TYPE {prefix}_{name} summary",
            ]
            if self.latencies_ms:
                for quantile in (0.5, 0.95):
                    lines.append(
                        f'{prefix}_{name}{{quantile="{quantile}"}} '
                        f"{percentile_of(quantile * 100)}"
                    )
            lines.append(f"{prefix}_{name}_count {len(self.latencies_ms)}")
        lines += [
            f"# HELP {prefix}_candidates_stage_ms candidate-stage latency (sliding window)",
            f"# TYPE {prefix}_candidates_stage_ms summary",
        ]
        if self.candidate_ms:
            for quantile in (0.5, 0.95):
                lines.append(
                    f'{prefix}_candidates_stage_ms{{quantile="{quantile}"}} '
                    f"{self.candidate_percentile(quantile * 100)}"
                )
        lines.append(f"{prefix}_candidates_stage_ms_count {len(self.candidate_ms)}")
        lines += [
            # Info-style metrics carrying backend/generator names as labels.
            f"# HELP {prefix}_storage_info KB/embedding storage backend",
            f"# TYPE {prefix}_storage_info gauge",
            f'{prefix}_storage_info{{backend="{self.storage_backend}"}} 1',
            f"# HELP {prefix}_candidates_info candidate generator in service",
            f"# TYPE {prefix}_candidates_info gauge",
            f'{prefix}_candidates_info{{generator="{self.candidate_generator}"}} 1',
        ]
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        self.requests = 0
        self.mentions = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batch_sizes = []
        self.ref_refreshes = 0
        self.compute_seconds = 0.0
        self.storage_backend = "memory"
        self.payload_ship_bytes = 0
        self.arena_segments = 0
        self.publishes = 0
        self.publish_seconds = 0.0
        self.candidate_generator = "exact"
        self.candidate_lookups = 0
        self.candidate_seconds = 0.0
        self.candidate_index_hits = 0
        self.candidate_fallbacks = 0
        self.admitted = {}
        self.shed = {}
        self.tuner_deadline_ms = 0.0
        self.tuner_batch_size = 0
        self.tuner_adjustments = 0
        self.shard_respawns = 0
        self.shard_score_calls = []
        self.shard_score_seconds = []
        self.latencies_ms = deque(maxlen=LATENCY_WINDOW)
        self.queue_waits_ms = deque(maxlen=LATENCY_WINDOW)
        self.candidate_ms = deque(maxlen=LATENCY_WINDOW)
