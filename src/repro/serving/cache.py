"""A small LRU cache for linking results.

Keys are built by the service from the normalised mention surface, the
candidate id set, and a digest of the query-graph context, so two
requests share an entry exactly when the model would score them
identically.  Backed by an ``OrderedDict``; not thread-safe (the service
is single-threaded, matching the numpy execution model).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses and
    ``put`` is a no-op), which the service uses for its uncached baseline
    mode and the equivalence benchmarks.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or None.  Hit/miss accounting is the
        caller's job (the service owns its own ServiceStats counters)."""
        if self.capacity <= 0 or key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return self.capacity > 0 and key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
