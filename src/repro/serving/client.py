"""A stdlib client for the HTTP front door (:mod:`repro.serving.http`).

:class:`LinkerClient` speaks the typed wire schema over
``http.client.HTTPConnection`` — no dependencies, same strict parsing as
the server.  Non-2xx responses raise :class:`LinkerClientError` carrying
the decoded :class:`~repro.serving.wire.ErrorResponse` so callers can
branch on the machine-readable ``code`` (``draining``,
``payload_too_large``, ...).  A 429 from the admission gate raises the
:class:`LinkerOverloadedError` subclass, which carries the server's
``Retry-After`` hint; :func:`retry_overloaded` is the matching bounded
backoff helper.

    with LinkerClient(port=server.port) as client:
        prediction = client.link(text="... spinal hyperplasia ...")
        batch = client.link_batch(["text a", "text b"], top_k=3)
        for result in client.link_stream(snippets):
            ...
        burst = retry_overloaded(
            lambda: client.link_batch(texts), retries=3
        )
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Callable, Iterable, Iterator, List, Optional, TypeVar, Union

from ..text.corpus import Snippet
from .wire import (
    ErrorResponse,
    LinkItem,
    LinkRequest,
    LinkResponse,
    WirePrediction,
    parse_stream_line,
)

__all__ = [
    "LinkerClient",
    "LinkerClientError",
    "LinkerOverloadedError",
    "retry_overloaded",
]

#: anything `link_batch` / `link_stream` can normalise into a LinkItem
ItemLike = Union[str, Snippet, LinkItem]

T = TypeVar("T")


class LinkerClientError(RuntimeError):
    """A non-2xx server response; ``error`` is the decoded body when the
    server sent a structured :class:`ErrorResponse` (None otherwise)."""

    def __init__(self, status: int, error: Optional[ErrorResponse], raw: bytes = b""):
        message = error.message if error is not None else raw.decode("utf-8", "replace")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.error = error


class LinkerOverloadedError(LinkerClientError):
    """A 429 from the admission gate: the request was shed, not failed.

    ``retry_after_s`` is the server's hint for when the queue should be
    back under budget — the ``Retry-After`` header when present, else
    the structured body's ``retry_after_ms``, else 1 second.
    """

    def __init__(
        self,
        status: int,
        error: Optional[ErrorResponse],
        raw: bytes = b"",
        retry_after_s: float = 1.0,
    ):
        super().__init__(status, error, raw)
        self.retry_after_s = retry_after_s


def _retry_after_seconds(
    header: Optional[str], error: Optional[ErrorResponse]
) -> float:
    if header is not None:
        try:
            return max(0.0, float(header))
        except ValueError:
            pass  # an HTTP-date Retry-After; fall through to the body
    if error is not None and error.retry_after_ms is not None:
        return max(0.0, error.retry_after_ms / 1000.0)
    return 1.0


def retry_overloaded(
    call: Callable[[], T],
    retries: int = 3,
    max_wait_s: float = 5.0,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``call``, retrying up to ``retries`` times when the server
    sheds it with a 429 — sleeping the server's ``Retry-After`` hint
    (capped at ``max_wait_s``) between attempts.  Bounded on purpose:
    after the last attempt the :class:`LinkerOverloadedError` propagates
    so sustained overload surfaces instead of spinning.  ``sleep`` is
    injectable for tests.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    for _ in range(retries):
        try:
            return call()
        except LinkerOverloadedError as exc:
            sleep(min(exc.retry_after_s, max_wait_s))
    return call()


def _as_item(item: ItemLike) -> LinkItem:
    if isinstance(item, LinkItem):
        return item
    if isinstance(item, Snippet):
        return LinkItem(snippet=item)
    if isinstance(item, str):
        return LinkItem(text=item)
    raise TypeError(f"cannot make a link item from {type(item).__name__}")


class LinkerClient:
    """Client for one :class:`~repro.serving.http.LinkingHTTPServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 60.0):
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[bytes] = None,
                 headers: Optional[dict] = None):
        headers = dict(headers or {})
        if body is not None:
            headers.setdefault("Content-Type", "application/json")
        self._conn.request(method, path, body=body, headers=headers)
        return self._conn.getresponse()

    def _json(self, method: str, path: str, body: Optional[bytes] = None,
              headers: Optional[dict] = None) -> dict:
        response = self._request(method, path, body, headers)
        raw = response.read()
        if not 200 <= response.status < 300:
            raise _client_error(response, raw)
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness payload; raises :class:`LinkerClientError` with
        ``code="draining"`` once the server refuses new work."""
        return self._json("GET", "/healthz")

    def stats(self, prometheus: bool = False):
        """Server-side :class:`ServiceStats` — the ``to_dict()`` payload,
        or the Prometheus text exposition when ``prometheus=True``."""
        if not prometheus:
            return self._json("GET", "/stats")["stats"]
        response = self._request("GET", "/stats", headers={"Accept": "text/plain"})
        raw = response.read()
        if response.status != 200:
            raise _client_error(response, raw)
        return raw.decode("utf-8")

    def link(
        self,
        text: Optional[str] = None,
        mention: Optional[str] = None,
        snippet: Optional[Snippet] = None,
        top_k: Optional[int] = None,
        priority: str = "normal",
    ) -> WirePrediction:
        """Link one mention: raw ``text`` (+ optional ``mention`` surface)
        or a full ``snippet``; ``priority`` names the admission class the
        server queues it under."""
        item = LinkItem(text=text, mention=mention, snippet=snippet, priority=priority)
        return self.link_batch([item], top_k=top_k)[0]

    def link_batch(
        self, items: Iterable[ItemLike], top_k: Optional[int] = None
    ) -> List[WirePrediction]:
        """``POST /link``: one prediction per item, in item order,
        bit-identical to ``LinkingService.link_batch`` on the server."""
        request = LinkRequest(
            items=tuple(_as_item(item) for item in items), top_k=top_k
        )
        payload = self._json("POST", "/link", request.to_json().encode())
        return list(LinkResponse.from_dict(payload).predictions)

    def link_stream(
        self, items: Iterable[ItemLike]
    ) -> Iterator[Union[WirePrediction, ErrorResponse]]:
        """``POST /link_stream``: yields one result per input line as the
        server flushes them — a prediction, or an
        :class:`ErrorResponse` for lines the server could not parse."""
        body = b"".join(
            json.dumps(_as_item(item).to_dict()).encode() + b"\n" for item in items
        )
        response = self._request(
            "POST", "/link_stream", body, {"Content-Type": "application/x-ndjson"}
        )
        if response.status != 200:
            raw = response.read()
            raise _client_error(response, raw)
        for line in response:
            line = line.strip()
            if line:
                yield parse_stream_line(line)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "LinkerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _decode_error(raw: bytes) -> Optional[ErrorResponse]:
    try:
        return ErrorResponse.from_json(raw)
    except ValueError:
        return None


def _client_error(response, raw: bytes) -> LinkerClientError:
    """The typed error for a non-2xx response: a 429 shed becomes
    :class:`LinkerOverloadedError` with its retry hint, everything else
    the generic :class:`LinkerClientError`."""
    error = _decode_error(raw)
    if response.status == 429:
        return LinkerOverloadedError(
            response.status,
            error,
            raw,
            retry_after_s=_retry_after_seconds(
                response.getheader("Retry-After"), error
            ),
        )
    return LinkerClientError(response.status, error, raw)
