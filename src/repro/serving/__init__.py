"""Batched high-throughput linking service (the production-facing layer).

Wraps a fitted :class:`~repro.core.pipeline.EDPipeline` behind
:class:`LinkingService`, which serves ``link_batch(snippets)`` and
``link_texts(texts)`` with a persisted reference-embedding cache, a
micro-batch scheduler over disjoint-union forwards, an LRU result cache,
and :class:`ServiceStats` telemetry.  On top of it,
:class:`AsyncLinkingService` (``scheduler``) accepts requests onto a
queue and forms micro-batches under a latency deadline, and
:class:`ShardedKB` (``sharding``) partitions the KB and its embedding
cache for fan-out candidate scoring (``ServiceConfig(num_shards=N)``).
See ``examples/serving_quickstart.py`` and the ``repro serve`` CLI
command.
"""

from .cache import LRUCache  # noqa: F401
from .scheduler import AsyncLinkingService, DeadlineBatcher, QueuedRequest  # noqa: F401
from .service import LinkingService, ServiceConfig  # noqa: F401
from .sharding import KBShard, ShardedKB  # noqa: F401
from .stats import ServiceStats  # noqa: F401

__all__ = [
    "LinkingService",
    "ServiceConfig",
    "ServiceStats",
    "LRUCache",
    "AsyncLinkingService",
    "DeadlineBatcher",
    "QueuedRequest",
    "ShardedKB",
    "KBShard",
]
