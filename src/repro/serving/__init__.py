"""Batched high-throughput linking service (the production-facing layer).

Wraps a fitted :class:`~repro.core.pipeline.EDPipeline` behind
:class:`LinkingService`, which serves ``link_batch(snippets)`` and
``link_texts(texts)`` with a persisted reference-embedding cache, a
micro-batch scheduler over disjoint-union forwards, an LRU result cache,
and :class:`ServiceStats` telemetry.  On top of it,
:class:`AsyncLinkingService` (``scheduler``) accepts requests onto a
queue and forms micro-batches under a latency deadline, and
:class:`ShardedKB` (``sharding``) partitions the KB and its embedding
cache for fan-out candidate scoring (``ServiceConfig(num_shards=N)``).
Sharded scoring runs on threads by default or — with
``ServiceConfig(shard_backend="process")`` — on a
:class:`ShardWorkerPool` (``workers``) of long-lived worker processes
for true GIL-free parallelism; results are bit-identical either way.
Where the KB matrices live is a separate axis — ``ServiceConfig``'s
``storage`` section (:class:`~repro.storage.StorageConfig`) picks the
in-RAM or mmap-bundle backend and controls the shared-memory arena
process workers draw their shard payloads from.

The network front door is :class:`LinkingHTTPServer` (``http``): an
asyncio + stdlib HTTP server over the async service speaking the typed,
schema-versioned wire format of ``wire`` (:class:`LinkRequest`,
:class:`LinkResponse`, :class:`ErrorResponse`), with
:class:`LinkerClient` (``client``) as the matching stdlib client.

Overload protection is the ``admission`` module:
:class:`AdmissionConfig` (the ``admission`` section of
:class:`ServiceConfig`; default shed policy from ``$REPRO_ADMISSION``)
bounds the scheduler's queue with priority classes, sheds the overflow
as structured 429s with ``Retry-After``
(:class:`AdmissionError` / :class:`LinkerOverloadedError`), and — with
``adaptive=True`` — lets the :class:`AdaptiveTuner` AIMD-adjust the
deadline/batch policy from observed queue-wait p95s.
See ``examples/serving_quickstart.py``, ``examples/http_quickstart.py``
and the ``repro serve`` CLI command (``repro serve --http PORT``).
"""

from .admission import (  # noqa: F401
    PRIORITIES,
    SHED_POLICIES,
    AdaptiveTuner,
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
)
from .cache import LRUCache  # noqa: F401
from .client import (  # noqa: F401
    LinkerClient,
    LinkerClientError,
    LinkerOverloadedError,
    retry_overloaded,
)
from .http import LinkingHTTPServer  # noqa: F401
from .scheduler import AsyncLinkingService, DeadlineBatcher, QueuedRequest  # noqa: F401
from .service import HttpConfig, LinkingService, ServiceConfig  # noqa: F401
from .sharding import KBShard, ShardedKB  # noqa: F401
from .stats import ServiceStats  # noqa: F401
from .wire import (  # noqa: F401
    WIRE_SCHEMA_VERSION,
    ErrorResponse,
    LinkItem,
    LinkRequest,
    LinkResponse,
    WireError,
    WirePrediction,
    parse_stream_line,
)
from .workers import (  # noqa: F401
    SHARD_BACKENDS,
    ShardWorkerError,
    ShardWorkerPool,
    resolve_shard_backend,
)

__all__ = [
    "LinkingService",
    "ServiceConfig",
    "HttpConfig",
    "ServiceStats",
    "LRUCache",
    "AsyncLinkingService",
    "DeadlineBatcher",
    "QueuedRequest",
    "ShardedKB",
    "KBShard",
    "ShardWorkerPool",
    "ShardWorkerError",
    "SHARD_BACKENDS",
    "resolve_shard_backend",
    "LinkingHTTPServer",
    "LinkerClient",
    "LinkerClientError",
    "LinkerOverloadedError",
    "retry_overloaded",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionError",
    "AdaptiveTuner",
    "PRIORITIES",
    "SHED_POLICIES",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "LinkItem",
    "LinkRequest",
    "LinkResponse",
    "WirePrediction",
    "ErrorResponse",
    "parse_stream_line",
]
