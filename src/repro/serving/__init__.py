"""Batched high-throughput linking service (the production-facing layer).

Wraps a fitted :class:`~repro.core.pipeline.EDPipeline` behind
:class:`LinkingService`, which serves ``link_batch(snippets)`` and
``link_texts(texts)`` with a persisted reference-embedding cache, a
micro-batch scheduler over disjoint-union forwards, an LRU result cache,
and :class:`ServiceStats` telemetry.  See ``examples/serving_quickstart.py``
and the ``repro serve`` CLI command.
"""

from .cache import LRUCache  # noqa: F401
from .service import LinkingService, ServiceConfig  # noqa: F401
from .stats import ServiceStats  # noqa: F401

__all__ = ["LinkingService", "ServiceConfig", "ServiceStats", "LRUCache"]
