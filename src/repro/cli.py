"""Command-line interface for the ED-GNN reproduction.

Run as ``python -m repro`` (or the ``repro`` console script when the
package is installed with entry points):

* ``repro datasets``  — list the five Section 4.1 datasets and their
  generated statistics at the active scale;
* ``repro synth``     — synthesise a dataset and write its KB + snippet
  corpus to disk;
* ``repro train``     — train an ED-GNN pipeline on a dataset and save a
  checkpoint directory;
* ``repro evaluate``  — train + evaluate any system (baselines included)
  and print P/R/F1;
* ``repro link``      — disambiguate a mention in free text against a
  trained checkpoint;
* ``repro serve``     — batched high-throughput linking of a file or
  dataset split through :mod:`repro.serving`, with ``--stats`` telemetry;
* ``repro explain``   — GNN-Explainer attribution for the top match of a
  mention (Figure 4a);
* ``repro config``    — dump a declarative ``LinkerConfig`` JSON or
  validate one (``repro config dump`` / ``repro config validate``);
* ``repro reproduce`` — regenerate one of the paper's tables end to end.

Every command honours ``REPRO_SCALE`` / ``REPRO_EPOCHS`` like the
benchmark suite, and accepts explicit overrides.  All construction goes
through :meth:`repro.api.Linker.from_config` — the CLI builds configs,
never pipelines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# Command implementations (lazy imports keep --help fast)
# ---------------------------------------------------------------------------
def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.datasets import DATASET_NAMES, PROFILES, load_dataset
    from repro.eval import format_table

    rows = []
    for name in DATASET_NAMES:
        profile = PROFILES[name]
        if args.profile_only:
            rows.append(
                [name, str(profile.num_nodes), str(profile.num_edges), str(profile.num_snippets)]
            )
            continue
        dataset = load_dataset(name, scale=args.scale)
        stats = dataset.stats()
        rows.append(
            [
                name,
                str(stats["nodes"]),
                str(stats["edges"]),
                str(stats["snippets"]),
                str(len(dataset.train)),
                str(len(dataset.val)),
                str(len(dataset.test)),
            ]
        )
    if args.profile_only:
        header = ["Dataset", "Nodes (Table 2)", "Edges (Table 2)", "Snippets"]
        title = "Dataset profiles (paper's Table 2 at scale 1.0)"
    else:
        header = ["Dataset", "Nodes", "Edges", "Snippets", "Train", "Val", "Test"]
        title = f"Generated datasets (scale={args.scale if args.scale else 'default'})"
    print(format_table(header, rows, title=title))
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.datasets import load_dataset
    from repro.graph import save_graph
    from repro.text import save_snippets

    dataset = load_dataset(args.dataset, scale=args.scale, use_cache=False)
    os.makedirs(args.out, exist_ok=True)
    kb_path = os.path.join(args.out, "kb.json")
    save_graph(dataset.kb, kb_path)
    for split_name, snippets in (
        ("train", dataset.train),
        ("val", dataset.val),
        ("test", dataset.test),
    ):
        save_snippets(snippets, os.path.join(args.out, f"{split_name}.jsonl"))
    stats = dataset.stats()
    print(
        f"wrote {args.dataset}: {stats['nodes']} nodes, "
        f"{stats['edges']} edges, {stats['snippets']} snippets -> {args.out}"
    )
    return 0


def _linker_config(args: argparse.Namespace, dataset_name: Optional[str] = None):
    """The declarative LinkerConfig the training flags describe — the one
    construction path every subcommand shares."""
    from repro.api import LinkerConfig
    from repro.core import ModelConfig, TrainConfig
    from repro.eval.evaluator import BEST_LAYERS, BEST_VARIANT

    dataset_name = dataset_name or getattr(args, "dataset", None)
    variant = args.variant or BEST_VARIANT.get(dataset_name, "magnn")
    layers = args.layers or BEST_LAYERS.get(dataset_name, 3)
    epochs = args.epochs or int(os.environ.get("REPRO_EPOCHS", "80"))
    extra = {}
    if getattr(args, "fuzzy", False):
        # Only name a generator when a flag asks for one: the config's
        # default honours the REPRO_CANDIDATES environment override.
        extra["candidate_generator"] = "fuzzy"
    return LinkerConfig(
        model=ModelConfig(variant=variant, num_layers=layers, seed=args.seed),
        train=TrainConfig(
            epochs=epochs,
            patience=max(10, epochs // 3),
            seed=args.seed,
            use_hard_negatives=not args.no_hard_negatives,
        ),
        augment_query_graphs=not args.no_augment,
        **extra,
    )


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.api import Linker, LinkerConfig
    from repro.datasets import load_dataset

    # Usage errors must surface before the (expensive) dataset build.
    if args.config:
        # A dumped LinkerConfig (repro config dump / Linker.save's
        # linker.json) is the whole construction recipe; the per-field
        # training flags describe a config, so mixing both is ambiguous —
        # reject rather than silently ignore the flags.
        conflicting = [
            flag
            for flag, given in (
                ("--variant", args.variant is not None),
                ("--layers", args.layers is not None),
                ("--epochs", args.epochs is not None),
                ("--seed", args.seed != 0),
                ("--fuzzy", args.fuzzy),
                ("--no-hard-negatives", args.no_hard_negatives),
                ("--no-augment", args.no_augment),
            )
            if given
        ]
        if conflicting:
            raise SystemExit(
                f"--config already describes the whole linker; drop "
                f"{', '.join(conflicting)} (or edit the config file)"
            )
        try:
            with open(args.config, encoding="utf-8") as fh:
                config = LinkerConfig.from_json(fh.read())
        except OSError as exc:
            raise SystemExit(f"cannot read {args.config}: {exc}") from None
        except ValueError as exc:
            raise SystemExit(f"{args.config}: {exc}") from None
    else:
        config = _linker_config(args)
    dataset = load_dataset(args.dataset, scale=args.scale, use_cache=False)
    linker = Linker.from_config(config, dataset.kb)
    result = linker.fit(dataset.train, dataset.val, dataset.test)
    print(
        f"ED-GNN({config.model.variant}) on {args.dataset}: "
        f"test P={result.test.precision:.3f} R={result.test.recall:.3f} "
        f"F1={result.test.f1:.3f} (best epoch {result.best_epoch})"
    )
    if args.out:
        linker.save(args.out)
        print(f"checkpoint saved -> {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.eval.evaluator import run_system

    run = run_system(
        args.dataset,
        args.system,
        num_layers=args.layers,
        epochs=args.epochs,
        seed=args.seed,
        scale=args.scale,
        use_hard_negatives=not args.no_hard_negatives,
        augment_query_graphs=not args.no_augment,
    )
    payload = {
        "dataset": args.dataset,
        "system": args.system,
        "precision": round(run.test.precision, 4),
        "recall": round(run.test.recall, 4),
        "f1": round(run.test.f1, 4),
        "best_epoch": run.best_epoch,
    }
    if args.json:
        print(json.dumps(payload))
    else:
        print(
            f"{args.system} on {args.dataset}: "
            f"P={run.test.precision:.3f} R={run.test.recall:.3f} F1={run.test.f1:.3f} "
            f"(best epoch {run.best_epoch})"
        )
    return 0


def _load_checkpoint(path: str):
    from repro.api import Linker

    if not os.path.isdir(path):
        raise SystemExit(f"checkpoint directory not found: {path}")
    return Linker.load(path)


def _prediction_payload(linker, prediction) -> dict:
    """The machine-readable shape shared by ``link`` and ``serve``."""
    return {
        "mention": prediction.mention,
        "candidates": [
            {
                "entity_id": e,
                "name": linker.entity_name(e),
                "score": round(s, 4),
            }
            for e, s in zip(prediction.ranked_entities, prediction.scores)
        ],
    }


def _cmd_link(args: argparse.Namespace) -> int:
    linker = _load_checkpoint(args.checkpoint)
    prediction = linker.disambiguate(args.text, args.mention, top_k=args.top_k)
    if args.json:
        print(json.dumps(_prediction_payload(linker, prediction)))
        return 0
    print(f"mention: {prediction.mention!r}")
    for rank, (entity, score) in enumerate(
        zip(prediction.ranked_entities, prediction.scores), start=1
    ):
        print(f"  {rank}. {linker.entity_name(entity)}  (score {score:.3f})")
    return 0


def _parse_snippet_line(linker, line: str):
    """One serve-input line: snippet JSONL if it parses, else raw text
    pushed through the (simulated) NER.  Raises ``ValueError`` on lines
    that are neither."""
    from repro.text.corpus import Snippet

    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "Text" in payload:
        try:
            return Snippet.from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad snippet JSON: {exc!r}") from None
    return linker.snippet_from_text(line)


def _iter_snippet_lines(linker, lines, source: str, limit: Optional[int], on_error=None):
    """Lazily parse non-empty input lines into snippets (stdin streaming
    must not slurp the whole stream before the first batch runs).

    A line that parses as neither snippet JSON nor linkable text aborts
    with a sited ``SystemExit`` — unless ``on_error(line, exc)`` is
    given, in which case the bad line is reported and the stream
    continues (the stdin-streaming contract: one bad record must not
    kill a long-running pipe)."""
    count = 0
    for line in lines:
        if limit is not None and count >= limit:
            return
        line = line.strip()
        if not line:
            continue
        try:
            snippet = _parse_snippet_line(linker, line)
        except ValueError as exc:
            if on_error is None:
                raise SystemExit(f"{source}: {exc}: {line!r}") from None
            on_error(line, exc)
            continue
        yield snippet
        count += 1


def _http_wait(server) -> None:
    """Block the foreground ``repro serve --http`` process until the
    server closes (tests monkeypatch this to return immediately)."""
    server.wait()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Batched linking over a text file / snippet corpus / dataset split /
    stdin stream, through the :mod:`repro.serving` service.  ``--async``
    routes requests through the deadline scheduler, ``--shards`` fans
    candidate scoring across KB shards, and ``--http PORT`` serves the
    network front door instead of reading local input; surfaces
    ServiceStats."""
    from repro.serving import AsyncLinkingService

    linker = _load_checkpoint(args.checkpoint)
    try:
        if args.deadline_ms <= 0:
            raise ValueError("--deadline-ms must be > 0")
        if args.candidates is not None:
            retrieval = None
            if args.kb_bundle is not None:
                # Point the indexed generator's loader at the served
                # bundle so a packed index (repro kb pack --with-index)
                # is memory-mapped instead of rebuilt on startup.
                from dataclasses import replace

                retrieval = replace(
                    linker.config.retrieval, bundle_path=args.kb_bundle
                )
            linker.use_candidate_generator(args.candidates, retrieval=retrieval)
        storage = None
        kb_store = args.kb_store
        if kb_store is None and args.kb_bundle is not None:
            kb_store = "mmap"  # a bundle path implies the mmap backend
        if kb_store is not None:
            from repro.storage import StorageConfig

            storage = StorageConfig(kb_store=kb_store, bundle_path=args.kb_bundle)
        admission = None
        if (
            args.shed_policy is not None
            or args.max_queue is not None
            or args.adaptive
        ):
            from dataclasses import replace

            from repro.serving import AdmissionConfig

            # Start from the env-default config ($REPRO_ADMISSION) so
            # flags layer on top of it instead of silently clobbering it.
            overrides = {}
            if args.shed_policy is not None:
                overrides["shed_policy"] = args.shed_policy
            elif args.max_queue is not None or args.adaptive:
                base = AdmissionConfig()
                if base.shed_policy == "none":
                    # --max-queue / --adaptive without an explicit policy
                    # (or env default) means "bound the queue by depth".
                    overrides["shed_policy"] = "depth"
            if args.max_queue is not None:
                overrides["max_queue"] = args.max_queue
            if args.adaptive:
                overrides["adaptive"] = True
            admission = replace(AdmissionConfig(), **overrides)
        service = linker.serve(
            max_batch_size=args.batch_size,
            cache_size=args.cache_size,
            top_k=args.top_k,
            ref_cache_path=args.ref_cache,
            shards=args.shards,
            shard_backend=args.shard_backend,
            storage=storage,
            admission=admission,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    if args.http is not None:
        from repro.serving import HttpConfig, LinkingHTTPServer

        try:
            server = LinkingHTTPServer(
                service,
                HttpConfig(host=args.host, port=args.http, deadline_ms=args.deadline_ms),
            )
        except ValueError as exc:
            service.close()
            raise SystemExit(str(exc)) from None
        try:
            server.start()
        except OSError as exc:
            server.close()
            raise SystemExit(f"cannot bind http://{args.host}:{args.http}: {exc}") from None
        print(f"serving on http://{server.host}:{server.port}", flush=True)
        try:
            _http_wait(server)
        except KeyboardInterrupt:
            print("shutting down", flush=True)
        finally:
            server.close()
        if args.stats:
            print(server.stats.format(), flush=True)
        return 0

    streaming = args.input == "-"

    def emit(prediction) -> None:
        if args.json:
            print(json.dumps(_prediction_payload(linker, prediction)), flush=streaming)
        else:
            top = prediction.top()
            print(
                f"{prediction.mention!r} -> {linker.entity_name(top)!r} "
                f"(score {prediction.scores[0]:.3f})",
                flush=streaming,
            )

    served = 0
    try:
        if streaming:
            # Incremental: results are flushed as each micro-batch lands,
            # so `repro serve --input - | head` behaves like a unix tool
            # (BrokenPipeError is handled by main()).  A line that parses
            # as neither snippet JSON nor linkable text becomes a
            # structured ErrorResponse record instead of killing the pipe.
            from repro.serving.wire import ErrorResponse

            def report_bad_line(line, exc) -> None:
                print(
                    ErrorResponse("parse_error", str(exc), detail=line).to_json(),
                    flush=True,
                )

            snippets = _iter_snippet_lines(
                linker, sys.stdin, "stdin", args.limit, on_error=report_bad_line
            )
            if args.use_async:
                with AsyncLinkingService(service, deadline_ms=args.deadline_ms) as async_service:
                    for prediction in async_service.link_stream(snippets):
                        emit(prediction)
                        served += 1
            else:
                from itertools import islice

                while chunk := list(islice(snippets, args.batch_size)):
                    for prediction in service.link_batch(chunk, top_k=args.top_k):
                        emit(prediction)
                    served += len(chunk)
        else:
            if args.input:
                with open(args.input, encoding="utf-8") as fh:
                    snippets = list(
                        _iter_snippet_lines(linker, fh, args.input, args.limit)
                    )
            else:
                from repro.datasets import load_dataset

                dataset = load_dataset(args.dataset, scale=args.scale)
                split = {
                    "train": dataset.train, "val": dataset.val, "test": dataset.test,
                }[args.split]
                snippets = list(split)[: args.limit]
            if not snippets:
                raise SystemExit("no snippets to link")
            if args.use_async:
                with AsyncLinkingService(service, deadline_ms=args.deadline_ms) as async_service:
                    predictions = async_service.link_batch(snippets)
            else:
                predictions = service.link_batch(snippets, top_k=args.top_k)
            for prediction in predictions:
                emit(prediction)
            served = len(snippets)
    finally:
        service.close()

    if served == 0:
        raise SystemExit("no snippets to link")
    if args.stats:
        if args.json:
            print(json.dumps({"stats": service.stats.to_dict()}), flush=streaming)
        else:
            print(flush=streaming)
            print(service.stats.format(), flush=streaming)
    return 0


def _cmd_kb_pack(args: argparse.Namespace) -> int:
    """Build an mmap KB bundle from a checkpoint: the feature matrix and
    (unless ``--no-embeddings``) the reference-embedding matrix as plain
    ``.npy`` files plus a fingerprinted manifest, ready for
    ``repro serve --kb-store mmap --kb-bundle DIR`` to memory-map —
    startup then skips the embedding forward entirely.  ``--with-index``
    additionally packs a sublinear candidate-retrieval index so
    ``repro serve --candidates indexed`` maps it instead of rebuilding."""
    from repro.storage import pack_bundle

    linker = _load_checkpoint(args.checkpoint)
    retrieval_index = None
    if args.with_index:
        from dataclasses import replace

        from repro.retrieval import build_retrieval_index

        retrieval = linker.config.retrieval
        if args.index_backend is not None:
            retrieval = replace(retrieval, backend=args.index_backend)
        retrieval_index = build_retrieval_index(
            linker.pipeline.kb, retrieval, embedder=linker.pipeline.embedder
        )
    manifest = pack_bundle(
        linker.pipeline,
        args.out,
        embeddings=not args.no_embeddings,
        retrieval_index=retrieval_index,
    )
    if args.json:
        print(json.dumps({"bundle": args.out, "manifest": manifest}))
    else:
        features = manifest["features"]
        print(f"packed KB bundle at {args.out}")
        print(f"  features  {tuple(features['shape'])} {features['dtype']}")
        if manifest["h_ref"] is not None:
            h_ref = manifest["h_ref"]
            print(
                f"  h_ref     {tuple(h_ref['shape'])} {h_ref['dtype']} "
                f"(fingerprint {h_ref['fingerprint']})"
            )
        else:
            print("  h_ref     (not packed; serve computes it on startup)")
        if manifest.get("retrieval") is not None:
            entry = manifest["retrieval"]
            arrays = ", ".join(sorted(entry["arrays"]))
            print(
                f"  retrieval {entry['backend']} index "
                f"(fingerprint {entry['fingerprint']}; arrays: {arrays})"
            )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core import GNNExplainer

    linker = _load_checkpoint(args.checkpoint)
    snippet = linker.snippet_from_text(args.text, args.mention)
    prediction = linker.disambiguate_snippet(snippet, top_k=1)
    target = prediction.top()
    # The explainer drives engine internals the facade does not wrap.
    pipeline = linker.pipeline
    query_graph = pipeline.build_query_graphs([snippet])[0]
    explainer = GNNExplainer(pipeline.model, pipeline.kb, epochs=args.opt_epochs)
    explanation = explainer.explain(
        query_graph, target, k_hops=args.hops, top_k=args.top_k
    )
    print(
        f"match: {explanation.mention_surface!r} -> {explanation.entity_name!r} "
        f"(score {explanation.matching_score:.3f})"
    )
    if not explanation.top_edges:
        print("  (no edges in the candidate's ego network)")
    for edge in explanation.top_edges:
        print(f"  {edge}")
    return 0


def _cmd_config_dump(args: argparse.Namespace) -> int:
    """Print (or write) the LinkerConfig the given flags describe — the
    exact payload ``Linker.from_config`` consumes and ``Linker.save``
    persists as ``linker.json``."""
    text = _linker_config(args).to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_config_validate(args: argparse.Namespace) -> int:
    from repro.api import LinkerConfig

    try:
        with open(args.file, encoding="utf-8") as fh:
            config = LinkerConfig.from_json(fh.read())
    except OSError as exc:
        raise SystemExit(f"cannot read {args.file}: {exc}") from None
    except ValueError as exc:
        raise SystemExit(f"{args.file}: {exc}") from None
    print(
        f"{args.file}: valid LinkerConfig — variant={config.model.variant}, "
        f"candidate_generator={config.candidate_generator}, ner={config.ner}, "
        f"embedder={config.embedder}"
    )
    return 0


def _f1_grid(datasets, columns, run_column, row_head=None) -> List[List[str]]:
    """Rows of an F1 table: one line per dataset, one cell per column
    (the shape Tables 3/4/5 share; ``run_column`` yields a SystemRun)."""
    rows = []
    for name in datasets:
        row = ([row_head(name)] if row_head else []) + [name]
        row += [f"{run_column(name, col).test.f1:.3f}" for col in columns]
        rows.append(row)
    return rows


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.eval import format_table
    from repro.eval.evaluator import BEST_VARIANT, run_best_variant, run_system

    datasets: List[str] = args.datasets
    epochs = args.epochs
    common = dict(epochs=epochs, seed=args.seed, scale=args.scale)

    if args.experiment == "table2":
        from repro.datasets import load_dataset

        rows = []
        for name in datasets:
            stats = load_dataset(name, scale=args.scale).stats()
            rows.append([name, str(stats["nodes"]), str(stats["edges"])])
        print(format_table(["Dataset", "# Nodes", "# Edges"], rows, title="Table 2"))
        return 0

    if args.experiment == "table3":
        systems = args.systems or [
            "DeepMatcher", "NormCo", "NCEL", "graphsage", "rgcn", "magnn",
        ]
        rows = _f1_grid(datasets, systems, lambda name, s: run_system(name, s, **common))
        print(
            format_table(
                ["Dataset"] + [f"{s} F1" for s in systems], rows, title="Table 3 (F1)"
            )
        )
        return 0

    if args.experiment == "table4":
        configs = [
            ("Basic", dict(use_hard_negatives=False, augment_query_graphs=False)),
            ("Query graph aug", dict(use_hard_negatives=False, augment_query_graphs=True)),
            ("Neg sampling", dict(use_hard_negatives=True, augment_query_graphs=False)),
        ]
        rows = _f1_grid(
            datasets,
            [kwargs for _, kwargs in configs],
            lambda name, kwargs: run_best_variant(name, **common, **kwargs),
            row_head=lambda name: f"ED-GNN({BEST_VARIANT[name]})",
        )
        print(
            format_table(
                ["Method", "Dataset"] + [label for label, _ in configs],
                rows,
                title="Table 4 (F1)",
            )
        )
        return 0

    if args.experiment == "table5":
        layer_range = [1, 2, 3, 4]
        rows = _f1_grid(
            datasets,
            layer_range,
            lambda name, layers: run_best_variant(name, num_layers=layers, **common),
        )
        print(
            format_table(
                ["Dataset"] + [f"{n} layers" for n in layer_range],
                rows,
                title="Table 5 (F1 by number of layers)",
            )
        )
        return 0

    if args.experiment == "fig4b":
        for name in datasets:
            run = run_best_variant(name, **common)
            curve = run.convergence
            checkpoints = [e for e in (0, 5, 10, 15, 20, 30, epochs or 0) if e < len(curve)]
            series = "  ".join(f"ep{e}:{curve[e][1]:.3f}" for e in checkpoints)
            print(f"{name} ({BEST_VARIANT[name]}): {series}")
        return 0

    raise SystemExit(f"unknown experiment {args.experiment!r}")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def _add_common_training_flags(parser: argparse.ArgumentParser, scale: bool = True) -> None:
    parser.add_argument("--epochs", type=int, default=None, help="training epochs")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    if scale:
        # A dataset-generation knob, not a construction knob — commands
        # that only build a LinkerConfig (config dump) must not take it.
        parser.add_argument("--scale", type=float, default=None, help="dataset scale in (0, 1]")
    parser.add_argument("--layers", type=int, default=None, help="GNN layers")
    parser.add_argument(
        "--no-hard-negatives",
        action="store_true",
        help="disable semantic-driven negative sampling (Section 3.2)",
    )
    parser.add_argument(
        "--no-augment",
        action="store_true",
        help="disable query-graph semantic augmentation (Section 3.1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ED-GNN medical entity disambiguation (SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list the five evaluation datasets")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument(
        "--profile-only",
        action="store_true",
        help="print the Table 2 target sizes without generating",
    )
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("synth", help="synthesise a dataset to disk")
    p.add_argument("--dataset", required=True)
    p.add_argument("--out", required=True, help="output directory")
    p.add_argument("--scale", type=float, default=None)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("train", help="train an ED-GNN linker, optionally checkpoint it")
    p.add_argument("--dataset", required=True)
    p.add_argument("--variant", default=None, help="encoder variant (default: best per dataset)")
    p.add_argument(
        "--config",
        default=None,
        help="build from a dumped LinkerConfig JSON (repro config dump); "
        "overrides the construction flags",
    )
    p.add_argument("--out", default=None, help="checkpoint directory to write")
    p.add_argument(
        "--fuzzy",
        action="store_true",
        help="use the 'fuzzy' candidate generator (approximate retrieval on index misses)",
    )
    _add_common_training_flags(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("evaluate", help="train + evaluate any system on a dataset")
    p.add_argument("--dataset", required=True)
    p.add_argument("--system", required=True, help="DeepMatcher/NormCo/NCEL or an ED-GNN variant")
    p.add_argument("--json", action="store_true", help="print machine-readable JSON")
    _add_common_training_flags(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("link", help="disambiguate a mention against a checkpoint")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--text", required=True)
    p.add_argument("--mention", default=None, help="surface form to disambiguate")
    p.add_argument("--top-k", type=int, default=5)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_link)

    p = sub.add_parser(
        "serve",
        help="batched linking over a file or dataset split (repro.serving)",
    )
    p.add_argument("--checkpoint", required=True)
    p.add_argument(
        "--input",
        default=None,
        help="file of raw texts (one per line) or snippet JSONL; '-' streams "
        "JSONL/text from stdin with incremental output; default: dataset split",
    )
    p.add_argument("--dataset", default="NCBI", help="dataset when --input is omitted")
    p.add_argument("--split", default="test", choices=["train", "val", "test"])
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--limit", type=int, default=None, help="cap the number of snippets")
    p.add_argument("--batch-size", type=int, default=32, help="micro-batch size")
    p.add_argument("--cache-size", type=int, default=2048, help="LRU entries; 0 disables")
    p.add_argument("--ref-cache", default=None, help="persist KB embeddings to this .npz")
    p.add_argument("--top-k", type=int, default=5)
    p.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="queue requests through the deadline-aware micro-batch scheduler",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=25.0,
        help="latency budget before a partial micro-batch is flushed (--async)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the KB into N shards and fan candidate scoring out",
    )
    p.add_argument(
        "--shard-backend",
        default=None,
        choices=["thread", "process"],
        help="shard scoring backend: in-process threads (default) or "
        "long-lived worker processes (true parallelism, one GIL per shard)",
    )
    p.add_argument(
        "--candidates",
        default=None,
        choices=["exact", "fuzzy", "indexed"],
        help="candidate generator override: 'indexed' retrieves through a "
        "sublinear shortlist index (REPRO_CANDIDATES sets the default; "
        "with --kb-bundle a packed index is memory-mapped, not rebuilt)",
    )
    p.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the HTTP front door on PORT (0 binds an ephemeral "
        "port) instead of reading local input; POST /link, "
        "POST /link_stream, GET /healthz, GET /stats",
    )
    p.add_argument(
        "--kb-store",
        default=None,
        choices=["memory", "mmap"],
        help="where the KB matrices live: in-RAM arrays (default) or "
        "read-only memory maps of a packed bundle (REPRO_KB_STORE "
        "overrides the default)",
    )
    p.add_argument(
        "--kb-bundle",
        default=None,
        metavar="DIR",
        help="mmap bundle directory from `repro kb pack` (implies "
        "--kb-store mmap; default: a private temporary bundle)",
    )
    p.add_argument(
        "--shed-policy",
        default=None,
        choices=["none", "depth", "wait"],
        help="admission control: shed overflow by queue depth or by "
        "estimated queue wait (429 + Retry-After over --http; "
        "REPRO_ADMISSION sets the default)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="admission queue bound before load shedding kicks in "
        "(implies --shed-policy depth unless one is set)",
    )
    p.add_argument(
        "--adaptive",
        action="store_true",
        help="AIMD-tune the deadline and micro-batch size from observed "
        "queue-wait p95s (implies --shed-policy depth unless one is set)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address for --http")
    p.add_argument("--json", action="store_true")
    p.add_argument("--stats", action="store_true", help="print serving stats afterwards")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("kb", help="KB storage utilities (repro.storage)")
    kb_sub = p.add_subparsers(dest="action", required=True)
    k = kb_sub.add_parser(
        "pack",
        help="build an mmap KB bundle (features + embeddings + manifest) "
        "from a checkpoint for `repro serve --kb-store mmap`",
    )
    k.add_argument("--checkpoint", required=True)
    k.add_argument("--out", required=True, help="bundle directory to write")
    k.add_argument(
        "--no-embeddings",
        action="store_true",
        help="pack only the feature matrix (serve recomputes embeddings)",
    )
    k.add_argument(
        "--with-index",
        action="store_true",
        help="also pack a sublinear candidate-retrieval index for "
        "`repro serve --candidates indexed` (postings/signatures are "
        "memory-mapped at serve time)",
    )
    k.add_argument(
        "--index-backend",
        default=None,
        choices=["ngram", "lsh"],
        help="retrieval backend for --with-index (default: the "
        "checkpoint config's retrieval.backend)",
    )
    k.add_argument("--json", action="store_true")
    k.set_defaults(func=_cmd_kb_pack)

    p = sub.add_parser("explain", help="GNN-Explainer attribution for the top match")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--text", required=True)
    p.add_argument("--mention", default=None)
    p.add_argument("--top-k", type=int, default=3)
    p.add_argument("--hops", type=int, default=2)
    p.add_argument("--opt-epochs", type=int, default=100, help="mask optimisation steps")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("config", help="dump or validate a declarative LinkerConfig")
    config_sub = p.add_subparsers(dest="action", required=True)
    d = config_sub.add_parser(
        "dump", help="print the LinkerConfig JSON the training flags describe"
    )
    d.add_argument("--dataset", default=None, help="pick the per-dataset best variant/layers")
    d.add_argument("--variant", default=None, help="encoder variant (default: best per dataset)")
    d.add_argument(
        "--fuzzy", action="store_true", help="use the 'fuzzy' candidate generator"
    )
    d.add_argument("--out", default=None, help="write to a file instead of stdout")
    _add_common_training_flags(d, scale=False)
    d.set_defaults(func=_cmd_config_dump)
    v = config_sub.add_parser("validate", help="parse and validate a LinkerConfig JSON file")
    v.add_argument("file", help="path to the config JSON")
    v.set_defaults(func=_cmd_config_validate)

    p = sub.add_parser("reproduce", help="regenerate one of the paper's experiments")
    p.add_argument(
        "--experiment",
        required=True,
        choices=["table2", "table3", "table4", "table5", "fig4b"],
    )
    p.add_argument("--datasets", nargs="+", default=["NCBI", "BioCDR"])
    p.add_argument("--systems", nargs="+", default=None, help="table3 only")
    p.add_argument("--epochs", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=None)
    p.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. `repro serve | head`);
        # suppress the traceback and exit quietly like standard unix tools.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
