"""Error analysis (Section 4.5, Table 6).

Classifies every misclassified test *mention* into the paper's three
error categories:

* **Gqry construction** — the query graph carried ambiguous semantic
  information: some mention matched entities of multiple types, so the
  augmentation added wrong/irrelevant relationships (Section 4.5 reasons
  1 and 2).
* **Insufficient structure** — the snippet was too short to build a
  useful query graph (the paper: "almost 50% of the errors are due to a
  lack of graph structural information"; e.g. one context mention only).
* **Highly similar nodes** — the query graph was fine but the gold
  entity sits in a dense region of near-identical candidates (the hard
  negatives of Section 3.2).

The categories are assigned in that priority order, mirroring the
paper's narrative (construction problems mask the rest; density is the
residual explanation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence

if TYPE_CHECKING:  # avoid a circular import; PairRecord is typing-only here
    from ..core.trainer import PairRecord

GQRY_CONSTRUCTION = "Gqry construction"
INSUFFICIENT_STRUCTURE = "Insufficient structure"
HIGHLY_SIMILAR = "Highly similar nodes"

CATEGORIES = (GQRY_CONSTRUCTION, INSUFFICIENT_STRUCTURE, HIGHLY_SIMILAR)


@dataclass
class ErrorBreakdown:
    """Counts and rates of error categories over one test set."""

    total_mentions: int
    errors: Dict[str, int] = field(default_factory=dict)

    def rate(self, category: str) -> float:
        """Errors of ``category`` as a fraction of the test set (Table 6
        reports '% of each test set')."""
        if self.total_mentions == 0:
            return 0.0
        return self.errors.get(category, 0) / self.total_mentions

    def rates(self) -> Dict[str, float]:
        return {c: self.rate(c) for c in CATEGORIES}

    @property
    def total_errors(self) -> int:
        return sum(self.errors.values())


def _mention_failed(records: Sequence[PairRecord]) -> bool:
    """A mention counts as an error when any of its evaluation pairs is
    misclassified (missed positive or false match)."""
    return any(bool(r.prediction) != bool(r.label) for r in records)


def categorize(records: Sequence[PairRecord], insufficient_context_max: int = 1) -> str:
    """Assign the paper's error category to one failed mention."""
    qg = records[0].query_graph
    if qg.multi_type_mentions > 0:
        return GQRY_CONSTRUCTION
    if qg.num_context_nodes <= insufficient_context_max:
        return INSUFFICIENT_STRUCTURE
    return HIGHLY_SIMILAR


def analyze_errors(
    test_records: Sequence[PairRecord],
    insufficient_context_max: int = 1,
) -> ErrorBreakdown:
    """Group a trainer's test records by mention and classify failures."""
    by_mention: Dict[int, List[PairRecord]] = {}
    for record in test_records:
        by_mention.setdefault(id(record.query_graph), []).append(record)

    breakdown = ErrorBreakdown(total_mentions=len(by_mention))
    for records in by_mention.values():
        if not _mention_failed(records):
            continue
        category = categorize(records, insufficient_context_max)
        breakdown.errors[category] = breakdown.errors.get(category, 0) + 1
    return breakdown
