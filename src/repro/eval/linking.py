"""End-to-end linking evaluation (ranking view).

The paper's Section 4.1 protocol scores *pair classification* — each
(mention, candidate) pair gets an independent match/no-match decision.
A deployed disambiguator instead *ranks* candidates and links the top
one.  This module evaluates that deployment view: run the full pipeline
(`NER -> query graph -> Siamese GNN -> candidate ranking`) over test
snippets and report Hits@1 (linking accuracy), Hits@k, and MRR —
complementing, not replacing, the Table 3 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..text.corpus import Snippet, parse_cui

__all__ = ["LinkingResult", "evaluate_linking"]


@dataclass
class LinkingResult:
    """Ranking metrics over end-to-end linked test snippets."""

    hits_at_1: float
    hits_at_k: float
    mrr: float
    k: int
    n_evaluated: int
    n_skipped: int  # snippets without a resolvable gold entity
    ranks: List[Optional[int]] = field(default_factory=list, repr=False)

    def __str__(self) -> str:
        return (
            f"Hits@1={self.hits_at_1:.3f} Hits@{self.k}={self.hits_at_k:.3f} "
            f"MRR={self.mrr:.3f} (n={self.n_evaluated})"
        )


def evaluate_linking(
    pipeline,
    snippets: Sequence[Snippet],
    top_k: int = 5,
    restrict_to_candidates: bool = True,
) -> LinkingResult:
    """Link every snippet's ambiguous mention and score against its gold.

    ``pipeline`` is a trained :class:`~repro.core.pipeline.EDPipeline`.
    A snippet contributes rank ``r`` when its gold entity appears at
    position ``r`` (1-based) of the ranked candidates, else ``None``
    (reciprocal rank 0).  Snippets whose gold annotation is empty are
    skipped and counted in ``n_skipped``.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    ranks: List[Optional[int]] = []
    skipped = 0
    for snippet in snippets:
        link_id = snippet.ambiguous_mention.link_id
        if not link_id:
            skipped += 1
            continue
        gold = parse_cui(link_id)
        prediction = pipeline.disambiguate_snippet(
            snippet, top_k=top_k, restrict_to_candidates=restrict_to_candidates
        )
        try:
            ranks.append(prediction.ranked_entities.index(gold) + 1)
        except ValueError:
            ranks.append(None)

    n = len(ranks)
    if n == 0:
        return LinkingResult(0.0, 0.0, 0.0, top_k, 0, skipped)
    hits1 = sum(1 for r in ranks if r == 1) / n
    hitsk = sum(1 for r in ranks if r is not None and r <= top_k) / n
    mrr = sum(1.0 / r for r in ranks if r is not None) / n
    return LinkingResult(hits1, hitsk, mrr, top_k, n, skipped, ranks)
