"""Per-discrepancy-class evaluation breakdown.

Section 4.1 notes that the evaluation negatives "purposely cover
different cases (e.g., abbreviation, synonym, acronym, and
simplification)"; Section 1 motivates the whole problem with those same
discrepancy classes.  This module splits a system's test pairs by the
*inferred* discrepancy class between the ambiguous mention surface and
the gold entity name (see
:func:`repro.text.variants.classify_discrepancy`) and reports accuracy
per class — which classes a system actually solves, not just its
aggregate F1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..graph.hetero import HeteroGraph
from ..text.variants import VariantKind, classify_discrepancy

__all__ = ["ClassStats", "DiscrepancyBreakdown", "discrepancy_breakdown", "OTHER"]

#: bucket for surfaces no generator explains (e.g. compound corruptions)
OTHER = "other"


@dataclass
class ClassStats:
    """Accuracy of the positive test pairs in one discrepancy class."""

    kind: str
    total: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


@dataclass
class DiscrepancyBreakdown:
    """Per-class stats plus the overall positive-pair accuracy."""

    classes: Dict[str, ClassStats] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(s.total for s in self.classes.values())

    @property
    def overall_accuracy(self) -> float:
        total = self.total
        if not total:
            return 0.0
        return sum(s.correct for s in self.classes.values()) / total

    def rows(self) -> List[List[str]]:
        """Table rows (class, n, accuracy) sorted by class name."""
        out = []
        for kind in sorted(self.classes):
            s = self.classes[kind]
            out.append([kind, str(s.total), f"{s.accuracy:.3f}"])
        return out


def discrepancy_breakdown(
    records: Sequence,
    kb: HeteroGraph,
) -> DiscrepancyBreakdown:
    """Classify every *positive* evaluated pair by discrepancy class.

    ``records`` are the :class:`~repro.core.trainer.PairRecord` objects a
    trainer's test evaluation returns (``record=True``); a pair counts as
    correct when its thresholded prediction equals its label.
    """
    breakdown = DiscrepancyBreakdown()
    for record in records:
        if record.label != 1:
            continue
        surface = record.query_graph.mention_surface
        canonical = kb.node_name(record.ref_entity)
        synonyms = kb.node_aliases(record.ref_entity)
        kind: Optional[VariantKind] = classify_discrepancy(canonical, surface, synonyms)
        key = kind.value if kind is not None else OTHER
        stats = breakdown.classes.setdefault(key, ClassStats(kind=key))
        stats.total += 1
        stats.correct += int(bool(record.prediction) == bool(record.label))
    return breakdown
