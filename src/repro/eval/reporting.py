"""Plain-text table rendering for the benchmark harness.

The benches print the same rows the paper's tables report; this module
keeps the formatting in one place (fixed-width text, optionally
markdown) so bench output diffs cleanly across runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .metrics import PRF


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*[str(c) for c in row]))
    return "\n".join(lines)


def format_prf(prf: PRF) -> List[str]:
    return [f"{prf.precision:.3f}", f"{prf.recall:.3f}", f"{prf.f1:.3f}"]


def results_table(
    results: Dict[str, Dict[str, PRF]],
    title: str = "",
    systems: Optional[Sequence[str]] = None,
    datasets: Optional[Sequence[str]] = None,
) -> str:
    """Render a Table 3-style grid: rows = datasets, per-system P/R/F1.

    ``results[system][dataset] -> PRF``.
    """
    systems = list(systems or results.keys())
    dataset_names: List[str] = list(datasets or [])
    if not dataset_names:
        seen: List[str] = []
        for system in systems:
            for ds in results.get(system, {}):
                if ds not in seen:
                    seen.append(ds)
        dataset_names = seen

    headers = ["Dataset"]
    for system in systems:
        headers += [f"{system} P", f"{system} R", f"{system} F1"]
    rows: List[List[str]] = []
    for ds in dataset_names:
        row = [ds]
        for system in systems:
            prf = results.get(system, {}).get(ds)
            row += format_prf(prf) if prf else ["-", "-", "-"]
        rows.append(row)
    return format_table(headers, rows, title=title)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)
