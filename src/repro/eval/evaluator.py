"""System-level evaluation harness.

One entry point per paper experiment: given a dataset name and a system
name ("DeepMatcher" / "NormCo" / "NCEL" / "graphsage" / "rgcn" /
"magnn" / "gat"), train it under the Section 4.2 settings and return the
test P/R/F1 plus everything the downstream tables need (history for
Figure 4b, test records for Table 6).  The benchmark modules are thin
wrappers over this.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import baselines as _baselines  # noqa: F401  (registers baseline systems)
from ..core.model import ENCODER_BUILDERS, ModelConfig, encoder_names
from ..core.pipeline import EDPipeline
from ..core.trainer import PairRecord, TrainConfig
from ..datasets import load_dataset
from .metrics import PRF

#: the best ED-GNN variant per dataset, as reported in Table 3 — used by
#: the Table 4/5/6 and Figure 4 benches ("we choose the best performing
#: ED-GNN variant from Table 3 for each dataset").
BEST_VARIANT: Dict[str, str] = {
    "MDX": "magnn",
    "MIMIC-III": "graphsage",
    "NCBI": "graphsage",
    "ShARe": "magnn",
    "BioCDR": "rgcn",
}

#: optimal layer count per dataset (Table 5's peak)
BEST_LAYERS: Dict[str, int] = {
    "MDX": 3,
    "MIMIC-III": 3,
    "NCBI": 2,
    "ShARe": 3,
    "BioCDR": 3,
}

ALL_SYSTEMS = ("DeepMatcher", "NormCo", "NCEL", "graphsage", "rgcn", "magnn")


def default_epochs() -> int:
    """Training budget; override with REPRO_EPOCHS (default 80)."""
    return int(os.environ.get("REPRO_EPOCHS", "80"))


@dataclass
class SystemRun:
    """Everything one training run produces."""

    dataset: str
    system: str
    test: PRF
    best_val: PRF
    best_epoch: int
    convergence: List[Tuple[int, float]] = field(default_factory=list)
    test_records: List[PairRecord] = field(default_factory=list)
    pipeline: Optional[EDPipeline] = None


def run_system(
    dataset_name: str,
    system: str,
    num_layers: Optional[int] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    scale: Optional[float] = None,
    use_hard_negatives: bool = True,
    augment_query_graphs: bool = True,
    model_overrides: Optional[dict] = None,
    train_overrides: Optional[dict] = None,
) -> SystemRun:
    """Train and evaluate one system on one dataset (fresh synthesis)."""
    epochs = default_epochs() if epochs is None else epochs
    dataset = load_dataset(dataset_name, scale=scale, use_cache=False)

    patience = max(10, epochs // 3)
    # One registry for every system: the encoder table holds the GNN
    # variants and the Section 4.2 baselines (marker builders carrying
    # ``baseline_cls`` — see repro.baselines).
    builder = ENCODER_BUILDERS.get(system)
    if builder is None:
        raise ValueError(
            f"unknown system {system!r}; options: {encoder_names()}"
        )
    baseline_cls = getattr(builder, "baseline_cls", None)
    if baseline_cls is not None:
        model = baseline_cls(dataset.kb, seed=seed, epochs=epochs, patience=patience)
        result = model.fit(dataset.train, dataset.val, dataset.test)
        return SystemRun(
            dataset=dataset_name,
            system=system,
            test=result.test,
            best_val=result.best_val,
            best_epoch=result.best_epoch,
            convergence=[(e, f1) for e, _, f1 in result.history],
        )
    # Lazy: the api facade sits above eval in the layering.
    from ..api import Linker, LinkerConfig

    layers = num_layers if num_layers is not None else BEST_LAYERS.get(dataset_name, 3)
    model_kwargs = dict(variant=system, num_layers=layers, seed=seed)
    model_kwargs.update(model_overrides or {})
    train_kwargs = dict(
        epochs=epochs,
        patience=patience,
        seed=seed,
        use_hard_negatives=use_hard_negatives,
    )
    train_kwargs.update(train_overrides or {})
    linker = Linker.from_config(
        LinkerConfig(
            model=ModelConfig(**model_kwargs),
            train=TrainConfig(**train_kwargs),
            augment_query_graphs=augment_query_graphs,
        ),
        dataset.kb,
    )
    result = linker.fit(dataset.train, dataset.val, dataset.test)
    return SystemRun(
        dataset=dataset_name,
        system=system,
        test=result.test,
        best_val=result.best_val,
        best_epoch=result.best_epoch,
        convergence=result.convergence_curve,
        test_records=result.test_records,
        pipeline=linker.pipeline,
    )


def run_best_variant(
    dataset_name: str,
    epochs: Optional[int] = None,
    seed: int = 0,
    **kwargs,
) -> SystemRun:
    """The per-dataset best ED-GNN variant (Tables 4/5/6, Figure 4)."""
    return run_system(
        dataset_name,
        BEST_VARIANT[dataset_name],
        epochs=epochs,
        seed=seed,
        **kwargs,
    )
