"""Evaluation metrics (Section 4.3): precision, recall, F1 over the pair
classification protocol, plus ranking metrics for the end-to-end linking
extension.

Per Section 4.1, validation and test sets contain each snippet's positive
(mention, gold entity) pair *plus the same number of hard negative pairs*;
systems classify each pair and are scored on the positive class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float

    def as_dict(self) -> Dict[str, float]:
        return {"precision": self.precision, "recall": self.recall, "f1": self.f1}

    def __str__(self) -> str:
        return f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f}"


def precision_recall_f1(labels: np.ndarray, predictions: np.ndarray) -> PRF:
    """Binary P/R/F1 on the positive class.

    Degenerate cases follow the usual convention: empty denominators
    yield 0.0.
    """
    labels = np.asarray(labels).astype(bool)
    predictions = np.asarray(predictions).astype(bool)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must align")
    tp = int(np.sum(labels & predictions))
    fp = int(np.sum(~labels & predictions))
    fn = int(np.sum(labels & ~predictions))
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return PRF(precision, recall, f1)


def classify_logits(logits: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Sigmoid-threshold pair classification."""
    probs = 1.0 / (1.0 + np.exp(-np.clip(np.asarray(logits, dtype=np.float64), -60, 60)))
    return probs >= threshold


def prf_from_logits(labels: np.ndarray, logits: np.ndarray, threshold: float = 0.5) -> PRF:
    return precision_recall_f1(labels, classify_logits(logits, threshold))


def mean_prf(results: Sequence[PRF]) -> PRF:
    """Unweighted mean of several P/R/F1 triples (the paper reports the
    average over 100 test repetitions)."""
    if not results:
        raise ValueError("mean_prf of empty sequence")
    return PRF(
        float(np.mean([r.precision for r in results])),
        float(np.mean([r.recall for r in results])),
        float(np.mean([r.f1 for r in results])),
    )


def hits_at_k(ranked_ids: Sequence[np.ndarray], gold_ids: Sequence[int], k: int) -> float:
    """Fraction of queries whose gold entity appears in the top-k ranked
    candidates (end-to-end linking metric; extension beyond the paper)."""
    if len(ranked_ids) != len(gold_ids):
        raise ValueError("ranked_ids and gold_ids must align")
    if not ranked_ids:
        return 0.0
    hits = sum(1 for ranked, gold in zip(ranked_ids, gold_ids) if gold in ranked[:k])
    return hits / len(ranked_ids)


def mean_reciprocal_rank(ranked_ids: Sequence[np.ndarray], gold_ids: Sequence[int]) -> float:
    """MRR of the gold entity in the ranked candidate lists."""
    if len(ranked_ids) != len(gold_ids):
        raise ValueError("ranked_ids and gold_ids must align")
    if not ranked_ids:
        return 0.0
    total = 0.0
    for ranked, gold in zip(ranked_ids, gold_ids):
        positions = np.nonzero(np.asarray(ranked) == gold)[0]
        if len(positions):
            total += 1.0 / (int(positions[0]) + 1)
    return total / len(ranked_ids)
