"""Statistical machinery on top of the Section 4.3 metrics.

The paper reports point estimates ("the average measurements ... for 100
repetitions"); a reproduction on synthetic substrates additionally needs
uncertainty and significance to tell real shape differences from noise:

* :func:`bootstrap_prf` — percentile bootstrap confidence intervals for
  precision / recall / F1 over the evaluated pairs;
* :func:`paired_permutation_test` — sign-flip permutation test for the
  F1 difference of two systems evaluated on *identical* pairs (which the
  Section 4.1 protocol guarantees);
* :func:`mcnemar_test` — exact McNemar test on the systems' discordant
  correct/incorrect pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy import stats

from .metrics import precision_recall_f1

__all__ = [
    "ConfidenceInterval",
    "BootstrapResult",
    "bootstrap_prf",
    "paired_permutation_test",
    "mcnemar_test",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided percentile interval."""

    point: float
    low: float
    high: float

    def __str__(self) -> str:
        return f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}]"

    @property
    def width(self) -> float:
        return self.high - self.low


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap CIs for the three Section 4.3 metrics."""

    precision: ConfidenceInterval
    recall: ConfidenceInterval
    f1: ConfidenceInterval
    n_resamples: int
    confidence: float


def _validate_pairs(labels: np.ndarray, predictions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=bool)
    predictions = np.asarray(predictions, dtype=bool)
    if labels.shape != predictions.shape or labels.ndim != 1:
        raise ValueError("labels and predictions must be aligned 1-d arrays")
    if len(labels) == 0:
        raise ValueError("cannot bootstrap zero pairs")
    return labels, predictions


def bootstrap_prf(
    labels: np.ndarray,
    predictions: np.ndarray,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Percentile-bootstrap CIs for P/R/F1 over evaluated pairs."""
    labels, predictions = _validate_pairs(labels, predictions)
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = len(labels)
    point = precision_recall_f1(labels, predictions)

    samples = np.empty((n_resamples, 3), dtype=np.float64)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        prf = precision_recall_f1(labels[idx], predictions[idx])
        samples[b] = (prf.precision, prf.recall, prf.f1)

    alpha = (1.0 - confidence) / 2.0
    lows = np.quantile(samples, alpha, axis=0)
    highs = np.quantile(samples, 1.0 - alpha, axis=0)
    return BootstrapResult(
        precision=ConfidenceInterval(point.precision, float(lows[0]), float(highs[0])),
        recall=ConfidenceInterval(point.recall, float(lows[1]), float(highs[1])),
        f1=ConfidenceInterval(point.f1, float(lows[2]), float(highs[2])),
        n_resamples=n_resamples,
        confidence=confidence,
    )


def paired_permutation_test(
    labels: np.ndarray,
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    n_permutations: int = 1000,
    seed: int = 0,
) -> float:
    """Two-sided sign-flip permutation p-value for the F1 difference.

    Under the null (the systems are exchangeable), swapping the two
    systems' predictions on a random subset of pairs leaves the F1
    difference distribution symmetric around zero; the p-value is the
    fraction of permuted differences at least as extreme as the observed
    one.  Requires both systems evaluated on the *same* labelled pairs.
    """
    labels, predictions_a = _validate_pairs(labels, predictions_a)
    _, predictions_b = _validate_pairs(labels, predictions_b)
    rng = np.random.default_rng(seed)
    n = len(labels)

    def f1_diff(a: np.ndarray, b: np.ndarray) -> float:
        return precision_recall_f1(labels, a).f1 - precision_recall_f1(labels, b).f1

    observed = abs(f1_diff(predictions_a, predictions_b))
    if observed == 0.0:
        return 1.0
    hits = 0
    for _ in range(n_permutations):
        flip = rng.random(n) < 0.5
        a = np.where(flip, predictions_b, predictions_a)
        b = np.where(flip, predictions_a, predictions_b)
        if abs(f1_diff(a, b)) >= observed - 1e-12:
            hits += 1
    return (hits + 1) / (n_permutations + 1)


def mcnemar_test(
    labels: np.ndarray,
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
) -> Dict[str, float]:
    """Exact McNemar test on per-pair correctness of two systems.

    Returns the discordant counts (``only_a`` — pairs only system A got
    right, ``only_b`` — only system B) and the exact two-sided binomial
    p-value.  A p-value of 1.0 with zero discordant pairs means the two
    systems made identical mistakes.
    """
    labels, predictions_a = _validate_pairs(labels, predictions_a)
    _, predictions_b = _validate_pairs(labels, predictions_b)
    correct_a = predictions_a == labels
    correct_b = predictions_b == labels
    only_a = int(np.sum(correct_a & ~correct_b))
    only_b = int(np.sum(~correct_a & correct_b))
    discordant = only_a + only_b
    if discordant == 0:
        p_value = 1.0
    else:
        p_value = float(stats.binomtest(only_a, discordant, 0.5).pvalue)
    return {"only_a": only_a, "only_b": only_b, "p_value": p_value}
