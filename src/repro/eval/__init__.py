"""Evaluation: metrics (Section 4.3), the system-level harness, the error
analysis of Section 4.5, and table rendering for the benches.
"""

from .bootstrap import (  # noqa: F401
    BootstrapResult,
    ConfidenceInterval,
    bootstrap_prf,
    mcnemar_test,
    paired_permutation_test,
)
from .breakdown import (  # noqa: F401
    OTHER,
    ClassStats,
    DiscrepancyBreakdown,
    discrepancy_breakdown,
)
from .linking import LinkingResult, evaluate_linking  # noqa: F401

from .error_analysis import (  # noqa: F401
    CATEGORIES,
    GQRY_CONSTRUCTION,
    HIGHLY_SIMILAR,
    INSUFFICIENT_STRUCTURE,
    ErrorBreakdown,
    analyze_errors,
    categorize,
)
from .metrics import (  # noqa: F401
    PRF,
    classify_logits,
    hits_at_k,
    mean_prf,
    mean_reciprocal_rank,
    precision_recall_f1,
    prf_from_logits,
)
from .reporting import format_table, markdown_table, results_table  # noqa: F401

_EVALUATOR_NAMES = {
    "ALL_SYSTEMS",
    "BEST_LAYERS",
    "BEST_VARIANT",
    "SystemRun",
    "default_epochs",
    "run_best_variant",
    "run_system",
}


def __getattr__(name: str):
    # The evaluator pulls in the full pipeline stack; loading it lazily
    # (PEP 562) breaks the core <-> eval import cycle (core.trainer needs
    # eval.metrics at import time).
    if name in _EVALUATOR_NAMES:
        from . import evaluator

        return getattr(evaluator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PRF",
    "precision_recall_f1",
    "prf_from_logits",
    "classify_logits",
    "mean_prf",
    "hits_at_k",
    "mean_reciprocal_rank",
    "run_system",
    "run_best_variant",
    "SystemRun",
    "ALL_SYSTEMS",
    "BEST_VARIANT",
    "BEST_LAYERS",
    "default_epochs",
    "ErrorBreakdown",
    "analyze_errors",
    "categorize",
    "CATEGORIES",
    "GQRY_CONSTRUCTION",
    "INSUFFICIENT_STRUCTURE",
    "HIGHLY_SIMILAR",
    "format_table",
    "results_table",
    "markdown_table",
    "bootstrap_prf",
    "BootstrapResult",
    "ConfidenceInterval",
    "paired_permutation_test",
    "mcnemar_test",
    "discrepancy_breakdown",
    "DiscrepancyBreakdown",
    "ClassStats",
    "OTHER",
    "evaluate_linking",
    "LinkingResult",
]
