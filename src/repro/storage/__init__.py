"""Pluggable KB / embedding storage for serving (`repro.storage`).

The seam (:class:`KBStore` / :class:`EmbeddingStore`, configured by
:class:`StorageConfig`) decouples where the KB feature table and the
reference-embedding matrix live from how serving uses them; the
:class:`SharedMemoryArena` additionally moves process-shard payload
shipping off the command pipes.  :func:`open_stores` is the one
factory the serving layer calls.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .arena import ArraySpec, SharedMemoryArena, attach_array, shared_memory_available
from .base import (
    KB_STORE_ENV,
    KB_STORES,
    EmbeddingStore,
    KBStore,
    StorageConfig,
    StorageError,
    default_kb_store,
    resolve_kb_store,
)
from .bundle import MmapStore, content_fingerprint, pack_bundle, weights_crc
from .memory import MemoryEmbeddingStore, MemoryKBStore

__all__ = [
    "KB_STORES",
    "KB_STORE_ENV",
    "ArraySpec",
    "EmbeddingStore",
    "KBStore",
    "MemoryEmbeddingStore",
    "MemoryKBStore",
    "MmapStore",
    "SharedMemoryArena",
    "StorageConfig",
    "StorageError",
    "attach_array",
    "content_fingerprint",
    "default_kb_store",
    "open_stores",
    "pack_bundle",
    "resolve_kb_store",
    "shared_memory_available",
    "weights_crc",
]


def open_stores(
    config: Optional[StorageConfig],
    kb,
    ref_cache_path: Optional[str] = None,
) -> Tuple[KBStore, EmbeddingStore]:
    """Open the (KB store, embedding store) pair a config names.

    The mmap backend returns one bundle-backed object implementing both
    seams (the matrices share a directory and a lifecycle; callers may
    close both handles — close is idempotent).  ``ref_cache_path`` is
    the memory backend's historical ``.npz`` persistence knob and is
    ignored by the mmap backend, whose bundle already persists the
    matrix.
    """
    config = config or StorageConfig()
    if config.kb_store == "mmap":
        store = MmapStore(kb, directory=config.bundle_path)
        return store, store
    return MemoryKBStore(kb), MemoryEmbeddingStore(ref_cache_path)
