"""The KB / embedding storage seam.

Serving historically assumed both the KB feature table and the
reference-embedding matrix live as plain in-RAM numpy arrays owned by
the process.  That couples KB size to one process's memory and makes
every process-shard worker pay a full pickled copy of its slice.  This
module splits *where those matrices live* out of *how they are used*:

* :class:`KBStore` — serves the KB's node feature matrix (``x_ref``);
* :class:`EmbeddingStore` — persists and serves the reference-embedding
  matrix (``h_ref``), keyed by a content fingerprint over (model
  weights, KB) so a stale matrix is never served;
* :class:`StorageConfig` — the declarative knob set, a strict
  round-trip section of :class:`~repro.serving.ServiceConfig` (and thus
  of the LinkerConfig JSON).

Two backends implement the seam (``KB_STORES``):

* ``"memory"`` (default) — today's behavior: live arrays, optional
  ``.npz`` persistence of the embedding matrix;
* ``"mmap"`` — both matrices persisted as ``.npy`` array files in a
  *bundle* directory (see :mod:`repro.storage.bundle`) and served as
  read-only memory maps, so a KB larger than one process's RAM is
  servable and N forked workers share one page cache.

The third storage piece, :class:`~repro.storage.arena.SharedMemoryArena`,
is orthogonal to the store choice: it publishes process-shard payloads
via ``multiprocessing.shared_memory`` so worker startup ships segment
descriptors instead of pickled matrices (``StorageConfig.share_payloads``).

Every backend serves bit-identical bytes — scores never depend on where
the matrices live.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "KB_STORES",
    "KB_STORE_ENV",
    "EmbeddingStore",
    "KBStore",
    "StorageConfig",
    "StorageError",
    "default_kb_store",
    "resolve_kb_store",
]

#: the KB/embedding store backends a config may name
KB_STORES = ("memory", "mmap")

#: environment default for the backend (the CI kb-store matrix sets this)
KB_STORE_ENV = "REPRO_KB_STORE"


class StorageError(RuntimeError):
    """A storage backend failed (corrupt bundle, missing arrays, a
    shared-memory segment that cannot be mapped)."""


def default_kb_store() -> str:
    """The store used when nothing names one explicitly: the
    ``REPRO_KB_STORE`` environment variable when set (the CI kb-store
    matrix forces the mmap backend this way), else ``"memory"``."""
    return os.environ.get(KB_STORE_ENV, "").strip() or "memory"


def resolve_kb_store(requested: Optional[str] = None) -> str:
    """Resolve a store name: explicit argument, else the
    ``REPRO_KB_STORE`` environment default, else ``"memory"``.
    An unknown name raises."""
    store = requested or default_kb_store()
    if store not in KB_STORES:
        raise ValueError(f"unknown kb store {store!r}; options: {KB_STORES}")
    return store


@dataclass(frozen=True)
class StorageConfig:
    """Where the KB feature table and embedding matrix live, and how
    process-shard payloads are shipped.

    Lives inside :class:`~repro.serving.ServiceConfig` as the
    ``storage`` section; the JSON round trip is strict and exact like
    every other config section.
    """

    #: "memory" (live arrays) or "mmap" (bundle-backed read-only maps);
    #: defaults to the REPRO_KB_STORE environment variable when set.
    kb_store: str = field(default_factory=default_kb_store)
    #: bundle directory for the mmap store (``repro kb pack`` output).
    #: None packs into a private temporary bundle, removed on close().
    bundle_path: Optional[str] = None
    #: publish process-shard payloads via multiprocessing.shared_memory
    #: (worker startup ships (shm name, dtype, shape, offset) descriptors
    #: instead of pickled matrices).  Ignored on the thread backend and
    #: on platforms without POSIX shared memory.
    share_payloads: bool = True

    def __post_init__(self):
        if self.kb_store not in KB_STORES:
            raise ValueError(
                f"unknown kb_store {self.kb_store!r}; options: {KB_STORES}"
            )
        if self.bundle_path is not None and not isinstance(self.bundle_path, str):
            raise ValueError("storage bundle_path must be a path string (or null)")
        if not isinstance(self.share_payloads, bool):
            raise ValueError("storage share_payloads must be a boolean")


class KBStore:
    """Serves the KB node feature matrix (``x_ref``).

    ``features`` must be bit-identical to ``kb.features`` — the store
    only changes where the bytes live (RAM vs a read-only memory map),
    never their values.
    """

    backend: str

    @property
    def features(self) -> np.ndarray:
        raise NotImplementedError

    def refresh(self) -> None:
        """Revalidate against the live KB (after a KB mutation)."""

    def close(self) -> None:
        """Release file handles / temporary directories.  Idempotent."""


class EmbeddingStore:
    """Persists and serves the reference-embedding matrix (``h_ref``).

    The matrix is keyed by a content fingerprint over (model weights,
    KB); ``load`` returns ``None`` rather than a stale matrix.
    """

    backend: str

    def load(self, fingerprint: int) -> Optional[np.ndarray]:
        raise NotImplementedError

    def store(self, fingerprint: int, h_ref: np.ndarray) -> np.ndarray:
        """Persist a freshly computed matrix; returns the store-backed
        array to serve (for the mmap store, a read-only memory map of
        the bytes just written — bit-identical to ``h_ref``)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release file handles / temporary directories.  Idempotent."""
