"""Zero-copy shard payload publishing over POSIX shared memory.

Process-shard startup used to pickle each worker's embedding and
feature slices into the command pipe — O(matrix bytes) per worker, paid
again on every warm-start ``distribute()``.  The arena inverts that:
the parent publishes each array once into a
``multiprocessing.shared_memory`` segment and ships only an
:class:`ArraySpec` descriptor (segment name, dtype, shape, offset);
workers map the segment read-only and score straight out of it.  A
warm-start becomes an **in-place versioned publish**: the parent copies
the fresh bytes into the existing segments and pokes the workers with a
bare refresh message — no per-worker recompute, nothing matrix-sized on
any pipe.

Lifecycle is strictly parent-owned: the arena creates every segment and
is the only place that unlinks them (:meth:`SharedMemoryArena.close`,
idempotent, crash-tolerant — a SIGKILL'd worker leaves no segment
behind because workers never own one).  Worker-side
:func:`attach_array` just maps; pool children share the parent's
``resource_tracker`` fd, so their attach-registration is an idempotent
set-add, never a second unlink-on-exit.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import StorageError

__all__ = [
    "ArraySpec",
    "SharedMemoryArena",
    "attach_array",
    "shared_memory_available",
]


@dataclass(frozen=True)
class ArraySpec:
    """Pickle-cheap descriptor of one published array: everything a
    worker needs to map it, nothing matrix-sized."""

    name: str  # shared-memory segment name
    dtype: str
    shape: Tuple[int, ...]
    offset: int = 0  # byte offset into the segment
    origin_pid: int = 0  # pid of the publishing (owning) process

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


_PROBE: Optional[bool] = None  # cached result of the one-time probe


def shared_memory_available() -> bool:
    """Can this platform actually create a shared-memory segment?
    (Import success is not enough — /dev/shm may be absent or full.)"""
    global _PROBE
    if _PROBE is None:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=1)
            segment.close()
            segment.unlink()
            _PROBE = True
        except Exception:
            _PROBE = False
    return _PROBE


class SharedMemoryArena:
    """A keyed set of parent-owned shared-memory segments.

    ``publish(key, array)`` copies the array into a fresh segment and
    returns its :class:`ArraySpec`; ``update(key, array)`` overwrites
    the bytes in place (same dtype/shape — the in-place contract that
    makes warm-start distribution free of pipe traffic) and bumps
    :attr:`version`.  Thread-safe; ``close()`` unlinks everything and
    is idempotent.
    """

    def __init__(self):
        from multiprocessing import shared_memory

        self._shared_memory = shared_memory
        self._segments: Dict[str, "shared_memory.SharedMemory"] = {}
        self._specs: Dict[str, ArraySpec] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._pid = os.getpid()  # only the creating process may unlink
        self.version = 0  # bumped by every update()

    # -- publishing -----------------------------------------------------
    def publish(self, key: str, array: np.ndarray) -> ArraySpec:
        array = np.ascontiguousarray(array)
        with self._lock:
            if self._closed:
                raise StorageError("arena is closed")
            if key in self._segments:
                raise StorageError(f"arena key {key!r} already published")
            # A zero-row slice still needs a mappable segment.
            segment = self._shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
            spec = ArraySpec(
                name=segment.name,
                dtype=str(array.dtype),
                shape=array.shape,
                origin_pid=os.getpid(),
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            self._segments[key] = segment
            self._specs[key] = spec
            return spec

    def update(self, key: str, array: np.ndarray) -> ArraySpec:
        array = np.ascontiguousarray(array)
        with self._lock:
            if self._closed:
                raise StorageError("arena is closed")
            spec = self._specs.get(key)
            if spec is None:
                raise StorageError(f"arena key {key!r} was never published")
            if spec.shape != array.shape or np.dtype(spec.dtype) != array.dtype:
                raise StorageError(
                    f"arena key {key!r}: in-place update must keep dtype/shape "
                    f"({spec.dtype}{spec.shape} -> {array.dtype}{array.shape})"
                )
            segment = self._segments[key]
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            self.version += 1
            return spec

    # -- introspection --------------------------------------------------
    def spec(self, key: str) -> ArraySpec:
        spec = self._specs.get(key)
        if spec is None:
            raise StorageError(f"arena key {key!r} was never published")
        return spec

    def view(self, key: str) -> np.ndarray:
        """Parent-side read-only view of a published array."""
        with self._lock:
            if self._closed:
                raise StorageError("arena is closed")
            spec = self.spec(key)
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=self._segments[key].buf
            )
            view.flags.writeable = False
            return view

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def segment_names(self) -> List[str]:
        return [spec.name for spec in self._specs.values()]

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment.  Idempotent, and safe after worker
        crashes — workers only ever map, never own."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, {}
            self._specs = {}
        if os.getpid() != self._pid:
            # A fork-inherited copy of the arena (e.g. the parent's
            # object graph duplicated into a worker) must never unlink
            # the segments the real owner still serves from.
            return
        for segment in segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass  # already gone (e.g. an external cleanup raced us)

    def __del__(self):  # last-resort cleanup; close() is the contract
        try:
            self.close()
        except Exception:
            pass


def attach_array(spec: ArraySpec):
    """Worker-side: map a published array read-only.

    Returns ``(array, segment)`` — the caller must keep ``segment``
    referenced for as long as the array is in use.

    On Python < 3.13 attaching re-registers the segment with the
    ``resource_tracker``; pool workers inherit the *parent's* tracker
    (its fd is passed to both forked and spawned children), so that
    registration is an idempotent set-add on the shared tracker, not a
    second unlink-on-exit — no unregister gymnastics needed, and the
    tracker keeps covering the segment if the owner crashes.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=spec.name)
    except FileNotFoundError as exc:
        raise StorageError(f"shared-memory segment {spec.name!r} is gone: {exc}") from None
    array = np.ndarray(
        spec.shape,
        dtype=np.dtype(spec.dtype),
        buffer=segment.buf,
        offset=spec.offset,
    )
    array.flags.writeable = False
    return array, segment
