"""The in-RAM storage backend — today's behavior behind the seam.

``MemoryKBStore`` serves the live ``kb.features`` array untouched;
``MemoryEmbeddingStore`` keeps the embedding matrix wherever the caller
holds it and optionally persists it to a ``.npz`` file (the historical
``ref_cache_path`` contract of :class:`~repro.serving.LinkingService`,
moved here verbatim: the file carries the content fingerprint it was
computed under, and a stale fingerprint reads as a miss, never as wrong
embeddings).
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from .base import EmbeddingStore, KBStore

__all__ = ["MemoryEmbeddingStore", "MemoryKBStore"]


class MemoryKBStore(KBStore):
    """Serves the KB's own live feature array."""

    backend = "memory"

    def __init__(self, kb):
        self._kb = kb

    @property
    def features(self) -> np.ndarray:
        return self._kb.features

    def close(self) -> None:
        pass


class MemoryEmbeddingStore(EmbeddingStore):
    """In-RAM embedding matrix with optional ``.npz`` persistence."""

    backend = "memory"

    def __init__(self, ref_cache_path: Optional[str] = None):
        self._path = ref_cache_path

    def load(self, fingerprint: int) -> Optional[np.ndarray]:
        if self._path is None or not os.path.exists(self._path):
            return None
        with np.load(self._path) as payload:
            if int(payload["fingerprint"]) != fingerprint:
                return None  # stale: model or KB changed since it was written
            return payload["h_ref"]

    def store(self, fingerprint: int, h_ref: np.ndarray) -> np.ndarray:
        if self._path is not None:
            directory = os.path.dirname(self._path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            np.savez(self._path, fingerprint=np.int64(fingerprint), h_ref=h_ref)
        return h_ref

    def close(self) -> None:
        pass
