"""The mmap bundle: KB matrices as array files, served as memory maps.

A *bundle* is a directory of plain ``.npy`` files plus a strict JSON
manifest::

    bundle/
      manifest.json   {"schema_version": 1, "features": {...}, "h_ref": {...},
                       "retrieval": {...}}
      features.npy    the KB node feature matrix (x_ref)
      h_ref.npy       the reference-embedding matrix (optional)
      retrieval_*.npy packed candidate-retrieval index arrays (optional;
                      see :mod:`repro.retrieval.pack`)

``repro kb pack`` builds one from a checkpoint; :class:`MmapStore`
serves it with ``np.load(..., mmap_mode="r")``, so the matrices live in
the page cache rather than anonymous process memory — N forked shard
workers share one copy, and a KB larger than any single worker's RAM
budget is servable.  ``np.save``/``np.load`` round-trip float arrays
bit-exactly, so scores are identical to the in-RAM backend.

Staleness is handled by content, not by trust: the manifest records a
CRC of the feature bytes and the (weights + KB) content fingerprint the
embedding matrix was computed under.  A mismatch against the live
pipeline reads as "re-pack" / "recompute", never as wrong data.  The
manifest is written last (and atomically) so a crashed pack never
leaves a bundle that parses.

This module also owns the fingerprint helpers (:func:`weights_crc`,
:func:`content_fingerprint`) that key every persisted embedding matrix
— the serving layer delegates here so the memory backend's ``.npz``
cache and the mmap bundle agree on what "stale" means.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import zlib
from typing import Optional

import numpy as np

from ..core.serialization import ensure_known_keys
from .base import EmbeddingStore, KBStore, StorageError

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "MmapStore",
    "content_fingerprint",
    "features_crc",
    "pack_bundle",
    "read_manifest",
    "weights_crc",
    "write_manifest",
]

BUNDLE_SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"
FEATURES_NAME = "features.npy"
H_REF_NAME = "h_ref.npy"


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def weights_crc(model) -> int:
    """CRC32 over the model's parameters in name order."""
    crc = 0
    for _, param in sorted(model.named_parameters()):
        crc = zlib.crc32(np.ascontiguousarray(param.data).tobytes(), crc)
    return crc


def features_crc(features: Optional[np.ndarray]) -> int:
    """CRC32 over the raw feature bytes (0 for an absent matrix)."""
    if features is None:
        return 0
    return zlib.crc32(np.ascontiguousarray(features).tobytes())


def content_fingerprint(pipeline) -> int:
    """Full content checksum (weights + KB nodes/edges/features) keying
    every *persisted* embedding matrix — unlike the serving layer's
    cheap per-request fingerprint it is stable across processes."""
    crc = weights_crc(pipeline.model)
    kb = pipeline.kb
    crc = zlib.crc32(np.asarray(kb.node_types, dtype=np.int64).tobytes(), crc)
    for column in kb.edges():
        crc = zlib.crc32(np.ascontiguousarray(column).tobytes(), crc)
    if kb.features is not None:
        crc = zlib.crc32(np.ascontiguousarray(kb.features).tobytes(), crc)
    return crc


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def _array_entry(array: np.ndarray) -> dict:
    return {"shape": list(array.shape), "dtype": str(array.dtype)}


def _write_manifest(directory: str, manifest: dict) -> None:
    # Written atomically and last: a bundle without a parsable manifest
    # is simply not a bundle, so a crashed pack can never serve.
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _read_manifest(directory: str) -> dict:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"unreadable bundle manifest at {path}: {exc}") from None
    where = f"bundle manifest {path}"
    ensure_known_keys(
        manifest, {"schema_version", "features", "h_ref", "retrieval"}, where
    )
    if manifest.get("schema_version") != BUNDLE_SCHEMA_VERSION:
        raise StorageError(
            f"{where}: schema_version {manifest.get('schema_version')!r} "
            f"!= {BUNDLE_SCHEMA_VERSION}"
        )
    if not isinstance(manifest.get("features"), dict):
        raise StorageError(f"{where}: missing features entry")
    ensure_known_keys(manifest["features"], {"shape", "dtype", "crc"}, f"{where} features")
    if manifest.get("h_ref") is not None:
        ensure_known_keys(
            manifest["h_ref"], {"shape", "dtype", "fingerprint"}, f"{where} h_ref"
        )
    if manifest.get("retrieval") is not None:
        retrieval = manifest["retrieval"]
        ensure_known_keys(
            retrieval,
            {"backend", "fingerprint", "config", "params", "arrays"},
            f"{where} retrieval",
        )
        if not isinstance(retrieval.get("arrays"), dict):
            raise StorageError(f"{where} retrieval: missing arrays entry")
        for name, entry in retrieval["arrays"].items():
            ensure_known_keys(
                entry, {"shape", "dtype", "crc"}, f"{where} retrieval array {name!r}"
            )
    return manifest


# Public aliases: :mod:`repro.retrieval.pack` reads and rewrites the
# manifest when it packs or refreshes an index entry, and tests assert
# against the parsed form.
read_manifest = _read_manifest
write_manifest = _write_manifest


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------
def pack_bundle(
    pipeline,
    directory: str,
    *,
    embeddings: bool = True,
    retrieval_index=None,
) -> dict:
    """Write an mmap bundle for the pipeline's KB into ``directory``.

    Persists the feature matrix, and — unless ``embeddings=False`` —
    the reference-embedding matrix (computing it if needed) keyed by the
    pipeline's content fingerprint, so a subsequent
    ``repro serve --kb-store mmap`` starts without a single forward
    pass.  ``retrieval_index`` (a built
    :class:`~repro.retrieval.base.RetrievalIndex`) additionally packs
    the candidate-retrieval index arrays with CRC-checked manifest
    entries; the helper import is deferred so the storage layer has no
    module-level dependency on the retrieval package.  Returns the
    manifest dict.
    """
    features = pipeline.kb.features
    if features is None:
        raise StorageError("cannot pack a KB with no feature matrix")
    os.makedirs(directory, exist_ok=True)
    np.save(os.path.join(directory, FEATURES_NAME), np.ascontiguousarray(features))
    manifest = {
        "schema_version": BUNDLE_SCHEMA_VERSION,
        "features": {**_array_entry(features), "crc": features_crc(features)},
        "h_ref": None,
        "retrieval": None,
    }
    if embeddings:
        h_ref = pipeline.ref_embeddings()
        np.save(os.path.join(directory, H_REF_NAME), np.ascontiguousarray(h_ref))
        manifest["h_ref"] = {
            **_array_entry(h_ref),
            "fingerprint": content_fingerprint(pipeline),
        }
    if retrieval_index is not None:
        from ..retrieval.pack import write_retrieval_arrays

        manifest["retrieval"] = write_retrieval_arrays(directory, retrieval_index)
    _write_manifest(directory, manifest)
    return manifest


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class MmapStore(KBStore, EmbeddingStore):
    """Bundle-backed store serving both matrices as read-only maps.

    One object implements both seams because both matrices share a
    bundle directory and a lifecycle.  Pointed at an existing bundle
    (``repro kb pack`` output) it serves the packed arrays — after
    validating the feature CRC against the live KB, re-packing on
    mismatch so a stale bundle can never change scores.  With no
    ``directory`` it packs the live KB into a private temporary bundle
    and removes it on :meth:`close`.
    """

    backend = "mmap"

    def __init__(self, kb, directory: Optional[str] = None):
        self._kb = kb
        if kb.features is None:
            raise StorageError("mmap store needs a KB with a feature matrix")
        self._owned = directory is None
        self._directory = directory or tempfile.mkdtemp(prefix="repro-kb-bundle-")
        self._closed = False
        self._features: Optional[np.ndarray] = None
        self._manifest: Optional[dict] = None
        if os.path.exists(os.path.join(self._directory, MANIFEST_NAME)):
            self._manifest = _read_manifest(self._directory)
        self._validate()

    # -- internals ------------------------------------------------------
    def _validate(self) -> None:
        """Make the bundle's feature file current: (re)pack when the
        manifest is absent or its CRC disagrees with the live KB."""
        live_crc = features_crc(self._kb.features)
        if self._manifest is None or self._manifest["features"]["crc"] != live_crc:
            np.save(
                os.path.join(self._directory, FEATURES_NAME),
                np.ascontiguousarray(self._kb.features),
            )
            h_ref = self._manifest["h_ref"] if self._manifest else None
            retrieval = self._manifest.get("retrieval") if self._manifest else None
            self._manifest = {
                "schema_version": BUNDLE_SCHEMA_VERSION,
                "features": {
                    **_array_entry(self._kb.features),
                    "crc": live_crc,
                },
                # Retained h_ref / retrieval entries are harmless: both
                # are fingerprint-checked at load time and only served
                # while they still match the live pipeline.
                "h_ref": h_ref,
                "retrieval": retrieval,
            }
            _write_manifest(self._directory, self._manifest)
            self._features = None
        if self._features is None:
            path = os.path.join(self._directory, FEATURES_NAME)
            try:
                self._features = np.load(path, mmap_mode="r")
            except (OSError, ValueError) as exc:
                raise StorageError(f"unreadable bundle array {path}: {exc}") from None

    # -- KBStore --------------------------------------------------------
    @property
    def features(self) -> np.ndarray:
        if self._closed:
            raise StorageError("mmap store is closed")
        return self._features

    def refresh(self) -> None:
        self._validate()

    # -- EmbeddingStore -------------------------------------------------
    def load(self, fingerprint: int) -> Optional[np.ndarray]:
        if self._closed:
            raise StorageError("mmap store is closed")
        entry = self._manifest.get("h_ref") if self._manifest else None
        path = os.path.join(self._directory, H_REF_NAME)
        if entry is None or entry["fingerprint"] != fingerprint or not os.path.exists(path):
            return None
        try:
            return np.load(path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise StorageError(f"unreadable bundle array {path}: {exc}") from None

    def store(self, fingerprint: int, h_ref: np.ndarray) -> np.ndarray:
        if self._closed:
            raise StorageError("mmap store is closed")
        path = os.path.join(self._directory, H_REF_NAME)
        np.save(path, np.ascontiguousarray(h_ref))
        self._manifest["h_ref"] = {
            **_array_entry(h_ref),
            "fingerprint": int(fingerprint),
        }
        _write_manifest(self._directory, self._manifest)
        return np.load(path, mmap_mode="r")

    # -- lifecycle ------------------------------------------------------
    @property
    def directory(self) -> str:
        return self._directory

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._features = None  # drop the map before removing its file
        if self._owned:
            shutil.rmtree(self._directory, ignore_errors=True)
