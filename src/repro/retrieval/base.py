"""The :class:`RetrievalIndex` seam and its strict configuration section.

The fuzzy fallback in :mod:`repro.core.candidates` scores a dense
``name_matrix @ query`` against *every* KB entity per index miss — an
O(N·d) scan that dominates candidate-generation latency once the KB
grows past ~10^5 entities.  This package replaces the scan with two
sublinear shortlist backends behind one seam:

* ``"ngram"`` — :class:`~repro.retrieval.ngram.NgramPostingsIndex`, a
  char-n-gram inverted index with TF-IDF-weighted accumulation over
  postings lists (work proportional to postings touched, not KB size);
* ``"lsh"`` — :class:`~repro.retrieval.lsh.LshIndex`, random-hyperplane
  signatures over the existing ``HashingNgramEmbedder`` name matrix with
  multi-probe banding.

Both return a *shortlist* of node ids; the ``"indexed"`` candidate
generator (:mod:`repro.retrieval.generator`) reruns the exact fuzzy
oracle restricted to that shortlist, so final candidates keep the
oracle's scores and filters — recall is purely a question of shortlist
coverage.  Indexes are packable artifacts (:mod:`repro.retrieval.pack`):
their state is a dict of flat numpy arrays plus a small JSON params
blob, which the PR-7 bundle serializes with CRC-checked manifest entries
and memory-maps read-only on load.
"""

from __future__ import annotations

import abc
import json
import os
import zlib
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.hetero import HeteroGraph
    from ..text.embedder import HashingNgramEmbedder

__all__ = [
    "RETRIEVAL_BACKENDS",
    "CANDIDATES_ENV",
    "default_candidate_generator",
    "RetrievalConfig",
    "RetrievalIndex",
    "build_retrieval_index",
    "index_from_arrays",
    "retrieval_fingerprint",
]

#: Sublinear shortlist backends selectable via ``RetrievalConfig.backend``.
RETRIEVAL_BACKENDS = ("ngram", "lsh")

#: Environment default for ``LinkerConfig.candidate_generator`` — the same
#: opt-in pattern as ``REPRO_KB_STORE`` / ``REPRO_SHARD_BACKEND``, so CI
#: can run the whole suite under a different generator without editing
#: every construction site.
CANDIDATES_ENV = "REPRO_CANDIDATES"


def default_candidate_generator() -> str:
    """The candidate generator configs use unless told otherwise.

    Reads :data:`CANDIDATES_ENV` (empty/unset means ``"exact"``, the
    paper's Section 3.1 behaviour).  Validation of the name happens in
    ``LinkerConfig.validate`` against the live registry, so a typo'd env
    value fails with the registry's options listed.
    """
    return os.environ.get(CANDIDATES_ENV, "").strip() or "exact"


@dataclass(frozen=True)
class RetrievalConfig:
    """Strict configuration for the sublinear retrieval backends.

    ``shortlist`` caps how many node ids a backend returns per query;
    ``ngram_size``/``num_buckets``/``max_df_ratio`` shape the postings
    index; ``num_bands``/``band_bits``/``probe_radius`` shape the LSH
    signatures and their multi-probe search (``probe_radius`` is the
    Hamming ball each band's key is expanded to at query time); ``seed``
    fixes both backends' hashing/hyperplanes.  ``bundle_path`` points at
    a PR-7 KB bundle directory: when set, the ``"indexed"`` generator
    loads the packed index from it (memory-mapped, fingerprint-checked)
    and repacks on staleness instead of rebuilding every start.
    """

    backend: str = "ngram"
    shortlist: int = 256
    ngram_size: int = 3
    num_buckets: int = 32768
    max_df_ratio: float = 0.05
    num_bands: int = 32
    band_bits: int = 12
    probe_radius: int = 1
    seed: int = 0x5EED
    bundle_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in RETRIEVAL_BACKENDS:
            raise ValueError(
                f"unknown retrieval backend {self.backend!r}; "
                f"options: {RETRIEVAL_BACKENDS}"
            )
        if self.shortlist < 1:
            raise ValueError("shortlist must be >= 1")
        if self.ngram_size < 1:
            raise ValueError("ngram_size must be >= 1")
        if self.num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if not 0.0 < self.max_df_ratio <= 1.0:
            raise ValueError("max_df_ratio must be in (0, 1]")
        if self.num_bands < 1:
            raise ValueError("num_bands must be >= 1")
        if not 1 <= self.band_bits <= 24:
            raise ValueError("band_bits must be in [1, 24]")
        if not 0 <= self.probe_radius <= 2:
            raise ValueError("probe_radius must be in [0, 2]")
        if self.bundle_path is not None and not isinstance(self.bundle_path, str):
            raise ValueError("bundle_path must be a string path or None")

    def to_dict(self) -> dict:
        return asdict(self)


class RetrievalIndex(abc.ABC):
    """One sublinear shortlist backend over a KB's entity surfaces.

    State is exposed as flat numpy arrays (:meth:`arrays`) plus a small
    JSON-serializable params blob (:meth:`params`) so indexes pack into
    bundles and rebuild from memory-mapped views (:func:`index_from_arrays`)
    without pickling.  ``fingerprint`` ties an index to the exact KB
    surfaces, embedder parameters and config it was built from — a
    mismatch at load time means stale, and stale indexes are rebuilt,
    never served.
    """

    #: backend name; must match a member of :data:`RETRIEVAL_BACKENDS`.
    backend: str = ""

    def __init__(self, config: RetrievalConfig, num_nodes: int, fingerprint: int = 0):
        self.config = config
        self.num_nodes = int(num_nodes)
        self.fingerprint = int(fingerprint)

    # -- querying -------------------------------------------------------
    @abc.abstractmethod
    def query(self, surface: str, query_vec: Optional[np.ndarray] = None) -> np.ndarray:
        """Shortlist of KB node ids (int64) for a surface form.

        ``query_vec`` is the surface's ``HashingNgramEmbedder`` vector
        when the caller already computed it (the LSH backend needs it;
        the n-gram backend ignores it)."""

    # -- packing --------------------------------------------------------
    @abc.abstractmethod
    def arrays(self) -> Dict[str, np.ndarray]:
        """The index's state as named flat arrays (packable)."""

    @abc.abstractmethod
    def params(self) -> dict:
        """JSON-serializable reconstruction parameters for the manifest."""

    # -- sharding -------------------------------------------------------
    @abc.abstractmethod
    def slice_for(self, node_ids: np.ndarray) -> "RetrievalIndex":
        """A shard-local sub-index restricted to ``node_ids``.

        Slices keep *global* node ids, so a union of per-shard query
        results is directly comparable to (and a superset of) the
        unsharded shortlist for the same query."""


def retrieval_fingerprint(
    kb: "HeteroGraph",
    config: RetrievalConfig,
    embedder: Optional["HashingNgramEmbedder"] = None,
) -> int:
    """CRC fingerprint over everything that shapes a built index.

    Covers the KB's canonical names and aliases (order-sensitive — node
    ids are positional), the embedder's hashing parameters, and the
    retrieval config minus ``bundle_path`` (where an index lives does not
    change what it contains).  A packed index whose recorded fingerprint
    disagrees with the serving KB is stale and must be rebuilt.
    """
    payload = config.to_dict()
    payload.pop("bundle_path", None)
    if embedder is not None:
        payload["embedder"] = {
            "dim": embedder.dim,
            "ngram_range": list(embedder.ngram_range),
            "use_words": embedder.use_words,
            "seed": embedder.seed,
        }
    crc = zlib.crc32(json.dumps(payload, sort_keys=True).encode("utf-8"))
    for node in range(kb.num_nodes):
        crc = zlib.crc32(kb.node_name(node).encode("utf-8"), crc)
        for alias in kb.node_aliases(node):
            crc = zlib.crc32(alias.encode("utf-8"), crc)
    return crc & 0xFFFFFFFF


def build_retrieval_index(
    kb: "HeteroGraph",
    config: RetrievalConfig,
    embedder: Optional["HashingNgramEmbedder"] = None,
    name_matrix: Optional[np.ndarray] = None,
) -> RetrievalIndex:
    """Build the configured backend's index over ``kb``'s surfaces.

    ``embedder`` is required for the LSH backend (its signatures live in
    the embedder's vector space) and only fingerprinted for the n-gram
    backend.  ``name_matrix`` lets callers that already embedded every
    canonical name (the fuzzy oracle does) share the work.
    """
    from .lsh import LshIndex
    from .ngram import NgramPostingsIndex

    fingerprint = retrieval_fingerprint(kb, config, embedder)
    if config.backend == "ngram":
        return NgramPostingsIndex.build(kb, config, fingerprint=fingerprint)
    if config.backend == "lsh":
        if embedder is None:
            raise ValueError("the lsh retrieval backend requires an embedder")
        return LshIndex.build(
            kb,
            config,
            embedder=embedder,
            name_matrix=name_matrix,
            fingerprint=fingerprint,
        )
    raise ValueError(
        f"unknown retrieval backend {config.backend!r}; options: {RETRIEVAL_BACKENDS}"
    )  # pragma: no cover - RetrievalConfig already validates


def index_from_arrays(
    backend: str,
    config: RetrievalConfig,
    params: dict,
    arrays: Dict[str, np.ndarray],
    embedder: Optional["HashingNgramEmbedder"] = None,
    fingerprint: int = 0,
) -> RetrievalIndex:
    """Reconstruct a packed index from its (possibly memory-mapped) arrays."""
    from .lsh import LshIndex
    from .ngram import NgramPostingsIndex

    if backend == "ngram":
        return NgramPostingsIndex.from_arrays(
            config, params, arrays, fingerprint=fingerprint
        )
    if backend == "lsh":
        return LshIndex.from_arrays(
            config, params, arrays, embedder=embedder, fingerprint=fingerprint
        )
    raise ValueError(
        f"unknown retrieval backend {backend!r}; options: {RETRIEVAL_BACKENDS}"
    )
