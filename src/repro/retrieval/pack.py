"""Packing retrieval indexes into (and loading them out of) KB bundles.

A packed index is a set of ``retrieval_<name>.npy`` files next to the
bundle's feature/embedding arrays plus a ``"retrieval"`` manifest entry
recording the backend, the build fingerprint, the config and params it
was built under, and per-array ``{shape, dtype, crc}`` — the same
written-last/atomic manifest discipline as the rest of the bundle, so a
crashed pack never leaves a loadable-but-wrong index.

Loading memory-maps every array read-only (``np.load(mmap_mode="r")``),
so N shard worker processes serving one bundle share a single page-cache
copy of the postings/signature arrays.  A fingerprint mismatch (KB
surfaces, embedder params or retrieval config changed since packing)
loads as ``None`` — callers rebuild and, when a manifest exists,
:func:`repack_index` refreshes the entry in place.
"""

from __future__ import annotations

import os
import zlib
from typing import Dict, Optional

import numpy as np

from ..storage.base import StorageError
from ..storage.bundle import MANIFEST_NAME, read_manifest, write_manifest
from .base import RetrievalConfig, RetrievalIndex, index_from_arrays

__all__ = [
    "RETRIEVAL_ARRAY_PREFIX",
    "load_packed_index",
    "repack_index",
    "write_retrieval_arrays",
]

RETRIEVAL_ARRAY_PREFIX = "retrieval_"


def _array_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{RETRIEVAL_ARRAY_PREFIX}{name}.npy")


def write_retrieval_arrays(directory: str, index: RetrievalIndex) -> dict:
    """Save the index's arrays into ``directory``; return its manifest entry.

    The caller owns writing the manifest afterwards (arrays first,
    manifest last — the bundle's crash-safety invariant).
    """
    arrays_entry: Dict[str, dict] = {}
    for name, array in index.arrays().items():
        contiguous = np.ascontiguousarray(array)
        np.save(_array_path(directory, name), contiguous)
        arrays_entry[name] = {
            "shape": list(contiguous.shape),
            "dtype": str(contiguous.dtype),
            "crc": zlib.crc32(contiguous.tobytes()),
        }
    config = index.config.to_dict()
    config.pop("bundle_path", None)
    return {
        "backend": index.backend,
        "fingerprint": int(index.fingerprint),
        "config": config,
        "params": index.params(),
        "arrays": arrays_entry,
    }


def load_packed_index(
    directory: str,
    config: RetrievalConfig,
    expected_fingerprint: int,
    embedder=None,
) -> Optional[RetrievalIndex]:
    """Load the packed index from a bundle, or ``None`` when it is unusable.

    ``None`` means "build it yourself": no bundle/manifest yet, no
    retrieval entry, a different backend, or a fingerprint mismatch
    (stale).  A bundle that *claims* to have a current index but whose
    arrays are unreadable or mis-shaped raises :class:`StorageError` —
    that is corruption, not staleness, and silently rebuilding would
    mask it.
    """
    if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        return None
    manifest = read_manifest(directory)
    entry = manifest.get("retrieval")
    if (
        entry is None
        or entry["backend"] != config.backend
        or int(entry["fingerprint"]) != int(expected_fingerprint)
    ):
        return None
    arrays: Dict[str, np.ndarray] = {}
    for name, meta in entry["arrays"].items():
        path = _array_path(directory, name)
        if not os.path.exists(path):
            return None  # arrays pruned out from under the manifest: rebuild
        try:
            array = np.load(path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise StorageError(f"unreadable bundle array {path}: {exc}") from None
        if list(array.shape) != meta["shape"] or str(array.dtype) != meta["dtype"]:
            raise StorageError(
                f"bundle array {path}: shape/dtype {array.shape}/{array.dtype} "
                f"!= manifest {tuple(meta['shape'])}/{meta['dtype']}"
            )
        arrays[name] = array
    return index_from_arrays(
        entry["backend"],
        config,
        entry["params"],
        arrays,
        embedder=embedder,
        fingerprint=int(entry["fingerprint"]),
    )


def repack_index(directory: str, index: RetrievalIndex) -> bool:
    """Refresh a bundle's retrieval entry with a freshly built index.

    Only acts on an existing bundle (one with a manifest) — a retrieval
    index is an annex to a packed KB, not a bundle of its own.  Returns
    whether a repack happened.
    """
    if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        return False
    manifest = read_manifest(directory)
    manifest["retrieval"] = write_retrieval_arrays(directory, index)
    write_manifest(directory, manifest)
    return True
