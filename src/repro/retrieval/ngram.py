"""Char-n-gram inverted index with TF-IDF-weighted accumulation.

The classic sublinear remedy for approximate string retrieval: every
entity surface (canonical name + aliases) is decomposed into character
n-grams, each n-gram hashed into one of ``num_buckets`` postings lists,
and a query accumulates IDF weight over the postings its own n-grams
touch.  Work per query is proportional to the postings actually gathered
— for selective n-grams that is a tiny fraction of the KB — instead of
the O(N·d) dense scan the fuzzy oracle performs.

Hash-bucketing (rather than an exact gram vocabulary) keeps the arrays
flat and packable: colliding grams merge their postings lists, which can
only *add* shortlist candidates, never lose them.  Grams seen in more
than ``max_df_ratio`` of all entities get zero IDF (stop-grams like
``"<a"`` carry no signal and their postings are the expensive ones).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..graph.hetero import HeteroGraph
from ..graph.index import normalize_surface
from ..text.embedder import _stable_hash
from .base import RetrievalConfig, RetrievalIndex

__all__ = ["NgramPostingsIndex"]


class NgramPostingsIndex(RetrievalIndex):
    """Postings-list retrieval over hashed character n-grams.

    State (all flat, packable, memory-mappable):

    * ``offsets``  — int64 ``[num_buckets + 1]`` CSR offsets into postings;
    * ``postings`` — int32 ``[total]`` global node ids, sorted per bucket;
    * ``idf``      — float32 ``[num_buckets]`` per-bucket IDF weight
      (zero for empty buckets and stop-grams);
    * ``norms``    — float32 ``[num_nodes]`` per-node length normaliser
      (sqrt of the node's distinct-bucket count).
    """

    backend = "ngram"

    def __init__(
        self,
        config: RetrievalConfig,
        num_nodes: int,
        offsets: np.ndarray,
        postings: np.ndarray,
        idf: np.ndarray,
        norms: np.ndarray,
        fingerprint: int = 0,
    ):
        super().__init__(config, num_nodes, fingerprint=fingerprint)
        self.offsets = offsets
        self.postings = postings
        self.idf = idf
        self.norms = norms
        self._gram_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _buckets(self, surface: str) -> List[int]:
        """Distinct hash buckets of the surface's n-grams."""
        padded = f"<{normalize_surface(surface)}>"
        n = self.config.ngram_size
        if len(padded) < n:
            grams: Iterable[str] = (padded,)
        else:
            grams = {padded[i : i + n] for i in range(len(padded) - n + 1)}
        buckets: Set[int] = set()
        cache = self._gram_cache
        seed = self.config.seed
        for gram in grams:
            bucket = cache.get(gram)
            if bucket is None:
                bucket = _stable_hash(f"{seed}:g:{gram}") % self.config.num_buckets
                cache[gram] = bucket
            buckets.add(bucket)
        return sorted(buckets)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        kb: HeteroGraph,
        config: RetrievalConfig,
        fingerprint: int = 0,
    ) -> "NgramPostingsIndex":
        num_nodes = kb.num_nodes
        if num_nodes >= np.iinfo(np.int32).max:
            raise ValueError("ngram postings store int32 node ids; KB too large")
        shell = cls(
            config,
            num_nodes,
            offsets=np.zeros(1, dtype=np.int64),
            postings=np.zeros(0, dtype=np.int32),
            idf=np.zeros(0, dtype=np.float32),
            norms=np.zeros(0, dtype=np.float32),
            fingerprint=fingerprint,
        )
        bucket_nodes: Dict[int, List[int]] = {}
        norms = np.zeros(num_nodes, dtype=np.float32)
        for node in range(num_nodes):
            buckets: Set[int] = set()
            buckets.update(shell._buckets(kb.node_name(node)))
            for alias in kb.node_aliases(node):
                buckets.update(shell._buckets(alias))
            norms[node] = np.sqrt(len(buckets)) if buckets else 1.0
            for bucket in buckets:
                bucket_nodes.setdefault(bucket, []).append(node)

        offsets = np.zeros(config.num_buckets + 1, dtype=np.int64)
        idf = np.zeros(config.num_buckets, dtype=np.float32)
        chunks: List[np.ndarray] = []
        total = 0
        max_df = config.max_df_ratio * num_nodes
        for bucket in range(config.num_buckets):
            nodes = bucket_nodes.get(bucket)
            offsets[bucket] = total
            if not nodes:
                continue
            df = len(nodes)
            if df <= max_df:
                idf[bucket] = np.log1p(num_nodes / df)
            chunk = np.asarray(nodes, dtype=np.int32)
            chunks.append(chunk)
            total += len(chunk)
        offsets[config.num_buckets] = total
        postings = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int32)
        )
        return cls(
            config,
            num_nodes,
            offsets=offsets,
            postings=postings,
            idf=idf,
            norms=norms,
            fingerprint=fingerprint,
        )

    # ------------------------------------------------------------------
    def query(self, surface: str, query_vec: Optional[np.ndarray] = None) -> np.ndarray:
        offsets, postings, idf = self.offsets, self.postings, self.idf
        buckets = np.asarray(self._buckets(surface), dtype=np.int64)
        weights = idf[buckets]
        lo = offsets[buckets]
        lengths = offsets[buckets + 1] - lo
        live = (weights > 0.0) & (lengths > 0)
        if not live.any():
            return np.zeros(0, dtype=np.int64)
        weights, lo, lengths = weights[live], lo[live], lengths[live]
        cat_ids = np.concatenate(
            [postings[s : s + n] for s, n in zip(lo.tolist(), lengths.tolist())]
        )
        cat_w = np.repeat(weights, lengths)
        if len(cat_ids) * 4 < self.num_nodes:
            # Few postings: sort-based aggregation, independent of KB size.
            uniq, inverse = np.unique(cat_ids, return_inverse=True)
            scores = np.bincount(inverse, weights=cat_w).astype(np.float32)
        else:
            # Heavy gather (common grams): a dense accumulator beats the
            # O(G log G) sort — one linear pass over G postings plus one
            # over the KB, both with tiny constants.
            dense = np.bincount(cat_ids, weights=cat_w, minlength=self.num_nodes)
            uniq = np.flatnonzero(dense)
            scores = dense[uniq].astype(np.float32)
        scores /= self.norms[uniq]
        k = min(self.config.shortlist, len(uniq))
        top = np.argpartition(-scores, k - 1)[:k]
        sel, sc = uniq[top], scores[top]
        order = np.lexsort((sel, -sc))
        return sel[order].astype(np.int64)

    # ------------------------------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        return {
            "offsets": self.offsets,
            "postings": self.postings,
            "idf": self.idf,
            "norms": self.norms,
        }

    def params(self) -> dict:
        return {"num_nodes": self.num_nodes}

    @classmethod
    def from_arrays(
        cls,
        config: RetrievalConfig,
        params: dict,
        arrays: Dict[str, np.ndarray],
        fingerprint: int = 0,
    ) -> "NgramPostingsIndex":
        return cls(
            config,
            int(params["num_nodes"]),
            offsets=arrays["offsets"],
            postings=arrays["postings"],
            idf=arrays["idf"],
            norms=arrays["norms"],
            fingerprint=fingerprint,
        )

    # ------------------------------------------------------------------
    def slice_for(self, node_ids: np.ndarray) -> "NgramPostingsIndex":
        """Shard-local slice: keep only postings entries owned by the shard.

        ``idf``/``norms`` stay global (they are per-bucket / per-node and
        the postings keep global ids), so per-shard scores are identical
        to what the full index would assign those nodes — the union of
        shard shortlists is therefore a superset of the global shortlist.
        """
        own = np.zeros(self.num_nodes, dtype=bool)
        own[np.asarray(node_ids, dtype=np.int64)] = True
        keep = own[self.postings]
        csum = np.concatenate(([0], np.cumsum(keep, dtype=np.int64)))
        return NgramPostingsIndex(
            self.config,
            self.num_nodes,
            offsets=csum[self.offsets],
            postings=self.postings[keep],
            idf=self.idf,
            norms=self.norms,
            fingerprint=self.fingerprint,
        )
