"""Random-hyperplane LSH over the ``HashingNgramEmbedder`` name matrix.

Sign-random-projection LSH: each entity name's embedding is projected
onto ``num_bands * band_bits`` random hyperplanes; the sign bits, packed
``band_bits`` at a time, give one small integer key per band.  Strings
with high cosine similarity agree on most sign bits, so they collide in
at least one band with high probability.  Queries probe each band's key
*and* its Hamming ball up to ``probe_radius`` (multi-probe) — the
standard trick that buys recall without more tables — and rank the union
of collisions by how many probes hit each candidate.

The hyperplanes are drawn from a seeded generator at build time but
**persisted** in the packed arrays: numpy does not guarantee bit-stream
stability of its generators across versions, and a re-derived plane set
that differs even slightly would silently invalidate every stored key.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..graph.hetero import HeteroGraph
from ..text.embedder import HashingNgramEmbedder
from .base import RetrievalConfig, RetrievalIndex

__all__ = ["LshIndex"]


class LshIndex(RetrievalIndex):
    """Banded sign-random-projection index with Hamming-ball multi-probe.

    State (flat, packable, memory-mappable):

    * ``planes`` — float32 ``[dim, num_bands * band_bits]`` hyperplanes;
    * ``keys``   — uint32 ``[num_bands, n]`` per-band signature keys,
      sorted within each band;
    * ``order``  — int32 ``[num_bands, n]`` global node ids aligned with
      ``keys`` (the argsort that sorted each band).
    """

    backend = "lsh"

    def __init__(
        self,
        config: RetrievalConfig,
        num_nodes: int,
        planes: np.ndarray,
        keys: np.ndarray,
        order: np.ndarray,
        embedder: Optional[HashingNgramEmbedder] = None,
        fingerprint: int = 0,
    ):
        super().__init__(config, num_nodes, fingerprint=fingerprint)
        self.planes = planes
        self.keys = keys
        self.order = order
        self.embedder = embedder
        self._probe_masks = self._hamming_masks(config.band_bits, config.probe_radius)

    @staticmethod
    def _hamming_masks(band_bits: int, radius: int) -> np.ndarray:
        """XOR masks covering the Hamming ball of ``radius`` around a key
        (mask 0 is the key itself).  Probe count is 1 + b + C(b, 2) at
        radius 2 — small enough to batch one ``searchsorted`` per band."""
        masks = [np.uint32(0)]
        if radius >= 1:
            masks.extend(np.uint32(1) << np.arange(band_bits, dtype=np.uint32))
        if radius >= 2:
            for i in range(band_bits):
                for j in range(i + 1, band_bits):
                    masks.append(np.uint32((1 << i) | (1 << j)))
        return np.asarray(masks, dtype=np.uint32)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        kb: HeteroGraph,
        config: RetrievalConfig,
        embedder: HashingNgramEmbedder,
        name_matrix: Optional[np.ndarray] = None,
        fingerprint: int = 0,
    ) -> "LshIndex":
        num_nodes = kb.num_nodes
        if num_nodes >= np.iinfo(np.int32).max:
            raise ValueError("lsh order arrays store int32 node ids; KB too large")
        if name_matrix is None:
            names = [kb.node_name(v) for v in range(num_nodes)]
            name_matrix = embedder.embed_batch(names)
        rng = np.random.default_rng(config.seed)
        planes = rng.standard_normal(
            (embedder.dim, config.num_bands * config.band_bits)
        ).astype(np.float32)
        keys, order = cls._band_tables(name_matrix, planes, config)
        return cls(
            config,
            num_nodes,
            planes=planes,
            keys=keys,
            order=order,
            embedder=embedder,
            fingerprint=fingerprint,
        )

    @staticmethod
    def _band_tables(matrix: np.ndarray, planes: np.ndarray, config: RetrievalConfig):
        bits = (matrix @ planes) > 0  # [n, num_bands * band_bits]
        weights = (1 << np.arange(config.band_bits, dtype=np.uint32)).astype(np.uint32)
        n = matrix.shape[0]
        keys = np.zeros((config.num_bands, n), dtype=np.uint32)
        order = np.zeros((config.num_bands, n), dtype=np.int32)
        for band in range(config.num_bands):
            lo = band * config.band_bits
            band_keys = bits[:, lo : lo + config.band_bits].astype(np.uint32) @ weights
            srt = np.argsort(band_keys, kind="stable")
            keys[band] = band_keys[srt]
            order[band] = srt.astype(np.int32)
        return keys, order

    # ------------------------------------------------------------------
    def query(self, surface: str, query_vec: Optional[np.ndarray] = None) -> np.ndarray:
        if query_vec is None:
            if self.embedder is None:
                raise ValueError(
                    "LshIndex.query needs query_vec when built without an embedder"
                )
            query_vec = self.embedder.embed(surface)
        qbits = (query_vec @ self.planes) > 0
        band_bits = self.config.band_bits
        weights = (1 << np.arange(band_bits, dtype=np.uint32)).astype(np.uint32)
        keys = np.uint32(
            qbits.reshape(self.config.num_bands, band_bits).astype(np.uint32) @ weights
        )
        hits: List[np.ndarray] = []
        for band in range(self.config.num_bands):
            probes = keys[band] ^ self._probe_masks
            band_keys = self.keys[band]
            lo = np.searchsorted(band_keys, probes, side="left")
            hi = np.searchsorted(band_keys, probes, side="right")
            band_order = self.order[band]
            hits.extend(
                band_order[s:e]
                for s, e in zip(lo.tolist(), hi.tolist())
                if e > s
            )
        if not hits:
            return np.zeros(0, dtype=np.int64)
        cat = np.concatenate(hits)
        if len(cat) * 4 < self.num_nodes:
            uniq, counts = np.unique(cat, return_counts=True)
        else:
            # Heavy collision load (wide Hamming ball): a dense vote
            # accumulator beats sorting the gathered ids.
            dense = np.bincount(cat, minlength=self.num_nodes)
            uniq = np.flatnonzero(dense)
            counts = dense[uniq]
        k = min(self.config.shortlist, len(uniq))
        top = np.argpartition(-counts, k - 1)[:k]
        sel, votes = uniq[top], counts[top]
        order = np.lexsort((sel, -votes))
        return sel[order].astype(np.int64)

    # ------------------------------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        return {"planes": self.planes, "keys": self.keys, "order": self.order}

    def params(self) -> dict:
        return {"num_nodes": self.num_nodes}

    @classmethod
    def from_arrays(
        cls,
        config: RetrievalConfig,
        params: dict,
        arrays: Dict[str, np.ndarray],
        embedder: Optional[HashingNgramEmbedder] = None,
        fingerprint: int = 0,
    ) -> "LshIndex":
        return cls(
            config,
            int(params["num_nodes"]),
            planes=arrays["planes"],
            keys=arrays["keys"],
            order=arrays["order"],
            embedder=embedder,
            fingerprint=fingerprint,
        )

    # ------------------------------------------------------------------
    def slice_for(self, node_ids: np.ndarray) -> "LshIndex":
        """Shard-local slice: drop rows not owned by the shard.

        Every node appears exactly once per band, so each band keeps the
        same ``len(node_ids)`` entries and the 2-D layout survives; keys
        stay sorted because filtering preserves order.
        """
        own = np.zeros(self.num_nodes, dtype=bool)
        own[np.asarray(node_ids, dtype=np.int64)] = True
        kept_keys: List[np.ndarray] = []
        kept_order: List[np.ndarray] = []
        for band in range(self.config.num_bands):
            mask = own[self.order[band]]
            kept_keys.append(self.keys[band][mask])
            kept_order.append(self.order[band][mask])
        return LshIndex(
            self.config,
            self.num_nodes,
            planes=self.planes,
            keys=np.stack(kept_keys) if kept_keys else self.keys[:, :0],
            order=np.stack(kept_order) if kept_order else self.order[:, :0],
            embedder=self.embedder,
            fingerprint=self.fingerprint,
        )
