"""Sublinear candidate retrieval with packable indexes.

Two shortlist backends behind the :class:`RetrievalIndex` seam — a
char-n-gram inverted index (``"ngram"``) and a random-hyperplane LSH
index (``"lsh"``) — powering the ``"indexed"`` candidate generator,
which reruns the exact fuzzy oracle restricted to the shortlist so
scores and filters match the linear scan.  Indexes pack into the KB
bundle (``repro kb pack --with-index``) as CRC-checked, fingerprinted,
memory-mappable arrays, and slice per shard for :class:`~repro.serving.
sharding.ShardedKB`.  See :mod:`repro.retrieval.base` for the seam and
:class:`RetrievalConfig`, and ``benchmarks/bench_candidates.py`` for
the speedup/recall guards.
"""

from .base import (  # noqa: F401
    CANDIDATES_ENV,
    RETRIEVAL_BACKENDS,
    RetrievalConfig,
    RetrievalIndex,
    build_retrieval_index,
    default_candidate_generator,
    index_from_arrays,
    retrieval_fingerprint,
)
from .generator import IndexedCandidateGenerator  # noqa: F401
from .lsh import LshIndex  # noqa: F401
from .ngram import NgramPostingsIndex  # noqa: F401
from .pack import (  # noqa: F401
    load_packed_index,
    repack_index,
    write_retrieval_arrays,
)

__all__ = [
    "CANDIDATES_ENV",
    "RETRIEVAL_BACKENDS",
    "RetrievalConfig",
    "RetrievalIndex",
    "IndexedCandidateGenerator",
    "NgramPostingsIndex",
    "LshIndex",
    "build_retrieval_index",
    "index_from_arrays",
    "retrieval_fingerprint",
    "default_candidate_generator",
    "load_packed_index",
    "repack_index",
    "write_retrieval_arrays",
]
