"""The ``"indexed"`` candidate generator: sublinear shortlist + oracle rerank.

Same contract as ``"fuzzy"`` — exact/alias/acronym lookups short-circuit
through the inverted index untouched — but an index miss no longer scans
the whole KB.  A :class:`~repro.retrieval.base.RetrievalIndex` produces
a shortlist in sublinear time, and the fuzzy oracle's exact scoring
(cosine floor + edit-ratio filter + identical tie-breaking) reruns
restricted to that shortlist.  Whenever the shortlist covers the
oracle's survivors the output is *identical* to ``"fuzzy"``; recall is
purely a question of shortlist coverage, which
``benchmarks/bench_candidates.py`` guards at >= 0.95.

With ``RetrievalConfig(bundle_path=...)`` the generator loads the packed
index from a KB bundle (memory-mapped, fingerprint-checked) and — when
the packed copy is stale or missing — rebuilds and repacks it in place,
so the next start maps instead of building.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..core.candidates import FuzzyFallbackCandidateGenerator
from ..graph.hetero import HeteroGraph
from ..graph.index import InvertedIndex
from ..text.embedder import HashingNgramEmbedder
from .base import (
    RetrievalConfig,
    RetrievalIndex,
    build_retrieval_index,
    retrieval_fingerprint,
)
from .pack import load_packed_index, repack_index

__all__ = ["IndexedCandidateGenerator"]


class IndexedCandidateGenerator(FuzzyFallbackCandidateGenerator):
    """``"indexed"``: sublinear retrieval shortlist, oracle-scored."""

    name = "indexed"
    #: Tells ``Linker.from_config`` to pass the config's ``retrieval``
    #: section to this factory (plain generators never see it).
    consumes_retrieval_config = True

    def __init__(
        self,
        kb: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        embedder: Optional[HashingNgramEmbedder] = None,
        top_k: int = 20,
        min_similarity: float = 0.25,
        max_edit_ratio: float = 0.6,
        name_matrix: Optional[np.ndarray] = None,
        retrieval: Union[RetrievalConfig, dict, None] = None,
    ):
        super().__init__(
            kb,
            index=index,
            embedder=embedder,
            top_k=top_k,
            min_similarity=min_similarity,
            max_edit_ratio=max_edit_ratio,
            name_matrix=name_matrix,
        )
        if retrieval is None:
            retrieval = RetrievalConfig()
        elif isinstance(retrieval, dict):
            retrieval = RetrievalConfig(**retrieval)
        elif not isinstance(retrieval, RetrievalConfig):
            raise ValueError(
                f"retrieval must be a RetrievalConfig or dict, got {type(retrieval).__name__}"
            )
        self.retrieval_config = retrieval
        self.repacked = False
        rescorer = self._fuzzy  # the oracle; owns the embedder + name matrix
        fingerprint = retrieval_fingerprint(kb, retrieval, rescorer.embedder)
        loaded: Optional[RetrievalIndex] = None
        if retrieval.bundle_path is not None:
            loaded = load_packed_index(
                retrieval.bundle_path,
                retrieval,
                expected_fingerprint=fingerprint,
                embedder=rescorer.embedder,
            )
        if loaded is not None:
            self.retrieval_index = loaded
        else:
            self.retrieval_index = build_retrieval_index(
                kb,
                retrieval,
                embedder=rescorer.embedder,
                name_matrix=rescorer._name_matrix,
            )
            if retrieval.bundle_path is not None:
                self.repacked = repack_index(
                    retrieval.bundle_path, self.retrieval_index
                )

    def _fallback(self, surface: str) -> List[int]:
        query_vec = self._fuzzy.embedder.embed(surface)
        shortlist = self.retrieval_index.query(surface, query_vec=query_vec)
        if shortlist.size == 0:
            return []
        return self._fuzzy.candidate_ids(
            surface, top_k=self.top_k, within=shortlist, query_vec=query_vec
        )
