"""Node-list / edge-list serialisation.

Section 2.2: the GNNs "consume a node list and an edge list ... In a node
list, each row contains a node id, its attribute features, and its type.
In an edge list, each row has a source node id (head), a destination node
id (tail), and the edge type."  This module writes and reads exactly that
layout (TSV) plus a JSON round trip that also preserves aliases and the
schema, so KBs can be shipped between processes.
"""

from __future__ import annotations

import json
import os
from typing import Tuple

import numpy as np

from .hetero import HeteroGraph
from .schema import GraphSchema, Relation


def write_node_list(graph: HeteroGraph, path: str) -> None:
    """TSV: node_id, type, name, features (comma-joined, may be empty)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("node_id\ttype\tname\tfeatures\n")
        for v in range(graph.num_nodes):
            feats = ""
            if graph.features is not None:
                feats = ",".join(f"{x:.6g}" for x in graph.features[v])
            fh.write(f"{v}\t{graph.node_type_name(v)}\t{graph.node_name(v)}\t{feats}\n")


def write_edge_list(graph: HeteroGraph, path: str) -> None:
    """TSV: head, tail, edge_type (relation display name with signature)."""
    src, dst, et = graph.edges()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("head\ttail\tedge_type\n")
        for s, d, r in zip(src.tolist(), dst.tolist(), et.tolist()):
            fh.write(f"{s}\t{d}\t{graph.schema.relation(r).name}\n")


def graph_to_dict(graph: HeteroGraph) -> dict:
    """JSON-serialisable dict capturing schema, nodes, aliases and edges."""
    src, dst, et = graph.edges()
    return {
        "schema": {
            "node_types": graph.schema.node_types,
            "relations": [
                [r.name, r.src_type, r.dst_type] for r in graph.schema.relations
            ],
        },
        "nodes": [
            {
                "id": v,
                "type": graph.node_type_name(v),
                "name": graph.node_name(v),
                "aliases": list(graph.node_aliases(v)),
            }
            for v in range(graph.num_nodes)
        ],
        "edges": [
            [int(s), int(d), int(r)]
            for s, d, r in zip(src.tolist(), dst.tolist(), et.tolist())
        ],
    }


def graph_from_dict(payload: dict) -> HeteroGraph:
    schema = GraphSchema(
        payload["schema"]["node_types"],
        [Relation(*entry) for entry in payload["schema"]["relations"]],
    )
    graph = HeteroGraph(schema)
    for node in payload["nodes"]:
        graph.add_node(node["type"], node["name"], aliases=node.get("aliases", ()))
    for s, d, r in payload["edges"]:
        graph.add_edge(s, d, r)
    return graph


def save_graph(graph: HeteroGraph, path: str) -> None:
    """Persist a graph (and its features, when present) to ``path``.

    ``path`` is a JSON file; features go to a sibling ``.npy`` file.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(graph_to_dict(graph), fh)
    if graph.features is not None:
        np.save(_features_path(path), graph.features)


def load_graph(path: str) -> HeteroGraph:
    with open(path, encoding="utf-8") as fh:
        graph = graph_from_dict(json.load(fh))
    features_path = _features_path(path)
    if os.path.exists(features_path):
        graph.set_features(np.load(features_path))
    return graph


def _features_path(path: str) -> str:
    stem, _ = os.path.splitext(path)
    return stem + ".features.npy"


def read_edge_list(path: str, schema: GraphSchema) -> Tuple[np.ndarray, np.ndarray, list]:
    """Parse a TSV edge list back into arrays (names resolved lazily —
    relation display names may be ambiguous without node types, so this
    returns the raw name column for the caller to resolve)."""
    heads, tails, names = [], [], []
    with open(path, encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("head"):
            raise ValueError(f"not an edge list: {path}")
        for line in fh:
            h, t, name = line.rstrip("\n").split("\t")
            heads.append(int(h))
            tails.append(int(t))
            names.append(name)
    return np.asarray(heads, dtype=np.int64), np.asarray(tails, dtype=np.int64), names
