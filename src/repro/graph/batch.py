"""Disjoint-union batching of heterogeneous graphs.

The Siamese trainer embeds ``G_ref`` and a mini-batch of query graphs in a
single forward pass by batching them into one disjoint union; the returned
offsets map each input graph's node ids into the union.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .hetero import HeteroGraph


def batch_graphs(graphs: Sequence[HeteroGraph]) -> Tuple[HeteroGraph, List[int]]:
    """Disjoint union of graphs sharing a schema.

    Returns ``(union, offsets)`` where node ``i`` of input graph ``g``
    becomes node ``offsets[g] + i`` of the union.  Features are stacked;
    if any input lacks features, the union has none.

    The union is assembled columnar — node/edge arrays are concatenated
    with numpy and spliced into the ``HeteroGraph`` storage directly —
    rather than via per-element ``add_node``/``add_edge`` calls, so the
    micro-batching serving path can re-batch query graphs per request
    without a Python-loop tax on every node and edge.
    """
    if not graphs:
        raise ValueError("batch_graphs needs at least one graph")
    schema = graphs[0].schema
    for g in graphs[1:]:
        if g.schema is not schema and (
            g.schema.node_types != schema.node_types
            or [str(r) for r in g.schema.relations] != [str(r) for r in schema.relations]
        ):
            raise ValueError("all graphs in a batch must share one schema")

    union = HeteroGraph(schema)
    offsets: List[int] = [union.splice(g) for g in graphs]

    if all(g.features is not None for g in graphs):
        union.set_features(np.vstack([g.features for g in graphs]))
    return union, offsets


def unbatch_node_ids(offsets: Sequence[int], graph_index: int, local_ids) -> np.ndarray:
    """Map local node ids of input graph ``graph_index`` into union ids."""
    return np.atleast_1d(np.asarray(local_ids, dtype=np.int64)) + offsets[graph_index]
