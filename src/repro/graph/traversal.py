"""Graph traversal utilities: k-hop neighbourhoods, ego subgraphs, and
connected components.  These back the error analysis ("insufficient
structure" detection), the explainer's local view, and the negative
sampler's candidate pools.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .hetero import HeteroGraph


def k_hop_nodes(graph: HeteroGraph, seeds, k: int) -> np.ndarray:
    """All nodes within ``k`` undirected hops of ``seeds`` (inclusive)."""
    if np.isscalar(seeds):
        seeds = [int(seeds)]
    visited: Set[int] = set(int(s) for s in seeds)
    frontier = deque((int(s), 0) for s in seeds)
    while frontier:
        node, depth = frontier.popleft()
        if depth == k:
            continue
        for nbr in graph.neighbors(node).tolist():
            if nbr not in visited:
                visited.add(nbr)
                frontier.append((nbr, depth + 1))
    return np.asarray(sorted(visited), dtype=np.int64)


def ego_subgraph(
    graph: HeteroGraph, seeds, k: int
) -> Tuple[HeteroGraph, Dict[int, int]]:
    """Induced subgraph on the k-hop neighbourhood of ``seeds``.

    Returns the subgraph and a mapping ``original id -> subgraph id``.
    Features are sliced along with the nodes.
    """
    keep = k_hop_nodes(graph, seeds, k)
    return induced_subgraph(graph, keep)


def induced_subgraph(
    graph: HeteroGraph, nodes: np.ndarray
) -> Tuple[HeteroGraph, Dict[int, int]]:
    """Induced subgraph on an explicit node set (edges with both endpoints
    inside are kept, with their relation ids)."""
    nodes = np.asarray(sorted(set(int(n) for n in np.atleast_1d(nodes))), dtype=np.int64)
    mapping: Dict[int, int] = {int(old): new for new, old in enumerate(nodes.tolist())}
    sub = HeteroGraph(graph.schema)
    for old in nodes.tolist():
        sub.add_node(
            graph.node_type_name(old),
            graph.node_name(old),
            aliases=graph.node_aliases(old),
        )
    src, dst, et = graph.edges()
    member = np.isin(src, nodes) & np.isin(dst, nodes)
    for s, d, r in zip(src[member].tolist(), dst[member].tolist(), et[member].tolist()):
        sub.add_edge(mapping[s], mapping[d], r)
    if graph.features is not None:
        sub.set_features(graph.features[nodes])
    return sub, mapping


def connected_components(graph: HeteroGraph) -> List[np.ndarray]:
    """Undirected connected components, largest first."""
    seen: Set[int] = set()
    components: List[np.ndarray] = []
    for start in range(graph.num_nodes):
        if start in seen:
            continue
        component: List[int] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            component.append(node)
            for nbr in graph.neighbors(node).tolist():
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        components.append(np.asarray(sorted(component), dtype=np.int64))
    components.sort(key=len, reverse=True)
    return components


def shortest_path_length(
    graph: HeteroGraph, source: int, target: int, cutoff: Optional[int] = None
) -> Optional[int]:
    """Undirected BFS distance, or ``None`` if unreachable within cutoff."""
    if source == target:
        return 0
    seen = {source}
    queue = deque([(source, 0)])
    while queue:
        node, depth = queue.popleft()
        if cutoff is not None and depth >= cutoff:
            continue
        for nbr in graph.neighbors(node).tolist():
            if nbr == target:
                return depth + 1
            if nbr not in seen:
                seen.add(nbr)
                queue.append((nbr, depth + 1))
    return None


def random_walk(
    graph: HeteroGraph,
    start: int,
    length: int,
    rng: np.random.Generator,
) -> List[int]:
    """Uniform random walk on the undirected view (used by tests and the
    dataset synthesiser to grow realistic snippet contexts)."""
    walk = [start]
    node = start
    for _ in range(length):
        nbrs = graph.neighbors(node)
        if len(nbrs) == 0:
            break
        node = int(rng.choice(nbrs))
        walk.append(node)
    return walk
