"""Heterogeneous property graphs — the substrate replacing DGL
(see DESIGN.md §2): typed graphs, metapaths, traversal, batching, the
inverted surface-form index, and the similarity measures of Section 3.2.
"""

from .batch import batch_graphs, unbatch_node_ids  # noqa: F401
from .hetero import BidirectedView, HeteroGraph, neighbor_label_multiset  # noqa: F401
from .index import InvertedIndex, derive_acronym, normalize_surface  # noqa: F401
from .io import (  # noqa: F401
    graph_from_dict,
    graph_to_dict,
    load_graph,
    read_edge_list,
    save_graph,
    write_edge_list,
    write_node_list,
)
from .kernels import (  # noqa: F401
    STRUCTURAL_METRICS,
    HungarianGedSimilarity,
    McsSimilarity,
    WeisfeilerLehmanKernel,
    hungarian_ged_similarity,
    make_structural_metric,
    mcs_similarity,
)
from .metapath import (  # noqa: F401
    Metapath,
    MetapathInstances,
    default_metapaths,
    enumerate_instances,
)
from .schema import (  # noqa: F401
    GraphSchema,
    Relation,
    extended_medical_schema,
    medical_schema,
)
from .similarity import (  # noqa: F401
    StructuralSimilarity,
    cosine_similarity_matrix,
    cosine_similarity_vector,
    jaccard_neighbors,
    normalized_ged_similarity,
    star_edit_distance,
)
from .traversal import (  # noqa: F401
    connected_components,
    ego_subgraph,
    induced_subgraph,
    k_hop_nodes,
    random_walk,
    shortest_path_length,
)

__all__ = [
    "GraphSchema",
    "Relation",
    "medical_schema",
    "extended_medical_schema",
    "HeteroGraph",
    "BidirectedView",
    "neighbor_label_multiset",
    "Metapath",
    "MetapathInstances",
    "enumerate_instances",
    "default_metapaths",
    "k_hop_nodes",
    "ego_subgraph",
    "induced_subgraph",
    "connected_components",
    "shortest_path_length",
    "random_walk",
    "batch_graphs",
    "unbatch_node_ids",
    "InvertedIndex",
    "normalize_surface",
    "derive_acronym",
    "star_edit_distance",
    "normalized_ged_similarity",
    "StructuralSimilarity",
    "cosine_similarity_matrix",
    "cosine_similarity_vector",
    "jaccard_neighbors",
    "mcs_similarity",
    "McsSimilarity",
    "WeisfeilerLehmanKernel",
    "hungarian_ged_similarity",
    "HungarianGedSimilarity",
    "make_structural_metric",
    "STRUCTURAL_METRICS",
    "save_graph",
    "load_graph",
    "graph_to_dict",
    "graph_from_dict",
    "write_node_list",
    "write_edge_list",
    "read_edge_list",
]
