"""Graph schemas for heterogeneous property graphs (Definition 2.1).

A schema declares the node types ``T`` and the edge types ``R`` together
with their signatures (source node type, destination node type).  The
medical toy schema of Figure 1 — Drug, AdverseEffect, Symptom, Finding
with TREAT / CAUSE / INDICATE / HAS — ships as :func:`medical_schema` and
is the default vocabulary of the synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Relation:
    """A typed edge declaration: ``src_type --name--> dst_type``."""

    name: str
    src_type: str
    dst_type: str

    def __str__(self) -> str:
        return f"{self.src_type}-[{self.name}]->{self.dst_type}"


class GraphSchema:
    """Node-type and edge-type vocabulary of a heterogeneous graph.

    Edge types are identified by their *relation id* (index into
    ``relations``); two relations may share a display name with different
    signatures and still get distinct ids, which is what R-GCN's
    relation-specific weights operate over.
    """

    def __init__(self, node_types: Sequence[str], relations: Sequence[Relation]):
        if len(set(node_types)) != len(node_types):
            raise ValueError("duplicate node type names")
        self.node_types: List[str] = list(node_types)
        self.relations: List[Relation] = list(relations)
        self._node_type_ids: Dict[str, int] = {t: i for i, t in enumerate(self.node_types)}
        self._relation_ids: Dict[Tuple[str, str, str], int] = {}
        for i, rel in enumerate(self.relations):
            if rel.src_type not in self._node_type_ids:
                raise ValueError(f"unknown src type {rel.src_type!r} in {rel}")
            if rel.dst_type not in self._node_type_ids:
                raise ValueError(f"unknown dst type {rel.dst_type!r} in {rel}")
            key = (rel.name, rel.src_type, rel.dst_type)
            if key in self._relation_ids:
                raise ValueError(f"duplicate relation {rel}")
            self._relation_ids[key] = i

    # -- sizes ----------------------------------------------------------
    @property
    def num_node_types(self) -> int:
        return len(self.node_types)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    # -- lookups --------------------------------------------------------
    def node_type_id(self, name: str) -> int:
        try:
            return self._node_type_ids[name]
        except KeyError:
            raise KeyError(f"unknown node type {name!r}; known: {self.node_types}") from None

    def node_type_name(self, type_id: int) -> str:
        return self.node_types[type_id]

    def relation_id(self, name: str, src_type: str, dst_type: str) -> int:
        key = (name, src_type, dst_type)
        try:
            return self._relation_ids[key]
        except KeyError:
            raise KeyError(f"unknown relation {src_type}-[{name}]->{dst_type}") from None

    def relation(self, relation_id: int) -> Relation:
        return self.relations[relation_id]

    def relation_ids_by_name(self, name: str) -> List[int]:
        return [i for i, r in enumerate(self.relations) if r.name == name]

    # -- Algorithm 1 support --------------------------------------------
    def relations_touching(self, node_type: str) -> List[int]:
        """Relation ids whose signature involves ``node_type`` on either
        side — ``G_ref.getEdgeTypes(et)`` in Algorithm 1 (line 13)."""
        return [
            i
            for i, r in enumerate(self.relations)
            if r.src_type == node_type or r.dst_type == node_type
        ]

    def partner_types(self, node_type: str) -> Dict[str, int]:
        """Map each node type reachable from ``node_type`` through one
        relation to that relation's id — Algorithm 1 lines 14/19.

        When several relations connect the same pair of types the first
        declared relation wins (deterministic).
        """
        partners: Dict[str, int] = {}
        for i, r in enumerate(self.relations):
            if r.src_type == node_type and r.dst_type not in partners:
                partners[r.dst_type] = i
            elif r.dst_type == node_type and r.src_type not in partners:
                partners[r.src_type] = i
        return partners

    def __repr__(self) -> str:
        return (
            f"GraphSchema(node_types={self.node_types}, "
            f"relations={[str(r) for r in self.relations]})"
        )


def medical_schema() -> GraphSchema:
    """The Figure 1 toy schema used throughout the paper's examples."""
    node_types = ["Drug", "AdverseEffect", "Symptom", "Finding"]
    relations = [
        Relation("TREAT", "Drug", "Symptom"),
        Relation("CAUSE", "Drug", "AdverseEffect"),
        Relation("INDICATE", "Symptom", "Finding"),
        Relation("HAS", "AdverseEffect", "Finding"),
    ]
    return GraphSchema(node_types, relations)


def extended_medical_schema() -> GraphSchema:
    """A richer schema for the larger synthetic KBs (MDX / MIMIC-III
    analogues): diseases, procedures and labs added to the toy types."""
    node_types = [
        "Drug",
        "Disease",
        "AdverseEffect",
        "Symptom",
        "Finding",
        "Procedure",
        "LabTest",
    ]
    relations = [
        Relation("TREAT", "Drug", "Disease"),
        Relation("TREAT", "Drug", "Symptom"),
        Relation("CAUSE", "Drug", "AdverseEffect"),
        Relation("CAUSE", "Disease", "Symptom"),
        Relation("INDICATE", "Symptom", "Finding"),
        Relation("INDICATE", "LabTest", "Disease"),
        Relation("HAS", "AdverseEffect", "Finding"),
        Relation("HAS", "Disease", "Finding"),
        Relation("DIAGNOSED_BY", "Disease", "Procedure"),
        Relation("MEASURES", "LabTest", "Finding"),
        Relation("COMPLICATES", "Disease", "Disease"),
        Relation("CONTRAINDICATES", "Drug", "Disease"),
    ]
    return GraphSchema(node_types, relations)
