"""The heterogeneous property graph (Definition 2.1) that models both the
medical KB ``G_ref`` and the per-snippet query graphs ``G_qry``.

Nodes carry a type, a display name (the entity description), optional
surface-form aliases (synonyms / acronyms / abbreviations) and a feature
vector; edges carry a relation id from the :class:`~repro.graph.schema.GraphSchema`.
Storage is columnar (plain numpy arrays), with CSR adjacency built lazily
and invalidated on mutation, so both the tiny query graphs and the
35k-node MDX analogue use the same code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .schema import GraphSchema


class HeteroGraph:
    """A mutable heterogeneous graph with typed nodes and edges."""

    def __init__(self, schema: GraphSchema):
        self.schema = schema
        self._node_types: List[int] = []
        self._node_names: List[str] = []
        self._node_aliases: List[Tuple[str, ...]] = []
        self._src: List[int] = []
        self._dst: List[int] = []
        self._etypes: List[int] = []
        self.features: Optional[np.ndarray] = None
        #: bumped on every mutation through the public API; cheap dirty
        #: check for downstream caches (e.g. the serving layer's
        #: reference-embedding cache).  In-place edits of ``features``
        #: rows bypass it — use :meth:`set_features`.
        self.version = 0
        # caches
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._out_csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._in_csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._edge_set: Optional[Dict[Tuple[int, int], int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        type_name: str,
        name: str,
        aliases: Sequence[str] = (),
    ) -> int:
        """Add a node, returning its integer id."""
        self._invalidate()
        self._node_types.append(self.schema.node_type_id(type_name))
        self._node_names.append(name)
        self._node_aliases.append(tuple(aliases))
        return len(self._node_types) - 1

    def add_edge(self, src: int, dst: int, relation_id: int) -> int:
        """Add a directed typed edge, returning its edge id."""
        n = self.num_nodes
        if not (0 <= src < n and 0 <= dst < n):
            raise IndexError(f"edge ({src}, {dst}) references missing node (n={n})")
        if not (0 <= relation_id < self.schema.num_relations):
            raise IndexError(f"unknown relation id {relation_id}")
        self._invalidate()
        self._src.append(src)
        self._dst.append(dst)
        self._etypes.append(relation_id)
        return len(self._src) - 1

    def splice(self, other: "HeteroGraph") -> int:
        """Append ``other``'s nodes and edges columnar, returning the node
        offset its ids were shifted by.

        The fast path behind :func:`repro.graph.batch.batch_graphs`:
        columns are extended wholesale instead of per-element
        ``add_node``/``add_edge`` calls.  The caller is responsible for
        schema compatibility (same node-type/relation id spaces) and for
        features (not spliced — stack them separately).
        """
        self._invalidate()
        offset = self.num_nodes
        self._node_types.extend(other._node_types)
        self._node_names.extend(other._node_names)
        self._node_aliases.extend(other._node_aliases)
        if other.num_edges:
            src, dst, et = other.edges()
            self._src.extend((src + offset).tolist())
            self._dst.extend((dst + offset).tolist())
            self._etypes.extend(et.tolist())
        return offset

    def add_edge_by_name(self, src: int, dst: int, relation_name: str) -> int:
        """Add an edge resolving the relation id from the endpoint types."""
        rel = self.schema.relation_id(
            relation_name,
            self.node_type_name(src),
            self.node_type_name(dst),
        )
        return self.add_edge(src, dst, rel)

    def set_features(self, features: np.ndarray) -> None:
        if features.shape[0] != self.num_nodes:
            raise ValueError(
                f"features rows ({features.shape[0]}) != num nodes ({self.num_nodes})"
            )
        self.features = np.ascontiguousarray(features, dtype=np.float32)
        self.version += 1

    def _invalidate(self) -> None:
        self.version += 1
        self._arrays = None
        self._out_csr = None
        self._in_csr = None
        self._edge_set = None

    # ------------------------------------------------------------------
    # Sizes / basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._node_types)

    @property
    def num_edges(self) -> int:
        return len(self._src)

    def node_type(self, node: int) -> int:
        return self._node_types[node]

    def node_type_name(self, node: int) -> str:
        return self.schema.node_type_name(self._node_types[node])

    def node_name(self, node: int) -> str:
        return self._node_names[node]

    def node_aliases(self, node: int) -> Tuple[str, ...]:
        return self._node_aliases[node]

    @property
    def node_types(self) -> np.ndarray:
        return np.asarray(self._node_types, dtype=np.int64)

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    def nodes_of_type(self, type_name: str) -> np.ndarray:
        tid = self.schema.node_type_id(type_name)
        return np.nonzero(self.node_types == tid)[0]

    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar edge view ``(src, dst, relation_id)``."""
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._src, dtype=np.int64),
                np.asarray(self._dst, dtype=np.int64),
                np.asarray(self._etypes, dtype=np.int64),
            )
        return self._arrays

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def _build_csr(self, by_src: bool) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        src, dst, et = self.edges()
        key = src if by_src else dst
        other = dst if by_src else src
        order = np.argsort(key, kind="stable")
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        counts = np.bincount(key, minlength=self.num_nodes)
        indptr[1:] = np.cumsum(counts)
        return indptr, other[order], et[order]

    def _out(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._out_csr is None:
            self._out_csr = self._build_csr(by_src=True)
        return self._out_csr

    def _in(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._in_csr is None:
            self._in_csr = self._build_csr(by_src=False)
        return self._in_csr

    def out_neighbors(self, node: int) -> np.ndarray:
        indptr, nbrs, _ = self._out()
        return nbrs[indptr[node] : indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        indptr, nbrs, _ = self._in()
        return nbrs[indptr[node] : indptr[node + 1]]

    def neighbors(self, node: int) -> np.ndarray:
        """Distinct 1-hop neighbours in either direction."""
        return np.unique(np.concatenate([self.out_neighbors(node), self.in_neighbors(node)]))

    def out_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """(neighbours, relation ids) of outgoing edges."""
        indptr, nbrs, et = self._out()
        lo, hi = indptr[node], indptr[node + 1]
        return nbrs[lo:hi], et[lo:hi]

    def in_edges(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        indptr, nbrs, et = self._in()
        lo, hi = indptr[node], indptr[node + 1]
        return nbrs[lo:hi], et[lo:hi]

    def degree(self, node: int) -> int:
        return len(self.out_neighbors(node)) + len(self.in_neighbors(node))

    def edge_between(self, u: int, v: int) -> Optional[int]:
        """Relation id of a ``u -> v`` edge, or ``None``.

        Used by Algorithm 1 (line 9) to copy KB relations into the query
        graph.  With parallel edges the first inserted wins.
        """
        if self._edge_set is None:
            src, dst, et = self.edges()
            pairs: Dict[Tuple[int, int], int] = {}
            for s, d, r in zip(src.tolist(), dst.tolist(), et.tolist()):
                pairs.setdefault((s, d), r)
            self._edge_set = pairs
        return self._edge_set.get((u, v))

    def has_edge(self, u: int, v: int) -> bool:
        return self.edge_between(u, v) is not None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def to_bidirected(self) -> "BidirectedView":
        """Edge view with inverse edges added (relation id + num_relations
        for the reverse direction).  GNN encoders consume this so messages
        flow both ways while R-GCN still distinguishes direction."""
        src, dst, et = self.edges()
        n_rel = self.schema.num_relations
        full_src = np.concatenate([src, dst])
        full_dst = np.concatenate([dst, src])
        full_et = np.concatenate([et, et + n_rel])
        return BidirectedView(full_src, full_dst, full_et, 2 * n_rel)

    def with_self_loops(self) -> "BidirectedView":
        """Bidirected view plus one self-loop relation (id = 2R)."""
        view = self.to_bidirected()
        loops = np.arange(self.num_nodes, dtype=np.int64)
        src = np.concatenate([view.src, loops])
        dst = np.concatenate([view.dst, loops])
        et = np.concatenate([view.etypes, np.full(self.num_nodes, view.num_relations)])
        return BidirectedView(src, dst, et, view.num_relations + 1)

    def copy(self) -> "HeteroGraph":
        g = HeteroGraph(self.schema)
        g._node_types = list(self._node_types)
        g._node_names = list(self._node_names)
        g._node_aliases = list(self._node_aliases)
        g._src = list(self._src)
        g._dst = list(self._dst)
        g._etypes = list(self._etypes)
        g.features = None if self.features is None else self.features.copy()
        return g

    def subgraph(self, node_ids: Sequence[int]) -> "HeteroGraph":
        """Induced subgraph over ``node_ids`` (columnar fast path).

        Node ``node_ids[i]`` becomes node ``i`` of the view; edges whose
        endpoints are both selected are kept with remapped endpoints, and
        feature rows are sliced when present.  The inverse of
        :meth:`splice`: ``splice`` concatenates whole graphs columnar,
        ``subgraph`` extracts one — the serving layer's KB shards are
        built from these views and can be reassembled with
        :func:`repro.graph.batch.batch_graphs`.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_nodes):
            raise IndexError("subgraph node id out of range")
        remap = np.full(self.num_nodes, -1, dtype=np.int64)
        remap[ids] = np.arange(len(ids), dtype=np.int64)
        view = HeteroGraph(self.schema)
        selected = ids.tolist()
        view._node_types = [self._node_types[i] for i in selected]
        view._node_names = [self._node_names[i] for i in selected]
        view._node_aliases = [self._node_aliases[i] for i in selected]
        if self.num_edges:
            src, dst, et = self.edges()
            keep = (remap[src] >= 0) & (remap[dst] >= 0)
            view._src = remap[src[keep]].tolist()
            view._dst = remap[dst[keep]].tolist()
            view._etypes = et[keep].tolist()
        if self.features is not None:
            view.features = np.ascontiguousarray(self.features[ids])
        return view

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def type_histogram(self) -> Dict[str, int]:
        counts = np.bincount(self.node_types, minlength=self.schema.num_node_types)
        return {t: int(c) for t, c in zip(self.schema.node_types, counts)}

    def relation_histogram(self) -> Dict[str, int]:
        _, _, et = self.edges()
        counts = np.bincount(et, minlength=self.schema.num_relations)
        return {str(self.schema.relation(i)): int(c) for i, c in enumerate(counts)}

    def __repr__(self) -> str:
        return (
            f"HeteroGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"types={self.schema.num_node_types}, relations={self.schema.num_relations})"
        )


class BidirectedView:
    """An immutable columnar edge view used by the GNN encoders.

    ``num_relations`` counts the expanded relation vocabulary (forward +
    inverse [+ self-loop]), which is what R-GCN's weight bank is sized by.
    """

    __slots__ = ("src", "dst", "etypes", "num_relations")

    def __init__(self, src: np.ndarray, dst: np.ndarray, etypes: np.ndarray, num_relations: int):
        self.src = src
        self.dst = dst
        self.etypes = etypes
        self.num_relations = num_relations

    @property
    def num_edges(self) -> int:
        return len(self.src)


def neighbor_label_multiset(graph: HeteroGraph, node: int) -> Dict[Tuple[int, int], int]:
    """1-hop neighbourhood signature of ``node``: counts of
    ``(relation id, neighbour id)`` incidences over both edge directions
    (inverse relations offset by ``num_relations``).

    This is the star that the normalised GED of the semantic-driven
    negative sampler compares (Section 3.2): two entities are structurally
    similar exactly when they share *common neighbours* under the same
    relations — the paper's "gastroenteritis shares several common
    neighbors with acute renal failure".
    """
    signature: Dict[Tuple[int, int], int] = {}
    nbrs, rels = graph.out_edges(node)
    for nbr, rel in zip(nbrs.tolist(), rels.tolist()):
        key = (rel, nbr)
        signature[key] = signature.get(key, 0) + 1
    nbrs, rels = graph.in_edges(node)
    n_rel = graph.schema.num_relations
    for nbr, rel in zip(nbrs.tolist(), rels.tolist()):
        key = (rel + n_rel, nbr)
        signature[key] = signature.get(key, 0) + 1
    return signature
