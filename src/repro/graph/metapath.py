"""Metapaths and metapath-instance enumeration (Definitions 2.3 / 2.4).

A metapath ``A1 -R1-> A2 -R2-> ... -> Am+1`` is a sequence of node types;
its *instances* in a graph are concrete node paths whose types match.
MAGNN consumes instances as integer matrices ``[n_instances, path_len]``
grouped by target node, enumerated over the *undirected* view of the graph
(the paper's example "Metformin-Diarrhea-Fever" traverses a CAUSE edge
forward and a HAS edge forward from the middle node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .hetero import HeteroGraph
from .schema import GraphSchema


@dataclass(frozen=True)
class Metapath:
    """A node-type sequence, e.g. ``("Drug", "AdverseEffect", "Finding")``.

    The symmetric abbreviation (``DAF``) is derived from type initials.
    """

    node_types: Tuple[str, ...]

    def __post_init__(self):
        if len(self.node_types) < 2:
            raise ValueError("a metapath needs at least two node types")

    @property
    def length(self) -> int:
        return len(self.node_types)

    @property
    def abbreviation(self) -> str:
        return "".join(t[0] for t in self.node_types)

    @property
    def target_type(self) -> str:
        """MAGNN aggregates instances *into* the first node type."""
        return self.node_types[0]

    def type_ids(self, schema: GraphSchema) -> np.ndarray:
        return np.asarray([schema.node_type_id(t) for t in self.node_types], dtype=np.int64)

    def __str__(self) -> str:
        return "-".join(self.node_types)


@dataclass
class MetapathInstances:
    """All instances of one metapath, grouped by target node.

    ``paths`` is ``[n_instances, path_len]`` (column 0 = target node);
    ``targets`` is ``paths[:, 0]`` for convenience.
    """

    metapath: Metapath
    paths: np.ndarray
    targets: np.ndarray = field(init=False)

    def __post_init__(self):
        if self.paths.ndim != 2 or self.paths.shape[1] != self.metapath.length:
            raise ValueError(
                f"paths shape {self.paths.shape} does not match metapath "
                f"length {self.metapath.length}"
            )
        self.targets = self.paths[:, 0]

    @property
    def num_instances(self) -> int:
        return len(self.paths)


def _undirected_typed_adjacency(graph: HeteroGraph) -> Dict[int, Dict[int, List[int]]]:
    """node -> {neighbor type id -> [neighbors]} over the undirected view."""
    adjacency: Dict[int, Dict[int, List[int]]] = {v: {} for v in range(graph.num_nodes)}
    src, dst, _ = graph.edges()
    types = graph.node_types
    for s, d in zip(src.tolist(), dst.tolist()):
        adjacency[s].setdefault(int(types[d]), []).append(d)
        adjacency[d].setdefault(int(types[s]), []).append(s)
    return adjacency


def enumerate_instances(
    graph: HeteroGraph,
    metapath: Metapath,
    max_instances_per_node: int = 32,
    rng: Optional[np.random.Generator] = None,
    allow_revisit: bool = False,
) -> MetapathInstances:
    """Enumerate metapath instances, capped per target node.

    The cap bounds the combinatorial blow-up on dense KBs; when a node has
    more instances than the cap, a deterministic (or ``rng``-driven) subset
    is kept — mirroring DGL's sampled metapath loaders.
    """
    type_ids = metapath.type_ids(graph.schema)
    adjacency = _undirected_typed_adjacency(graph)
    start_nodes = np.nonzero(graph.node_types == type_ids[0])[0]

    all_paths: List[List[int]] = []
    for start in start_nodes.tolist():
        partial: List[List[int]] = [[start]]
        for depth in range(1, len(type_ids)):
            wanted = int(type_ids[depth])
            extended: List[List[int]] = []
            for path in partial:
                for nbr in adjacency[path[-1]].get(wanted, ()):
                    if not allow_revisit and nbr in path:
                        continue
                    extended.append(path + [nbr])
                if len(extended) > 4 * max_instances_per_node:
                    break  # already far beyond the cap; stop expanding
            partial = extended
            if not partial:
                break
        if not partial:
            continue
        if len(partial) > max_instances_per_node:
            if rng is not None:
                chosen = rng.choice(len(partial), size=max_instances_per_node, replace=False)
                partial = [partial[i] for i in sorted(chosen)]
            else:
                partial = partial[:max_instances_per_node]
        all_paths.extend(partial)

    if all_paths:
        paths = np.asarray(all_paths, dtype=np.int64)
    else:
        paths = np.empty((0, len(type_ids)), dtype=np.int64)
    return MetapathInstances(metapath, paths)


def select_metapaths(
    graph: HeteroGraph,
    max_metapaths: int = 12,
    max_length: int = 3,
) -> List[Metapath]:
    """Data-driven metapath selection.

    The MAGNN paper hand-curates a few metapaths per dataset; this helper
    derives an equivalent set from the KB itself.  Two constraints drive
    the selection:

    1. **Query-graph coverage** — query graphs are 1-hop stars around the
       ambiguous mention, so *every* observed type pair must appear as a
       length-2 metapath; otherwise a mention whose only context node has
       the missing partner type would receive no metapath context at all.
    2. **KB-side richness** — remaining budget goes to length-3 metapaths
       ranked by edge support (bottleneck ``min(#AB, #BC)``), the
       composite relations MAGNN exploits on the KB side.

    ``max_metapaths`` caps the total; pairs are never dropped in favour
    of triples.
    """
    schema = graph.schema
    src, dst, _ = graph.edges()
    types = graph.node_types
    pair_counts: Dict[Tuple[str, str], int] = {}
    for s, d in zip(types[src].tolist(), types[dst].tolist()):
        a, b = schema.node_type_name(s), schema.node_type_name(d)
        pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
        pair_counts[(b, a)] = pair_counts.get((b, a), 0) + 1

    pairs = sorted(pair_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    selected: List[Metapath] = [Metapath(p) for p, _ in pairs[:max_metapaths]]

    if max_length >= 3 and len(selected) < max_metapaths:
        triples: List[Tuple[int, Metapath]] = []
        for (a, b), count_ab in pair_counts.items():
            for (b2, c), count_bc in pair_counts.items():
                if b2 == b:
                    triples.append((min(count_ab, count_bc), Metapath((a, b, c))))
        triples.sort(key=lambda pair: (-pair[0], str(pair[1])))
        for _, mp in triples:
            if len(selected) >= max_metapaths:
                break
            if mp not in selected:
                selected.append(mp)
    return selected


def default_metapaths(schema: GraphSchema, max_length: int = 3) -> List[Metapath]:
    """Derive a metapath set from the schema's relation signatures.

    Every relation contributes its 2-type path; every pair of composable
    relations contributes a 3-type path (``A-B-C`` where ``A-B`` and
    ``B-C`` are declared signatures, in either direction).  This mirrors
    the paper's practice of using the KB schema's composite relations
    (e.g. Drug-AdverseEffect-Finding) without hand tuning per dataset.
    """
    pairs = set()
    for rel in schema.relations:
        pairs.add((rel.src_type, rel.dst_type))
        pairs.add((rel.dst_type, rel.src_type))

    metapaths: List[Metapath] = []
    seen = set()
    for a, b in sorted(pairs):
        mp = (a, b)
        if mp not in seen:
            seen.add(mp)
            metapaths.append(Metapath(mp))
    if max_length >= 3:
        for a, b in sorted(pairs):
            for b2, c in sorted(pairs):
                if b2 != b:
                    continue
                mp = (a, b, c)
                if mp not in seen:
                    seen.add(mp)
                    metapaths.append(Metapath(mp))
    return metapaths
