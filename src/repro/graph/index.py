"""Inverted index over KB entity surface forms (Section 3.1).

The paper matches entity mentions against "an inverted index of the
entities in G_ref [that] includes not only the exact matches of these
entities, but also synonyms, acronyms, and abbreviations".  This module
implements exactly that: every node is indexed under its canonical name,
its stored aliases, and derived acronym keys; lookups return *all*
candidate nodes, so genuinely ambiguous surface forms (the paper's "ARF")
yield multiple candidates and stay unresolved for the GNN to disambiguate.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .hetero import HeteroGraph

_WORD_RE = re.compile(r"[a-z0-9]+")


def normalize_surface(text: str) -> str:
    """Canonical key for a surface form: lowercase alphanumeric words."""
    return " ".join(_WORD_RE.findall(text.lower()))


def derive_acronym(name: str) -> str:
    """First letters of the words of a multi-word name ("acute renal
    failure" -> "arf"); empty for single-word names."""
    words = _WORD_RE.findall(name.lower())
    if len(words) < 2:
        return ""
    return "".join(w[0] for w in words)


class InvertedIndex:
    """Surface form -> candidate KB node ids."""

    def __init__(self, graph: HeteroGraph, index_acronyms: bool = True):
        self.graph = graph
        self._exact: Dict[str, List[int]] = {}
        self._acronyms: Dict[str, List[int]] = {}
        for node in range(graph.num_nodes):
            self._add_key(self._exact, normalize_surface(graph.node_name(node)), node)
            for alias in graph.node_aliases(node):
                self._add_key(self._exact, normalize_surface(alias), node)
            if index_acronyms:
                acronym = derive_acronym(graph.node_name(node))
                if acronym:
                    self._add_key(self._acronyms, acronym, node)

    @staticmethod
    def _add_key(table: Dict[str, List[int]], key: str, node: int) -> None:
        if not key:
            return
        bucket = table.setdefault(key, [])
        if node not in bucket:
            bucket.append(node)

    # ------------------------------------------------------------------
    def lookup(self, surface: str) -> List[int]:
        """All candidate nodes for a surface form: the union of exact,
        alias, and acronym matches (Section 3.1 — the index "includes not
        only the exact matches ... but also synonyms, acronyms, and
        abbreviations").  The paper's "ARF" must return *both* expansions
        even when one stores "ARF" as an explicit alias.
        """
        key = normalize_surface(surface)
        out = list(self._exact.get(key, []))
        compact = key.replace(" ", "")
        for node in self._acronyms.get(compact, []):
            if node not in out:
                out.append(node)
        return out

    def lookup_unique(self, surface: str) -> int | None:
        """The node id when the surface form is unambiguous, else None."""
        candidates = self.lookup(surface)
        return candidates[0] if len(candidates) == 1 else None

    def is_ambiguous(self, surface: str) -> bool:
        return len(self.lookup(surface)) > 1

    def known_surfaces(self) -> List[str]:
        return sorted(self._exact)

    def acronym_surfaces(self) -> List[str]:
        """The derived acronym keys ("arf", "cah", ...) — where most of
        the KB's genuine surface collisions live."""
        return sorted(self._acronyms)

    def candidate_types(self, surface: str) -> List[str]:
        """Distinct node type names among a surface form's candidates —
        the entity-type inference step of Section 3.1 (a mention matching
        several entities is tagged with *all* their types)."""
        types = {self.graph.node_type_name(c) for c in self.lookup(surface)}
        return sorted(types)

    def __len__(self) -> int:
        return len(self._exact)
