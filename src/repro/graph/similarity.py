"""Graph and embedding similarity measures for the semantic-driven
negative sampler (Section 3.2).

``sim = sim_se * sim_st`` where ``sim_se`` is the cosine similarity of the
initial (language-model) entity embeddings and ``sim_st`` is a normalised
1-hop graph edit distance following Qureshi et al. [34]: only the local
star of each entity is compared, which "provides the most significant
structural information" while keeping the computation linear in degree.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .hetero import HeteroGraph, neighbor_label_multiset


def star_edit_distance(
    sig_u: Dict[Tuple[int, int], int],
    sig_v: Dict[Tuple[int, int], int],
) -> int:
    """Edit distance between two 1-hop stars given their labelled
    neighbour multisets.

    Each missing/extra ``(relation, neighbour type)`` incidence costs one
    edit (edge insertion or deletion carries its endpoint).  Matching
    incidences cost zero.
    """
    distance = 0
    for key in set(sig_u) | set(sig_v):
        distance += abs(sig_u.get(key, 0) - sig_v.get(key, 0))
    return distance


def normalized_ged_similarity(
    graph: HeteroGraph, u: int, v: int
) -> float:
    """``sim_st`` in [0, 1]: 1 for identical 1-hop stars, 0 for disjoint.

    Normalisation follows the Qureshi et al. convention of dividing by the
    total size of the two compared stars.
    """
    sig_u = neighbor_label_multiset(graph, u)
    sig_v = neighbor_label_multiset(graph, v)
    total = sum(sig_u.values()) + sum(sig_v.values())
    if total == 0:
        return 1.0  # two isolated nodes are structurally identical
    return 1.0 - star_edit_distance(sig_u, sig_v) / total


class StructuralSimilarity:
    """Cached 1-hop star signatures for repeated ``sim_st`` queries.

    The negative sampler scores one positive entity against many
    candidates; caching the signatures makes that a multiset diff each.
    """

    def __init__(self, graph: HeteroGraph):
        self.graph = graph
        self._signatures: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._sizes: Dict[int, int] = {}

    def signature(self, node: int) -> Dict[Tuple[int, int], int]:
        if node not in self._signatures:
            sig = neighbor_label_multiset(self.graph, node)
            self._signatures[node] = sig
            self._sizes[node] = sum(sig.values())
        return self._signatures[node]

    def similarity(self, u: int, v: int) -> float:
        sig_u, sig_v = self.signature(u), self.signature(v)
        total = self._sizes[u] + self._sizes[v]
        if total == 0:
            return 1.0
        return 1.0 - star_edit_distance(sig_u, sig_v) / total


def cosine_similarity_matrix(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities ``[n_queries, n_corpus]``."""
    q = queries / (np.linalg.norm(queries, axis=1, keepdims=True) + 1e-12)
    c = corpus / (np.linalg.norm(corpus, axis=1, keepdims=True) + 1e-12)
    return q @ c.T


def cosine_similarity_vector(query: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Cosine similarity of one vector against every corpus row."""
    return cosine_similarity_matrix(query[None, :], corpus)[0]


def jaccard_neighbors(graph: HeteroGraph, u: int, v: int) -> float:
    """Jaccard overlap of 1-hop neighbour sets (an alternative ``sim_st``
    used by ablation benchmarks)."""
    nu = set(graph.neighbors(u).tolist())
    nv = set(graph.neighbors(v).tolist())
    if not nu and not nv:
        return 1.0
    return len(nu & nv) / len(nu | nv)
