"""Alternative structural-similarity measures for ``sim_st`` (Section 3.2).

The paper picks the 1-hop graph edit distance for the structural half of
the hard-negative score but explicitly surveys the design space:
"Different graph similarity metrics are defined, ranging from graph edit
distance (GED) [1], maximum common subgraph [2], to graph kernels [14]."
This module implements all the cited alternatives so the choice can be
ablated (``benchmarks/bench_ablation_simst_metric.py``):

* :func:`mcs_similarity` — Bunke-Shearer maximum-common-subgraph
  similarity over labelled 1-hop stars;
* :class:`WeisfeilerLehmanKernel` — the WL subtree kernel over k-hop ego
  neighbourhoods, normalised to a cosine in [0, 1];
* :func:`hungarian_ged_similarity` — the Riesen-Bunke assignment-based
  GED approximation (Hungarian algorithm over neighbour substitution
  costs), a tighter estimate than the multiset star diff;
* :func:`make_structural_metric` — the factory the negative sampler uses
  to select a metric by name.

Every measure maps into [0, 1] with 1 = structurally identical, matching
the contract of
:func:`~repro.graph.similarity.normalized_ged_similarity`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from .hetero import HeteroGraph, neighbor_label_multiset
from .similarity import StructuralSimilarity, jaccard_neighbors

__all__ = [
    "mcs_similarity",
    "McsSimilarity",
    "WeisfeilerLehmanKernel",
    "hungarian_ged_similarity",
    "HungarianGedSimilarity",
    "make_structural_metric",
    "STRUCTURAL_METRICS",
]


# ---------------------------------------------------------------------------
# Maximum common subgraph (Bunke & Shearer [2])
# ---------------------------------------------------------------------------
def _star_sizes(sig: Dict[Tuple[int, int], int]) -> int:
    return sum(sig.values())


def mcs_similarity(graph: HeteroGraph, u: int, v: int) -> float:
    """Bunke-Shearer similarity of the labelled 1-hop stars of ``u``/``v``.

    Stars are labelled with ``(relation, neighbour)`` incidences — the
    same common-neighbour semantics as the paper's GED choice
    ("gastroenteritis shares several common neighbors with acute renal
    failure").  The maximum common subgraph of two stars keeps, for every
    incidence, the smaller of the two counts; the Bunke-Shearer metric
    normalises by the size of the *larger* star:

    ``sim = |mcs| / max(|star_u|, |star_v|)``

    Two isolated nodes are vacuously identical (similarity 1).
    """
    sig_u = neighbor_label_multiset(graph, u)
    sig_v = neighbor_label_multiset(graph, v)
    size_u, size_v = _star_sizes(sig_u), _star_sizes(sig_v)
    if size_u == 0 and size_v == 0:
        return 1.0
    common = sum(min(sig_u.get(key, 0), sig_v.get(key, 0)) for key in sig_u)
    return common / max(size_u, size_v)


class McsSimilarity:
    """Cached-signature MCS similarity (same interface as
    :class:`~repro.graph.similarity.StructuralSimilarity`)."""

    def __init__(self, graph: HeteroGraph):
        self.graph = graph
        self._signatures: Dict[int, Dict[Tuple[int, int], int]] = {}

    def _signature(self, node: int) -> Dict[Tuple[int, int], int]:
        sig = self._signatures.get(node)
        if sig is None:
            sig = neighbor_label_multiset(self.graph, node)
            self._signatures[node] = sig
        return sig

    def similarity(self, u: int, v: int) -> float:
        sig_u, sig_v = self._signature(u), self._signature(v)
        size_u, size_v = _star_sizes(sig_u), _star_sizes(sig_v)
        if size_u == 0 and size_v == 0:
            return 1.0
        common = sum(min(sig_u.get(key, 0), sig_v.get(key, 0)) for key in sig_u)
        return common / max(size_u, size_v)


# ---------------------------------------------------------------------------
# Weisfeiler-Lehman subtree kernel (Gärtner et al. [14] family)
# ---------------------------------------------------------------------------
class WeisfeilerLehmanKernel:
    """WL subtree kernel over the k-hop neighbourhood of each node.

    Node labels start as node-type ids and are refined ``iterations``
    times by hashing the multiset of neighbour labels (the classic WL
    colour refinement).  A node's *feature vector* counts every colour
    its k-hop neighbourhood exhibits across all refinement rounds; the
    kernel value is the dot product of two such vectors, and
    :meth:`similarity` returns its cosine normalisation
    ``k(u,v) / sqrt(k(u,u) k(v,v))`` in [0, 1].

    Colour refinement runs once for the whole graph (shared across
    queries), so per-pair similarity is a sparse-histogram dot product.
    """

    def __init__(self, graph: HeteroGraph, iterations: int = 2, hops: int = 1):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self.graph = graph
        self.iterations = iterations
        self.hops = hops
        self._colors = self._refine()
        self._palette_size = (
            max(int(c.max()) for c in self._colors) + 1 if graph.num_nodes else 1
        )
        self._histograms: Dict[int, Dict[int, int]] = {}

    # -- colour refinement over the whole graph ------------------------
    def _refine(self) -> List[np.ndarray]:
        graph = self.graph
        n = graph.num_nodes
        adjacency: List[List[int]] = [[] for _ in range(n)]
        src, dst, _ = graph.edges()
        for s, d in zip(src.tolist(), dst.tolist()):
            adjacency[s].append(d)
            adjacency[d].append(s)

        rounds: List[np.ndarray] = [graph.node_types.copy()]
        palette: Dict[Tuple, int] = {}
        for _ in range(self.iterations):
            prev = rounds[-1]
            fresh = np.empty(n, dtype=np.int64)
            for v in range(n):
                key = (int(prev[v]), tuple(sorted(int(prev[u]) for u in adjacency[v])))
                if key not in palette:
                    palette[key] = len(palette)
                fresh[v] = palette[key]
            rounds.append(fresh)
        return rounds

    # -- per-node WL histograms over the k-hop ego set ------------------
    def _histogram(self, node: int) -> Dict[int, int]:
        hist = self._histograms.get(node)
        if hist is not None:
            return hist
        from .traversal import k_hop_nodes

        ego = k_hop_nodes(self.graph, [node], self.hops)
        hist = {}
        for round_index, colors in enumerate(self._colors):
            # Offset colours per round so refinement rounds never collide.
            offset = round_index * self._palette_size
            for v in ego.tolist():
                key = offset + int(colors[v])
                hist[key] = hist.get(key, 0) + 1
        self._histograms[node] = hist
        return hist

    def kernel(self, u: int, v: int) -> float:
        """Unnormalised WL subtree kernel value."""
        hu, hv = self._histogram(u), self._histogram(v)
        if len(hv) < len(hu):
            hu, hv = hv, hu
        return float(sum(count * hv.get(color, 0) for color, count in hu.items()))

    def similarity(self, u: int, v: int) -> float:
        """Cosine-normalised kernel in [0, 1]."""
        kuv = self.kernel(u, v)
        if kuv == 0.0:
            return 0.0
        return kuv / np.sqrt(self.kernel(u, u) * self.kernel(v, v))


# ---------------------------------------------------------------------------
# Assignment-based GED (Riesen & Bunke approximation)
# ---------------------------------------------------------------------------
def _neighbor_labels(graph: HeteroGraph, node: int) -> List[Tuple[int, int]]:
    """The labelled incidences ``(relation, neighbour)`` of a node's
    1-hop star, one entry per incident edge."""
    labels: List[Tuple[int, int]] = []
    for sig_key, count in neighbor_label_multiset(graph, node).items():
        labels.extend([sig_key] * count)
    return labels


def hungarian_ged_similarity(
    graph: HeteroGraph,
    u: int,
    v: int,
    substitution_cost: float = 1.0,
    indel_cost: float = 1.0,
) -> float:
    """Assignment-based GED over 1-hop stars, normalised to [0, 1].

    Builds the Riesen-Bunke cost matrix between the labelled incidences of
    the two stars — substituting two incidences costs 0 when their
    ``(relation, neighbour)`` labels agree and ``substitution_cost``
    otherwise; unmatched incidences pay ``indel_cost`` — and solves the
    optimal assignment with the Hungarian algorithm.  The similarity is
    ``1 - GED / worst_case`` where ``worst_case`` deletes and re-inserts
    both stars entirely.

    With unit costs this lower-bounds the multiset star diff of
    :func:`~repro.graph.similarity.normalized_ged_similarity` (the
    assignment can exploit partial label matches); with the default unit
    costs the two coincide on stars with disjoint label sets.
    """
    labels_u = _neighbor_labels(graph, u)
    labels_v = _neighbor_labels(graph, v)
    nu, nv = len(labels_u), len(labels_v)
    if nu == 0 and nv == 0:
        return 1.0
    worst = indel_cost * (nu + nv)

    # Square (nu + nv) cost matrix: the top-left block holds substitution
    # costs, the diagonal of the top-right block deletion of u-incidences,
    # the diagonal of the bottom-left block insertion of v-incidences, and
    # the bottom-right block is free (dummy-to-dummy).
    size = nu + nv
    cost = np.zeros((size, size), dtype=np.float64)
    inf = worst + 1.0
    if nu and nv:
        sub = np.full((nu, nv), substitution_cost, dtype=np.float64)
        for i, lu in enumerate(labels_u):
            for j, lv in enumerate(labels_v):
                if lu == lv:
                    sub[i, j] = 0.0
        cost[:nu, :nv] = sub
    cost[:nu, nv:] = inf
    np.fill_diagonal(cost[:nu, nv:], indel_cost)
    cost[nu:, :nv] = inf
    np.fill_diagonal(cost[nu:, :nv], indel_cost)
    rows, cols = linear_sum_assignment(cost)
    ged = float(cost[rows, cols].sum())
    return max(0.0, 1.0 - ged / worst)


class HungarianGedSimilarity:
    """Cached-label Hungarian GED similarity with the sampler interface."""

    def __init__(self, graph: HeteroGraph):
        self.graph = graph
        self._labels: Dict[int, List[Tuple[int, int]]] = {}

    def similarity(self, u: int, v: int) -> float:
        return hungarian_ged_similarity(self.graph, u, v)


class JaccardSimilarity:
    """1-hop neighbour-set Jaccard with the sampler interface."""

    def __init__(self, graph: HeteroGraph):
        self.graph = graph

    def similarity(self, u: int, v: int) -> float:
        return jaccard_neighbors(self.graph, u, v)


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------
STRUCTURAL_METRICS: Dict[str, Callable[[HeteroGraph], object]] = {
    "star_ged": StructuralSimilarity,
    "mcs": McsSimilarity,
    "wl": WeisfeilerLehmanKernel,
    "hungarian_ged": HungarianGedSimilarity,
    "jaccard": JaccardSimilarity,
}


def make_structural_metric(name: str, graph: HeteroGraph):
    """Instantiate a ``sim_st`` metric by name.

    Options: ``star_ged`` (the paper's choice — normalised 1-hop GED),
    ``mcs``, ``wl``, ``hungarian_ged``, ``jaccard``.  Every returned
    object exposes ``similarity(u, v) -> float`` in [0, 1].
    """
    try:
        factory = STRUCTURAL_METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown structural metric {name!r}; options: {sorted(STRUCTURAL_METRICS)}"
        ) from None
    return factory(graph)
