"""Synthetic medical vocabulary.

Generates entity names with the properties the paper's evaluation hinges
on (Sections 1, 3.2, 4.1):

* **acronym collisions** — compositional names like "acute renal failure"
  and "acute respiratory failure" share the acronym "ARF";
* **lexical near-misses** — "malignant hyperthermia" vs "malignant
  hyperpyrexia" style pairs arise from shared qualifier+anatomy stems;
* **synonym aliases** — latinate/plain pairs ("renal"/"kidney",
  "hepatic"/"liver") yield alias surface forms for the inverted index.

All generation is deterministic given the ``numpy.random.Generator``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

QUALIFIERS = [
    "acute",
    "chronic",
    "severe",
    "mild",
    "recurrent",
    "progressive",
    "congenital",
    "idiopathic",
    "malignant",
    "benign",
    "primary",
    "secondary",
]

ANATOMY = [
    "renal",
    "respiratory",
    "hepatic",
    "cardiac",
    "pulmonary",
    "gastric",
    "cerebral",
    "dermal",
    "vascular",
    "intestinal",
    "pancreatic",
    "thyroid",
    "adrenal",
    "ocular",
    "auditory",
    "skeletal",
    "muscular",
    "lymphatic",
    "urinary",
    "bronchial",
    "arterial",
    "venous",
    "spinal",
    "cranial",
    "esophageal",
]

CONDITIONS = [
    "failure",
    "disease",
    "insufficiency",
    "disorder",
    "inflammation",
    "carcinoma",
    "fibrosis",
    "stenosis",
    "edema",
    "necrosis",
    "hypertrophy",
    "atrophy",
    "dysplasia",
    "neoplasm",
    "infection",
    "obstruction",
    "hemorrhage",
    "ischemia",
    "lesion",
    "syndrome",
    "dystrophy",
    "sclerosis",
    "ulceration",
    "thrombosis",
    "infarction",
    "regurgitation",
    "hyperplasia",
    "effusion",
    "embolism",
    "rupture",
]

#: latinate -> plain-English synonym stems (both directions are aliased)
SYNONYM_STEMS: Dict[str, str] = {
    "renal": "kidney",
    "hepatic": "liver",
    "cardiac": "heart",
    "pulmonary": "lung",
    "gastric": "stomach",
    "cerebral": "brain",
    "dermal": "skin",
    "ocular": "eye",
    "muscular": "muscle",
    "urinary": "bladder",
    "disease": "disorder",
    "failure": "insufficiency",
    "carcinoma": "cancer",
    "neoplasm": "tumor",
    "hemorrhage": "bleeding",
}

STAGES = ["", " type 1", " type 2", " grade II", " grade III", " stage IV"]

SYMPTOM_BASES = [
    "nausea",
    "vomiting",
    "dizziness",
    "fatigue",
    "headache",
    "fever",
    "rash",
    "pruritus",
    "dyspnea",
    "cough",
    "chest pain",
    "abdominal pain",
    "joint pain",
    "back pain",
    "palpitations",
    "syncope",
    "tremor",
    "seizure",
    "confusion",
    "insomnia",
    "anorexia",
    "weight loss",
    "night sweats",
    "chills",
    "malaise",
    "diarrhea",
    "constipation",
    "dysphagia",
    "tinnitus",
    "vertigo",
    "blurred vision",
    "numbness",
    "weakness",
    "stiffness",
    "swelling",
    "bruising",
    "jaundice",
    "pallor",
    "cyanosis",
    "edema of the limbs",
]

FINDING_BASES = [
    "proteinuria",
    "hematuria",
    "nephrotoxicity",
    "hepatotoxicity",
    "neutropenia",
    "thrombocytopenia",
    "anemia",
    "leukocytosis",
    "hyperkalemia",
    "hyponatremia",
    "hyperglycemia",
    "hypoglycemia",
    "hypercalcemia",
    "acidosis",
    "alkalosis",
    "hypoxemia",
    "hypertension",
    "hypotension",
    "bradycardia",
    "tachycardia",
    "arrhythmia",
    "cardiomegaly",
    "hepatomegaly",
    "splenomegaly",
    "lymphadenopathy",
    "osteopenia",
    "hyperbilirubinemia",
    "azotemia",
    "ketonuria",
    "glycosuria",
]

DRUG_PREFIXES = [
    "car", "nep", "hep", "gas", "neu", "pul", "dex", "lor", "met", "ami",
    "cef", "flu", "pra", "ser", "val", "zol", "rib", "tel", "oxa", "lin",
]
DRUG_MIDDLES = [
    "di", "ro", "ta", "vi", "lo", "mi", "na", "pe", "sa", "ti",
    "be", "cu", "fo", "ge", "ha",
]
DRUG_SUFFIXES = [
    "zol", "pril", "olol", "statin", "mab", "cillin", "mycin", "azole",
    "idine", "osin", "artan", "gliptin", "parin", "axel", "tinib",
]

PROCEDURE_BASES = [
    "biopsy", "resection", "angioplasty", "catheterization", "dialysis",
    "transplantation", "endoscopy", "bypass", "ablation", "drainage",
    "laparoscopy", "arthroscopy", "stenting", "intubation", "transfusion",
]

LAB_BASES = [
    "serum creatinine", "blood urea nitrogen", "hemoglobin a1c",
    "liver panel", "lipid panel", "troponin assay", "d-dimer",
    "prothrombin time", "white cell count", "platelet count",
    "c-reactive protein", "sedimentation rate", "urinalysis",
    "arterial blood gas", "electrolyte panel",
]


def synonyms_for(name: str) -> Tuple[str, ...]:
    """Alias surface forms of a compositional name via synonym stems."""
    words = name.split()
    aliases: List[str] = []
    for i, w in enumerate(words):
        if w in SYNONYM_STEMS:
            swapped = list(words)
            swapped[i] = SYNONYM_STEMS[w]
            aliases.append(" ".join(swapped))
    return tuple(aliases)


class NameFactory:
    """Deterministic supplier of unique entity names per node type."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self._used: set = set()

    def _claim(self, name: str) -> Optional[str]:
        if name in self._used:
            return None
        self._used.add(name)
        return name

    # ------------------------------------------------------------------
    def disease_names(self, count: int) -> List[str]:
        """Compositional qualifier+anatomy+condition names, systematically
        enumerated so acronym families occur (same initials)."""
        names: List[str] = []
        # Shuffled systematic enumeration keeps determinism and coverage.
        combos = [
            (q, a, c)
            for q in QUALIFIERS
            for a in ANATOMY
            for c in CONDITIONS
        ]
        self.rng.shuffle(combos)
        for q, a, c in combos:
            if len(names) >= count:
                return names
            for stage in STAGES:
                name = self._claim(f"{q} {a} {c}{stage}")
                if name:
                    names.append(name)
                    break
        # Fallback: two-word combinations.
        pairs = [(a, c) for a in ANATOMY for c in CONDITIONS]
        self.rng.shuffle(pairs)
        for a, c in pairs:
            if len(names) >= count:
                return names
            name = self._claim(f"{a} {c}")
            if name:
                names.append(name)
        raise ValueError(f"vocabulary exhausted at {len(names)} disease names (need {count})")

    def drug_names(self, count: int) -> List[str]:
        names: List[str] = []
        combos = [
            (p, m, s)
            for p in DRUG_PREFIXES
            for m in DRUG_MIDDLES
            for s in DRUG_SUFFIXES
        ]
        self.rng.shuffle(combos)
        for p, m, s in combos:
            if len(names) >= count:
                return names
            name = self._claim(p + m + s)
            if name:
                names.append(name)
        # Double-middle combinations extend capacity ~15x.
        doubles = [
            (p, m1, m2, s)
            for p in DRUG_PREFIXES
            for m1 in DRUG_MIDDLES
            for m2 in DRUG_MIDDLES
            for s in DRUG_SUFFIXES
            if m1 != m2
        ]
        self.rng.shuffle(doubles)
        for p, m1, m2, s in doubles:
            if len(names) >= count:
                return names
            name = self._claim(p + m1 + m2 + s)
            if name:
                names.append(name)
        raise ValueError(f"vocabulary exhausted at {len(names)} drug names (need {count})")

    def _based_names(self, bases: Sequence[str], count: int, kind: str) -> List[str]:
        names: List[str] = []
        for base in bases:
            if len(names) >= count:
                return names
            name = self._claim(base)
            if name:
                names.append(name)
        qualifiers = list(QUALIFIERS)
        self.rng.shuffle(qualifiers)
        for q in qualifiers:
            for base in bases:
                if len(names) >= count:
                    return names
                name = self._claim(f"{q} {base}")
                if name:
                    names.append(name)
        for q in QUALIFIERS:
            for a in ANATOMY:
                for base in bases:
                    if len(names) >= count:
                        return names
                    name = self._claim(f"{q} {a} {base}")
                    if name:
                        names.append(name)
        raise ValueError(f"vocabulary exhausted for {kind} (need {count})")

    def symptom_names(self, count: int) -> List[str]:
        return self._based_names(SYMPTOM_BASES, count, "symptoms")

    def finding_names(self, count: int) -> List[str]:
        return self._based_names(FINDING_BASES, count, "findings")

    def adverse_effect_names(self, count: int) -> List[str]:
        merged = SYMPTOM_BASES[::-1] + FINDING_BASES
        return self._based_names(merged, count, "adverse effects")

    def procedure_names(self, count: int) -> List[str]:
        bases = [f"{a} {p}" for a in ANATOMY for p in PROCEDURE_BASES]
        self.rng.shuffle(bases)
        return self._based_names(bases, count, "procedures")

    def lab_names(self, count: int) -> List[str]:
        extended = list(LAB_BASES) + [f"{a} panel" for a in ANATOMY]
        return self._based_names(extended, count, "lab tests")

    def names_for_type(self, type_name: str, count: int) -> List[str]:
        """Dispatch by canonical node-type name (schemas may rename)."""
        dispatch = {
            "Drug": self.drug_names,
            "Chemical": self.drug_names,
            "Disease": self.disease_names,
            "Disorder": self.disease_names,
            "AdverseEffect": self.adverse_effect_names,
            "Symptom": self.symptom_names,
            "Finding": self.finding_names,
            "Procedure": self.procedure_names,
            "LabTest": self.lab_names,
            "AnatomicalSite": self.procedure_names,
        }
        try:
            return dispatch[type_name](count)
        except KeyError:
            raise ValueError(f"no vocabulary for node type {type_name!r}") from None
