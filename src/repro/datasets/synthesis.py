"""Synthetic medical KB + snippet-corpus synthesiser.

Stands in for the five evaluation datasets (Section 4.1, Table 2), which
are proprietary (MDX), credentialed (MIMIC-III, ShARe) or licensed
corpora.  Each profile controls the properties that drive the paper's
results (see DESIGN.md §2):

* KB size and density matched to Table 2 (scaled by ``scale``),
* node-type mix and schema richness (graph "complexity"),
* hub skew and *sibling* entities that share neighbours (the "highly
  similar nodes" of Section 4.5 and the hard structural negatives of
  Section 3.2),
* snippet context length (short snippets -> "insufficient structure"),
* the discrepancy-class mix of the ambiguous mentions (acronym
  collisions, synonyms, abbreviations, typos, simplifications).

Everything is seeded: the same profile + scale always yields the same
dataset, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.hetero import HeteroGraph
from ..graph.index import InvertedIndex, derive_acronym, normalize_surface
from ..graph.schema import GraphSchema
from ..text.corpus import MentionAnnotation, Snippet, mint_cui
from ..text.variants import VariantKind, generate_variant
from .vocabulary import NameFactory, synonyms_for


@dataclass
class DatasetProfile:
    """Declarative description of one synthetic dataset."""

    name: str
    schema_factory: Callable[[], GraphSchema]
    num_nodes: int
    num_edges: int
    num_snippets: int
    type_mix: Dict[str, float]
    context_mentions_mean: float = 3.0
    context_mentions_min: int = 1
    ambiguous_kinds: Dict[VariantKind, float] = field(
        default_factory=lambda: {
            VariantKind.ACRONYM: 0.4,
            VariantKind.SYNONYM: 0.2,
            VariantKind.ABBREVIATION: 0.15,
            VariantKind.TYPO: 0.1,
            VariantKind.SIMPLIFICATION: 0.15,
        }
    )
    alias_rate: float = 0.3
    hub_exponent: float = 0.8
    sibling_rate: float = 0.2
    sibling_edge_fraction: float = 0.65
    seed: int = 7

    def scaled(self, scale: float) -> "DatasetProfile":
        """Proportionally shrink/grow the dataset (keeps density)."""
        if scale == 1.0:
            return self
        return DatasetProfile(
            name=self.name,
            schema_factory=self.schema_factory,
            num_nodes=max(int(self.num_nodes * scale), 120),
            num_edges=max(int(self.num_edges * scale), 240),
            # Snippets shrink much more slowly than the KB: evaluation
            # needs enough test pairs to keep P/R/F1 stable.
            num_snippets=min(self.num_snippets, max(int(self.num_snippets * scale), 300)),
            type_mix=dict(self.type_mix),
            context_mentions_mean=self.context_mentions_mean,
            context_mentions_min=self.context_mentions_min,
            ambiguous_kinds=dict(self.ambiguous_kinds),
            alias_rate=self.alias_rate,
            hub_exponent=self.hub_exponent,
            sibling_rate=self.sibling_rate,
            sibling_edge_fraction=self.sibling_edge_fraction,
            seed=self.seed,
        )


@dataclass
class EDDataset:
    """One synthesised dataset: KB, snippets, and split indices."""

    name: str
    kb: HeteroGraph
    snippets: List[Snippet]
    train_indices: List[int]
    val_indices: List[int]
    test_indices: List[int]
    profile: DatasetProfile

    @property
    def train(self) -> List[Snippet]:
        return [self.snippets[i] for i in self.train_indices]

    @property
    def val(self) -> List[Snippet]:
        return [self.snippets[i] for i in self.val_indices]

    @property
    def test(self) -> List[Snippet]:
        return [self.snippets[i] for i in self.test_indices]

    def stats(self) -> Dict[str, int]:
        """Table 2's row for this dataset."""
        return {
            "nodes": self.kb.num_nodes,
            "edges": self.kb.num_edges,
            "snippets": len(self.snippets),
        }


# ---------------------------------------------------------------------------
# KB synthesis
# ---------------------------------------------------------------------------
def _allocate_counts(total: int, mix: Dict[str, float]) -> Dict[str, int]:
    weights = np.asarray(list(mix.values()), dtype=np.float64)
    weights /= weights.sum()
    counts = np.floor(weights * total).astype(int)
    counts[0] += total - int(counts.sum())  # give rounding remainder to the first type
    return {t: int(c) for t, c in zip(mix, counts)}


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def synthesize_kb(profile: DatasetProfile, rng: np.random.Generator) -> HeteroGraph:
    """Generate the KB graph for a profile."""
    schema = profile.schema_factory()
    graph = HeteroGraph(schema)
    factory = NameFactory(rng)

    counts = _allocate_counts(profile.num_nodes, profile.type_mix)
    nodes_by_type: Dict[str, List[int]] = {}
    for type_name, count in counts.items():
        names = factory.names_for_type(type_name, count)
        ids: List[int] = []
        for name in names:
            aliases = synonyms_for(name) if rng.random() < profile.alias_rate else ()
            ids.append(graph.add_node(type_name, name, aliases=aliases))
        nodes_by_type[type_name] = ids

    # --- edges: budget per relation ~ sqrt(|src| * |dst|) ----------------
    relations = list(schema.relations)
    rel_weights = np.asarray(
        [
            np.sqrt(
                max(len(nodes_by_type.get(r.src_type, ())), 1)
                * max(len(nodes_by_type.get(r.dst_type, ())), 1)
            )
            for r in relations
        ],
        dtype=np.float64,
    )
    rel_weights /= rel_weights.sum()
    budgets = np.floor(rel_weights * profile.num_edges).astype(int)
    budgets[int(np.argmax(budgets))] += profile.num_edges - int(budgets.sum())

    seen: set = set()
    for rel_id, (relation, budget) in enumerate(zip(relations, budgets)):
        src_pool = nodes_by_type.get(relation.src_type, [])
        dst_pool = nodes_by_type.get(relation.dst_type, [])
        if not src_pool or not dst_pool or budget <= 0:
            continue
        src_pool = np.asarray(src_pool)
        dst_pool = np.asarray(dst_pool)
        p_src = _zipf_probabilities(len(src_pool), profile.hub_exponent)
        p_dst = _zipf_probabilities(len(dst_pool), profile.hub_exponent)
        added = 0
        attempts = 0
        max_attempts = budget * 20
        while added < budget and attempts < max_attempts:
            remaining = budget - added
            batch = max(remaining * 2, 64)
            src = rng.choice(src_pool, size=batch, p=p_src)
            dst = rng.choice(dst_pool, size=batch, p=p_dst)
            for s, d in zip(src.tolist(), dst.tolist()):
                attempts += 1
                if s == d or (s, d, rel_id) in seen:
                    continue
                seen.add((s, d, rel_id))
                graph.add_edge(s, d, rel_id)
                added += 1
                if added >= budget:
                    break

    _add_sibling_structure(graph, nodes_by_type, profile, rng, seen)
    return graph


def _name_stem(name: str) -> str:
    """Stem for sibling grouping: the name minus its first word ("acute
    renal failure" and "chronic renal failure" share "renal failure")."""
    words = normalize_surface(name).split()
    return " ".join(words[1:]) if len(words) >= 3 else ""


def _add_sibling_structure(
    graph: HeteroGraph,
    nodes_by_type: Dict[str, List[int]],
    profile: DatasetProfile,
    rng: np.random.Generator,
    seen: set,
) -> None:
    """Copy a fraction of edges between confusable entities so they also
    share neighbours (hard structural negatives / the "highly similar
    nodes" error class).

    Two grouping keys produce confusable pairs:

    * name stems — "acute renal failure" / "chronic renal failure";
    * acronyms — "acute renal failure" / "acute respiratory failure"
      (both "ARF"; in real medical KBs both expansions sit in heavily
      overlapping clinical contexts, so sharing neighbours is realistic
      and is precisely what makes the paper's ARF example hard).
    """
    if profile.sibling_rate <= 0:
        return
    from ..graph.index import derive_acronym

    stems: Dict[Tuple[str, str, str], List[int]] = {}
    for type_name, ids in nodes_by_type.items():
        for node in ids:
            stem = _name_stem(graph.node_name(node))
            if stem:
                stems.setdefault(("stem", type_name, stem), []).append(node)
            acronym = derive_acronym(graph.node_name(node))
            if acronym:
                stems.setdefault(("acro", type_name, acronym), []).append(node)

    groups = [sorted(set(g)) for g in stems.values() if len(set(g)) >= 2]
    rng.shuffle(groups)
    target_groups = int(len(groups) * profile.sibling_rate)
    for group in groups[:target_groups]:
        a, b = group[0], group[1]
        # Copy a fraction of a's edges onto b (both directions).
        src, dst, et = graph.edges()
        out_mask = src == a
        in_mask = dst == a
        for s, d, r in zip(src[out_mask].tolist(), dst[out_mask].tolist(), et[out_mask].tolist()):
            if rng.random() < profile.sibling_edge_fraction and (b, d, r) not in seen and b != d:
                seen.add((b, d, r))
                graph.add_edge(b, d, r)
        for s, d, r in zip(src[in_mask].tolist(), dst[in_mask].tolist(), et[in_mask].tolist()):
            if rng.random() < profile.sibling_edge_fraction and (s, b, r) not in seen and s != b:
                seen.add((s, b, r))
                graph.add_edge(s, b, r)


# ---------------------------------------------------------------------------
# Snippet synthesis
# ---------------------------------------------------------------------------
_TEMPLATES = [
    ("The patient presented with ", ", ", " and ", "."),
    ("Clinical notes report ", ", ", " as well as ", "."),
    ("Treatment records mention ", ", ", " along with ", "."),
    ("Follow-up revealed ", ", ", " accompanied by ", "."),
    ("Examination documented ", ", ", " together with ", "."),
]


def compose_snippet_text(
    surfaces: Sequence[str], rng: np.random.Generator
) -> Tuple[str, List[Tuple[int, int]]]:
    """Render mention surfaces into a sentence, returning exact character
    spans per surface (in input order)."""
    prefix, comma, conjunction, suffix = _TEMPLATES[int(rng.integers(0, len(_TEMPLATES)))]
    spans: List[Tuple[int, int]] = []
    text = prefix
    for i, surface in enumerate(surfaces):
        if i > 0:
            text += conjunction if i == len(surfaces) - 1 else comma
        start = len(text)
        text += surface
        spans.append((start, start + len(surface)))
    text += suffix
    return text, spans


def _sample_kind(kinds: Dict[VariantKind, float], rng: np.random.Generator) -> VariantKind:
    names = list(kinds)
    probs = np.asarray([kinds[k] for k in names], dtype=np.float64)
    probs /= probs.sum()
    return names[int(rng.choice(len(names), p=probs))]


def synthesize_snippets(
    kb: HeteroGraph,
    profile: DatasetProfile,
    rng: np.random.Generator,
) -> List[Snippet]:
    """Generate the snippet corpus over a synthesised KB.

    Each snippet carries one ambiguous mention (a corrupted surface of a
    gold entity) plus context mentions drawn from the gold entity's KB
    neighbourhood — the structural signal ED-GNN exploits.
    """
    index = InvertedIndex(kb)

    # Acronym families: surfaces resolvable to >= 2 entities.
    families: List[Tuple[str, List[int]]] = []
    by_acronym: Dict[str, List[int]] = {}
    for node in range(kb.num_nodes):
        acronym = derive_acronym(kb.node_name(node))
        if acronym:
            by_acronym.setdefault(acronym, []).append(node)
    for acronym, members in sorted(by_acronym.items()):
        eligible = [m for m in members if kb.degree(m) >= profile.context_mentions_min]
        if len(eligible) >= 2:
            families.append((acronym.upper(), eligible))

    linkable = [v for v in range(kb.num_nodes) if kb.degree(v) >= 1]
    if not linkable:
        raise ValueError("KB has no connected nodes; cannot build snippets")

    snippets: List[Snippet] = []
    guard = 0
    while len(snippets) < profile.num_snippets:
        guard += 1
        if guard > profile.num_snippets * 50:
            raise RuntimeError("snippet synthesis failed to converge; check profile")
        kind = _sample_kind(profile.ambiguous_kinds, rng)

        if kind == VariantKind.ACRONYM and families:
            surface, members = families[int(rng.integers(0, len(families)))]
            gold = int(members[int(rng.integers(0, len(members)))])
            mention_surface = surface
        else:
            gold = int(linkable[int(rng.integers(0, len(linkable)))])
            mention_surface = generate_variant(
                kb.node_name(gold), kind, rng, synonyms=kb.node_aliases(gold)
            )
            if mention_surface is None:
                mention_surface = generate_variant(kb.node_name(gold), VariantKind.TYPO, rng)
            if mention_surface is None:
                continue

        neighbors = kb.neighbors(gold)
        if len(neighbors) < profile.context_mentions_min:
            continue
        want = max(profile.context_mentions_min, int(rng.poisson(profile.context_mentions_mean)))
        take = min(want, len(neighbors))
        context = rng.choice(neighbors, size=take, replace=False).astype(int).tolist()

        # Context surfaces: mostly canonical, sometimes a stored alias.
        context_surfaces: List[str] = []
        for c in context:
            aliases = kb.node_aliases(c)
            if aliases and rng.random() < 0.2:
                context_surfaces.append(str(rng.choice(list(aliases))))
            else:
                context_surfaces.append(kb.node_name(c))

        # Mention order in the sentence: ambiguous mention at a random slot.
        surfaces = list(context_surfaces)
        slot = int(rng.integers(0, len(surfaces) + 1))
        surfaces.insert(slot, mention_surface)
        node_order: List[Optional[int]] = list(context)
        node_order.insert(slot, None)  # None marks the ambiguous mention

        text, spans = compose_snippet_text(surfaces, rng)
        annotations: List[MentionAnnotation] = []
        for (start, end), surf, node in zip(spans, surfaces, node_order):
            if node is None:
                annotations.append(
                    MentionAnnotation(
                        surf, start, end, kb.node_type_name(gold), mint_cui(gold)
                    )
                )
            else:
                annotations.append(
                    MentionAnnotation(
                        surf, start, end, kb.node_type_name(node), mint_cui(node)
                    )
                )
        snippets.append(Snippet(text=text, mentions=annotations, ambiguous_index=slot))
    return snippets


def synthesize_dataset(
    profile: DatasetProfile,
    scale: float = 1.0,
    split: Optional[Tuple[float, float, float]] = None,
    split_counts: Optional[Tuple[int, int, int]] = None,
) -> EDDataset:
    """Full dataset synthesis: KB + snippets + splits.

    ``split`` gives (train, val, test) fractions (default the paper's
    70/15/15); ``split_counts`` pins absolute counts (the paper fixes
    NCBI at 500/100/100 abstracts).
    """
    profile = profile.scaled(scale)
    rng = np.random.default_rng(profile.seed)
    kb = synthesize_kb(profile, rng)
    snippets = synthesize_snippets(kb, profile, rng)

    n = len(snippets)
    order = rng.permutation(n).tolist()
    if split_counts is not None:
        n_train, n_val, n_test = split_counts
        total = n_train + n_val + n_test
        if total > n:
            # Scale the pinned counts down proportionally.
            ratio = n / total
            n_train = max(int(n_train * ratio), 1)
            n_val = max(int(n_val * ratio), 1)
            n_test = max(n - n_train - n_val, 1)
    else:
        fractions = split or (0.70, 0.15, 0.15)
        n_train = int(n * fractions[0])
        n_val = int(n * fractions[1])
        n_test = n - n_train - n_val
    train = order[:n_train]
    val = order[n_train : n_train + n_val]
    test = order[n_train + n_val : n_train + n_val + n_test]
    return EDDataset(
        name=profile.name,
        kb=kb,
        snippets=snippets,
        train_indices=train,
        val_indices=val,
        test_indices=test,
        profile=profile,
    )
