"""Synthetic stand-ins for the five evaluation datasets of Section 4.1
(see DESIGN.md §2 for the substitution rationale).
"""

from .registry import (  # noqa: F401
    DATASET_NAMES,
    PROFILES,
    SPLIT_COUNTS,
    biocdr_schema,
    default_scale,
    load_dataset,
    mdx_schema,
    mimic_schema,
    ncbi_schema,
    share_schema,
)
from .synthesis import (  # noqa: F401
    DatasetProfile,
    EDDataset,
    compose_snippet_text,
    synthesize_dataset,
    synthesize_kb,
    synthesize_snippets,
)
from .vocabulary import NameFactory, synonyms_for  # noqa: F401

__all__ = [
    "DatasetProfile",
    "EDDataset",
    "synthesize_dataset",
    "synthesize_kb",
    "synthesize_snippets",
    "compose_snippet_text",
    "NameFactory",
    "synonyms_for",
    "load_dataset",
    "default_scale",
    "DATASET_NAMES",
    "PROFILES",
    "SPLIT_COUNTS",
    "mdx_schema",
    "mimic_schema",
    "ncbi_schema",
    "share_schema",
    "biocdr_schema",
]
