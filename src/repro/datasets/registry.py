"""The five evaluation datasets (Section 4.1, Table 2) as synthetic
profiles.

Table 2 reference statistics:

=========  =======  =======
Dataset    # Nodes  # Edges
=========  =======  =======
MDX         35,028   74,621
MIMIC-III   22,642  284,542
NCBI           753    1,845
ShARe        1,719   12,731
Bio CDR      1,082    2,857
=========  =======  =======

Profiles encode each dataset's character as the paper describes it:
MDX — large curated drug KB with rich types and heavy editorial
abbreviation; MIMIC-III — dense clinical records with short snippets;
NCBI — small disease corpus, simple graph; ShARe — clinical notes with
disorder mentions, dense for its size; Bio CDR — chemical-disease
relations, simple and clean.

``load_dataset`` honours ``REPRO_SCALE`` (default 0.08) so the pure-numpy
training budget stays tractable; ``scale=1.0`` regenerates the full
Table 2 sizes.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..graph.schema import GraphSchema, Relation, extended_medical_schema
from ..text.variants import VariantKind
from .synthesis import DatasetProfile, EDDataset, synthesize_dataset

DEFAULT_SCALE_ENV = "REPRO_SCALE"
DEFAULT_SCALE = 0.08


# ---------------------------------------------------------------------------
# Per-dataset schemas
# ---------------------------------------------------------------------------
def mdx_schema() -> GraphSchema:
    return extended_medical_schema()


def mimic_schema() -> GraphSchema:
    node_types = ["Disease", "Drug", "Symptom", "LabTest", "Procedure", "Finding"]
    relations = [
        Relation("TREAT", "Drug", "Disease"),
        Relation("CAUSE", "Drug", "Finding"),
        Relation("PRESENTS", "Disease", "Symptom"),
        Relation("INDICATE", "LabTest", "Disease"),
        Relation("MEASURES", "LabTest", "Finding"),
        Relation("UNDERGOES", "Disease", "Procedure"),
        Relation("REVEALS", "Procedure", "Finding"),
        Relation("COMPLICATES", "Disease", "Disease"),
    ]
    return GraphSchema(node_types, relations)


def ncbi_schema() -> GraphSchema:
    node_types = ["Disease", "Finding", "Symptom"]
    relations = [
        Relation("HAS", "Disease", "Finding"),
        Relation("PRESENTS", "Disease", "Symptom"),
        Relation("COMPLICATES", "Disease", "Disease"),
    ]
    return GraphSchema(node_types, relations)


def share_schema() -> GraphSchema:
    node_types = ["Disorder", "Finding", "Procedure", "AnatomicalSite"]
    relations = [
        Relation("HAS", "Disorder", "Finding"),
        Relation("LOCATED_IN", "Disorder", "AnatomicalSite"),
        Relation("DIAGNOSED_BY", "Disorder", "Procedure"),
        Relation("INVOLVES", "Procedure", "AnatomicalSite"),
    ]
    return GraphSchema(node_types, relations)


def biocdr_schema() -> GraphSchema:
    node_types = ["Chemical", "Disease", "Finding"]
    relations = [
        Relation("CAUSE", "Chemical", "Disease"),
        Relation("TREAT", "Chemical", "Disease"),
        Relation("HAS", "Disease", "Finding"),
    ]
    return GraphSchema(node_types, relations)


# ---------------------------------------------------------------------------
# Profiles (Table 2 sizes at scale 1.0)
# ---------------------------------------------------------------------------
PROFILES: Dict[str, DatasetProfile] = {
    "MDX": DatasetProfile(
        name="MDX",
        schema_factory=mdx_schema,
        num_nodes=35_028,
        num_edges=74_621,
        num_snippets=600,
        type_mix={
            "Drug": 0.22,
            "Disease": 0.20,
            "AdverseEffect": 0.14,
            "Symptom": 0.12,
            "Finding": 0.18,
            "Procedure": 0.07,
            "LabTest": 0.07,
        },
        context_mentions_mean=3.5,
        context_mentions_min=1,
        ambiguous_kinds={
            VariantKind.ACRONYM: 0.45,
            VariantKind.SYNONYM: 0.15,
            VariantKind.ABBREVIATION: 0.15,
            VariantKind.TYPO: 0.10,
            VariantKind.SIMPLIFICATION: 0.15,
        },
        alias_rate=0.35,
        hub_exponent=0.8,
        sibling_rate=0.25,
        seed=11,
    ),
    "MIMIC-III": DatasetProfile(
        name="MIMIC-III",
        schema_factory=mimic_schema,
        num_nodes=22_642,
        num_edges=284_542,
        num_snippets=600,
        type_mix={
            "Disease": 0.30,
            "Drug": 0.20,
            "Symptom": 0.15,
            "LabTest": 0.12,
            "Procedure": 0.08,
            "Finding": 0.15,
        },
        context_mentions_mean=1.6,  # short clinical snippets
        context_mentions_min=1,
        ambiguous_kinds={
            VariantKind.ACRONYM: 0.45,
            VariantKind.SYNONYM: 0.10,
            VariantKind.ABBREVIATION: 0.20,
            VariantKind.TYPO: 0.15,
            VariantKind.SIMPLIFICATION: 0.10,
        },
        alias_rate=0.25,
        hub_exponent=1.1,  # dense hubs
        sibling_rate=0.35,  # many highly similar nodes
        seed=13,
    ),
    "NCBI": DatasetProfile(
        name="NCBI",
        schema_factory=ncbi_schema,
        num_nodes=753,
        num_edges=1_845,
        num_snippets=700,
        type_mix={"Disease": 0.60, "Finding": 0.25, "Symptom": 0.15},
        context_mentions_mean=3.0,
        context_mentions_min=1,
        ambiguous_kinds={
            VariantKind.ACRONYM: 0.25,
            VariantKind.SYNONYM: 0.30,
            VariantKind.ABBREVIATION: 0.15,
            VariantKind.TYPO: 0.15,
            VariantKind.SIMPLIFICATION: 0.15,
        },
        alias_rate=0.40,
        hub_exponent=0.7,
        sibling_rate=0.25,
        seed=17,
    ),
    "ShARe": DatasetProfile(
        name="ShARe",
        schema_factory=share_schema,
        num_nodes=1_719,
        num_edges=12_731,
        num_snippets=433,
        type_mix={
            "Disorder": 0.50,
            "Finding": 0.25,
            "Procedure": 0.15,
            "AnatomicalSite": 0.10,
        },
        context_mentions_mean=2.5,
        context_mentions_min=1,
        ambiguous_kinds={
            VariantKind.ACRONYM: 0.40,
            VariantKind.SYNONYM: 0.15,
            VariantKind.ABBREVIATION: 0.20,
            VariantKind.TYPO: 0.10,
            VariantKind.SIMPLIFICATION: 0.15,
        },
        alias_rate=0.30,
        hub_exponent=1.0,
        sibling_rate=0.20,
        seed=19,
    ),
    "BioCDR": DatasetProfile(
        name="BioCDR",
        schema_factory=biocdr_schema,
        num_nodes=1_082,
        num_edges=2_857,
        num_snippets=1_500,
        type_mix={"Chemical": 0.40, "Disease": 0.40, "Finding": 0.20},
        context_mentions_mean=3.0,
        context_mentions_min=1,
        ambiguous_kinds={
            VariantKind.ACRONYM: 0.30,
            VariantKind.SYNONYM: 0.25,
            VariantKind.ABBREVIATION: 0.15,
            VariantKind.TYPO: 0.15,
            VariantKind.SIMPLIFICATION: 0.15,
        },
        alias_rate=0.35,
        hub_exponent=0.7,
        sibling_rate=0.12,
        seed=23,
    ),
}

DATASET_NAMES: List[str] = list(PROFILES)

#: per-dataset fixed split counts (Section 4.1); None = 70/15/15
SPLIT_COUNTS: Dict[str, Optional[Tuple[int, int, int]]] = {
    "MDX": None,
    "MIMIC-III": None,
    "NCBI": (500, 100, 100),
    "ShARe": None,
    "BioCDR": (800, 200, 500),
}

#: minimum scale applied when the caller does not pin one explicitly —
#: the three small KBs are cheap enough to run near full size, which
#: keeps their evaluation stable.
SCALE_FLOORS: Dict[str, float] = {
    "MDX": 0.0,
    "MIMIC-III": 0.0,
    "NCBI": 0.5,
    "ShARe": 0.4,
    "BioCDR": 0.3,
}

_CACHE: Dict[Tuple[str, float], EDDataset] = {}


def default_scale() -> float:
    value = os.environ.get(DEFAULT_SCALE_ENV)
    if value is None:
        return DEFAULT_SCALE
    scale = float(value)
    if not 0 < scale <= 1.0:
        raise ValueError(f"{DEFAULT_SCALE_ENV} must be in (0, 1], got {scale}")
    return scale


def load_dataset(name: str, scale: Optional[float] = None, use_cache: bool = True) -> EDDataset:
    """Synthesise (or fetch cached) one of the five evaluation datasets."""
    if name not in PROFILES:
        raise KeyError(f"unknown dataset {name!r}; options: {DATASET_NAMES}")
    if scale is None:
        scale = min(max(default_scale(), SCALE_FLOORS[name]), 1.0)
    key = (name, scale)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    profile = PROFILES[name]
    split_counts = SPLIT_COUNTS[name]
    if split_counts is not None and scale != 1.0:
        split_counts = tuple(max(int(c * scale), 10) for c in split_counts)
    dataset = synthesize_dataset(profile, scale=scale, split_counts=split_counts)
    if use_cache:
        _CACHE[key] = dataset
    return dataset
