"""The public API: one front door for construction, training, and serving.

* :class:`Linker` — the facade: ``from_config`` / ``fit`` / ``save`` /
  ``load`` / ``serve``;
* :class:`LinkerConfig` — frozen, schema-versioned declarative config
  with an exact JSON round-trip;
* the component registries (:data:`CANDIDATE_GENERATORS`, :data:`NERS`,
  :data:`EMBEDDERS`, :data:`ENCODERS`) and their ``register_*``
  decorators, so new generators/recognisers/embedders/GNN variants are a
  registry entry instead of a constructor edit.

See ``repro config dump`` for a starting config and
``examples/serving_quickstart.py`` for the end-to-end flow.
"""

from ..retrieval import RetrievalConfig  # noqa: F401  (the config's retrieval section)
from .config import CONFIG_SCHEMA_VERSION, LinkerConfig  # noqa: F401
from .linker import LINKER_CONFIG_FILE, Linker  # noqa: F401
from .registry import (  # noqa: F401
    CANDIDATE_GENERATORS,
    EMBEDDERS,
    ENCODERS,
    NERS,
    CandidateGeneratorProtocol,
    MentionExtractorProtocol,
    Registry,
    TextEmbedderProtocol,
    register_candidate_generator,
    register_embedder,
    register_encoder,
    register_ner,
)

__all__ = [
    "Linker",
    "LinkerConfig",
    "RetrievalConfig",
    "CONFIG_SCHEMA_VERSION",
    "LINKER_CONFIG_FILE",
    "Registry",
    "CANDIDATE_GENERATORS",
    "NERS",
    "EMBEDDERS",
    "ENCODERS",
    "register_candidate_generator",
    "register_ner",
    "register_embedder",
    "register_encoder",
    "CandidateGeneratorProtocol",
    "MentionExtractorProtocol",
    "TextEmbedderProtocol",
]
