"""The front door: a composable linker facade over the ED-GNN engine.

``Linker`` assembles the pipeline from a declarative
:class:`~repro.api.LinkerConfig` (components resolved through the
:mod:`repro.api.registry` tables), trains it, persists it as a
*self-describing* checkpoint (the standard pipeline checkpoint plus a
``linker.json`` carrying the full config), and hands out ready serving
frontends:

    cfg = LinkerConfig(model=ModelConfig(variant="rgcn"))
    linker = Linker.from_config(cfg, kb)
    linker.fit(train, val, test)
    linker.save("ckpt/")                      # later: Linker.load("ckpt/")
    service = linker.serve(shards=4)          # LinkingService
    async_service = linker.serve(async_=True) # AsyncLinkingService

Everything the facade produces is bit-identical to driving
:class:`~repro.core.pipeline.EDPipeline` directly — the facade only owns
construction and wiring, never the math.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import replace
from functools import partial
from typing import Optional, Sequence

from ..core.pipeline import EDPipeline, Prediction
from ..core.serialization import (
    load_pipeline,
    model_config_to_dict,
    save_pipeline,
)
from ..core.trainer import TrainResult
from ..graph.hetero import HeteroGraph
from ..graph.io import load_graph
from ..text.corpus import Snippet
from .config import LinkerConfig
from .registry import CANDIDATE_GENERATORS, EMBEDDERS, NERS

__all__ = ["Linker", "LINKER_CONFIG_FILE"]

LINKER_CONFIG_FILE = "linker.json"


class Linker:
    """Facade over a (possibly trained) :class:`EDPipeline`.

    Build through :meth:`from_config` or :meth:`load`; the raw engine
    stays reachable as :attr:`pipeline` for internals the facade does not
    wrap (the explainer, the trainer, staged scoring).
    """

    def __init__(self, pipeline: EDPipeline, config: Optional[LinkerConfig] = None):
        self.pipeline = pipeline
        self._config = config if config is not None else self._infer_config(pipeline)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: LinkerConfig, kb: HeteroGraph) -> "Linker":
        """Assemble the pipeline: resolve the named components from the
        registries, bind their kwargs, and hand the engine deep copies of
        the nested configs (the engine mutates them — e.g. MAGNN metapath
        selection — and the declarative config must stay declarative)."""
        config.validate()
        embedder_kwargs = dict(config.embedder_kwargs)
        embedder_kwargs.setdefault("dim", config.model.feature_dim)
        embedder = EMBEDDERS.get(config.embedder)(**embedder_kwargs)
        generator_factory = CANDIDATE_GENERATORS.get(config.candidate_generator)
        generator_kwargs = dict(config.candidate_generator_kwargs)
        if getattr(generator_factory, "consumes_retrieval_config", False):
            # Only retrieval-aware factories (the "indexed" generator) see
            # the retrieval section; plain ones keep their old signature.
            generator_kwargs.setdefault("retrieval", config.retrieval)
        generator = partial(generator_factory, **generator_kwargs)
        ner = partial(NERS.get(config.ner), **config.ner_kwargs)
        pipeline = EDPipeline(
            kb,
            model_config=copy.deepcopy(config.model),
            train_config=copy.deepcopy(config.train),
            augment_query_graphs=config.augment_query_graphs,
            embedder=embedder,
            candidate_generator=generator,
            ner=ner,
        )
        return cls(pipeline, config)

    @staticmethod
    def _infer_config(pipeline: EDPipeline) -> LinkerConfig:
        """Best-effort config for a pipeline built outside the facade
        (legacy checkpoints, direct ``EDPipeline(...)`` construction)."""
        live = pipeline.candidate_generator
        name = getattr(live, "name", None)
        if name not in CANDIDATE_GENERATORS:
            name = "fuzzy" if pipeline.fuzzy_candidates else "exact"
        extra = {}
        retrieval = getattr(live, "retrieval_config", None)
        if retrieval is not None:
            extra["retrieval"] = retrieval
        return LinkerConfig(
            model=pipeline.model_config,
            train=pipeline.train_config,
            augment_query_graphs=pipeline.augment,
            candidate_generator=name,
            **extra,
            embedder_kwargs={
                "ngram_range": list(pipeline.embedder.ngram_range),
                "use_words": pipeline.embedder.use_words,
                "seed": pipeline.embedder.seed,
            },
        )

    @property
    def config(self) -> LinkerConfig:
        """The declarative config, with nested sections reflecting the
        *live* engine state (metapath selection happens at construction,
        so the saved config reconstructs the exact same model)."""
        return replace(
            self._config,
            model=self.pipeline.model_config,
            train=self.pipeline.train_config,
        )

    def use_candidate_generator(self, name: str, retrieval=None, **kwargs) -> "Linker":
        """Swap the pipeline's candidate-generation stage in place.

        ``name`` is a :data:`~repro.api.CANDIDATE_GENERATORS` entry;
        ``retrieval`` (a :class:`~repro.retrieval.RetrievalConfig` or its
        dict form) replaces the config's retrieval section — the hook
        ``repro serve --candidates indexed`` uses to re-point a loaded
        checkpoint at a packed index bundle.  Returns ``self`` so the
        call chains into :meth:`serve`.
        """
        factory = CANDIDATE_GENERATORS.get(name)
        changes: dict = {
            "candidate_generator": name,
            "candidate_generator_kwargs": dict(kwargs),
        }
        if retrieval is not None:
            if isinstance(retrieval, dict):
                from ..retrieval import RetrievalConfig

                retrieval = RetrievalConfig(**retrieval)
            changes["retrieval"] = retrieval
        config = replace(self._config, **changes)
        call_kwargs = dict(kwargs)
        if getattr(factory, "consumes_retrieval_config", False):
            call_kwargs.setdefault("retrieval", config.retrieval)
        self.pipeline.candidate_generator = factory(
            self.pipeline.kb,
            index=self.pipeline.index,
            embedder=self.pipeline.embedder,
            **call_kwargs,
        )
        self._config = config
        return self

    # ------------------------------------------------------------------
    # Engine delegation
    # ------------------------------------------------------------------
    @property
    def kb(self) -> HeteroGraph:
        return self.pipeline.kb

    @property
    def model(self):
        return self.pipeline.model

    def fit(
        self,
        train_snippets: Sequence[Snippet],
        val_snippets: Sequence[Snippet],
        test_snippets: Sequence[Snippet],
    ) -> TrainResult:
        return self.pipeline.fit(train_snippets, val_snippets, test_snippets)

    def disambiguate(
        self,
        text: str,
        ambiguous_surface: Optional[str] = None,
        top_k: int = 5,
        restrict_to_candidates: bool = True,
    ) -> Prediction:
        return self.pipeline.disambiguate(
            text, ambiguous_surface, top_k=top_k,
            restrict_to_candidates=restrict_to_candidates,
        )

    def disambiguate_snippet(
        self,
        snippet: Snippet,
        top_k: int = 5,
        restrict_to_candidates: bool = True,
    ) -> Prediction:
        return self.pipeline.disambiguate_snippet(snippet, top_k, restrict_to_candidates)

    def snippet_from_text(self, text: str, ambiguous_surface: Optional[str] = None) -> Snippet:
        return self.pipeline.snippet_from_text(text, ambiguous_surface)

    def entity_name(self, entity_id: int) -> str:
        return self.pipeline.entity_name(entity_id)

    # ------------------------------------------------------------------
    # Persistence (self-describing checkpoints)
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Write the standard pipeline checkpoint plus ``linker.json``
        (the full config, service section included), so :meth:`load`
        needs nothing but the directory."""
        save_pipeline(self.pipeline, directory)
        with open(os.path.join(directory, LINKER_CONFIG_FILE), "w", encoding="utf-8") as fh:
            fh.write(self.config.to_json())

    @classmethod
    def load(cls, directory: str) -> "Linker":
        """Rebuild from a checkpoint directory.

        A facade checkpoint reconstructs through :meth:`from_config` (the
        registries resolve the same components that were saved); a legacy
        ``save_pipeline`` checkpoint — no ``linker.json`` — loads through
        :func:`load_pipeline` and infers its config.  Predictions are
        identical either way.
        """
        config_path = os.path.join(directory, LINKER_CONFIG_FILE)
        if not os.path.exists(config_path):
            return cls(load_pipeline(directory))
        with open(config_path, encoding="utf-8") as fh:
            config = LinkerConfig.from_json(fh.read())
        # Consistency guard: linker.json and config.json describe one
        # checkpoint; the model weights are keyed by the model section.
        with open(os.path.join(directory, "config.json"), encoding="utf-8") as fh:
            legacy = json.load(fh)
        if legacy.get("model") != model_config_to_dict(config.model):
            raise ValueError(
                f"{LINKER_CONFIG_FILE} and config.json disagree on the model "
                f"section in {directory}; the checkpoint is corrupt"
            )
        kb = load_graph(os.path.join(directory, "kb.json"))
        linker = cls.from_config(config, kb)

        from ..autograd.serialization import load_state

        load_state(linker.pipeline.model, os.path.join(directory, "weights.npz"))
        return linker

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        async_: bool = False,
        shards: Optional[int] = None,
        shard_backend: Optional[str] = None,
        storage=None,
        admission=None,
        deadline_ms: Optional[float] = None,
        http_port: Optional[int] = None,
        http_host: Optional[str] = None,
        **overrides,
    ):
        """A ready serving frontend over this linker.

        Returns a :class:`~repro.serving.LinkingService` built from the
        config's service section (``shards``, ``shard_backend`` and any
        :class:`~repro.serving.ServiceConfig` field overriding it), or —
        with ``async_=True`` — an :class:`~repro.serving.AsyncLinkingService`
        wrapping one under the ``deadline_ms`` budget (default 25 ms).
        ``shard_backend="process"`` fans candidate scoring out to
        long-lived worker processes (one GIL per shard) instead of
        threads — ``linker.serve(shards=4, shard_backend="process")``.

        ``storage`` picks where the KB matrices live
        (:class:`~repro.storage.StorageConfig`, its dict form, or just a
        backend name) — ``linker.serve(storage="mmap")`` serves both
        matrices as read-only memory maps of a packed bundle, and
        ``storage=StorageConfig(kb_store="mmap", bundle_path=...)``
        reuses a ``repro kb pack`` bundle so startup skips the embedding
        forward entirely.

        ``admission`` sets the overload policy of the async scheduler
        (:class:`~repro.serving.AdmissionConfig`, its dict form, or just
        a shed-policy name) — ``linker.serve(async_=True,
        admission="depth")`` bounds the queue and sheds the overflow as
        429s, ``admission=AdmissionConfig(shed_policy="wait",
        adaptive=True)`` adds estimated-wait shedding and the AIMD
        deadline/batch tuner.  The config's ``service.admission``
        section (default shed policy from ``$REPRO_ADMISSION``) applies
        when omitted.

        ``http_port`` turns the frontend into a *started*
        :class:`~repro.serving.LinkingHTTPServer` over the async service
        (``http_port=0`` binds an ephemeral port, read back from
        ``server.port``).  The config's ``service.http`` section supplies
        the defaults; ``http_host`` / ``deadline_ms`` override it:

            server = linker.serve(http_port=0)
            with LinkerClient(port=server.port) as client:
                client.link(text="...")
            server.close()

        Async services and HTTP servers are context managers; close them
        to drain the queue.
        """
        from ..serving import AsyncLinkingService, HttpConfig, LinkingHTTPServer, LinkingService

        service_config = self._config.service
        if shards is not None:
            overrides["num_shards"] = shards
        if shard_backend is not None:
            overrides["shard_backend"] = shard_backend
        if storage is not None:
            from ..storage import StorageConfig

            if isinstance(storage, str):
                storage = StorageConfig(kb_store=storage)
            elif isinstance(storage, dict):
                storage = StorageConfig(**storage)
            elif not isinstance(storage, StorageConfig):
                raise ValueError(
                    "storage must be a StorageConfig, its dict form, "
                    "or a backend name"
                )
            overrides["storage"] = storage
        if admission is not None:
            from ..serving import AdmissionConfig

            if isinstance(admission, str):
                admission = AdmissionConfig(shed_policy=admission)
            elif isinstance(admission, dict):
                admission = AdmissionConfig(**admission)
            elif not isinstance(admission, AdmissionConfig):
                raise ValueError(
                    "admission must be an AdmissionConfig, its dict form, "
                    "or a shed-policy name"
                )
            overrides["admission"] = admission
        if overrides:
            service_config = replace(service_config, **overrides)
        service = LinkingService(self.pipeline, service_config)
        if http_port is not None:
            base = service_config.http or HttpConfig()
            http_config = replace(
                base,
                port=http_port,
                host=http_host if http_host is not None else base.host,
                deadline_ms=deadline_ms if deadline_ms is not None else base.deadline_ms,
            )
            async_service = AsyncLinkingService(
                service, deadline_ms=http_config.deadline_ms
            )
            return LinkingHTTPServer(async_service, http_config).start()
        if async_:
            return AsyncLinkingService(
                service, deadline_ms=25.0 if deadline_ms is None else deadline_ms
            )
        return service
