"""Declarative construction config for the :class:`~repro.api.Linker`.

One frozen dataclass describes a full linker: the nested
:class:`~repro.core.model.ModelConfig` /
:class:`~repro.core.trainer.TrainConfig` /
:class:`~repro.serving.ServiceConfig`, plus the *names* of the pluggable
components (candidate generator, NER, embedder — see
:mod:`repro.api.registry`) and their kwargs.  The ``retrieval`` section
(:class:`~repro.retrieval.RetrievalConfig`) shapes the sublinear
shortlist backends the ``"indexed"`` candidate generator uses; the
generator name itself defaults from ``REPRO_CANDIDATES``.  The service
section covers
the full serving surface, shard execution backend included
(``ServiceConfig(num_shards=4, shard_backend="process")`` declares a
process-worker sharded service) as well as the HTTP front door
(``ServiceConfig(http=HttpConfig(port=8080))`` declares the server
``Linker.serve(http_port=...)`` starts).  ``to_json``/``from_json`` round-trip
exactly, the payload is schema-versioned, and parsing is strict: unknown
keys, unknown component names, unknown backend names, and unsupported
versions are rejected rather than ignored — a config that parses is a
config that constructs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from ..core.serialization import (
    ensure_known_keys,
    model_config_from_dict,
    model_config_to_dict,
    train_config_from_dict,
    train_config_to_dict,
)
from ..core.model import ModelConfig
from ..core.trainer import TrainConfig
from ..retrieval.base import RetrievalConfig, default_candidate_generator
from ..serving.service import ServiceConfig
from .registry import CANDIDATE_GENERATORS, EMBEDDERS, ENCODERS, NERS

__all__ = ["LinkerConfig", "CONFIG_SCHEMA_VERSION"]

#: bump when the JSON layout changes incompatibly
CONFIG_SCHEMA_VERSION = 1

_TOP_LEVEL_KEYS = frozenset(
    {
        "schema_version",
        "model",
        "train",
        "service",
        "retrieval",
        "augment_query_graphs",
        "candidate_generator",
        "candidate_generator_kwargs",
        "ner",
        "ner_kwargs",
        "embedder",
        "embedder_kwargs",
    }
)


def _nested_from_dict(kind: str, payload: dict, builder):
    """Build a nested config dataclass, converting the ``TypeError`` an
    unexpected key raises (or the ``KeyError`` a missing one raises) into
    a sited ``ValueError``."""
    if not isinstance(payload, dict):
        raise ValueError(f"LinkerConfig {kind!r} section must be an object")
    try:
        return builder(payload)
    except TypeError as exc:
        raise ValueError(f"bad {kind} section in LinkerConfig: {exc}") from None
    except KeyError as exc:
        raise ValueError(
            f"bad {kind} section in LinkerConfig: missing key {exc}"
        ) from None


@dataclass(frozen=True)
class LinkerConfig:
    """Everything needed to construct (and reconstruct) a Linker."""

    model: ModelConfig = field(default_factory=ModelConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    retrieval: RetrievalConfig = field(default_factory=RetrievalConfig)
    augment_query_graphs: bool = True
    # Defaults from REPRO_CANDIDATES so CI can run the whole suite under
    # a different generator (mirrors REPRO_KB_STORE / REPRO_SHARD_BACKEND).
    candidate_generator: str = field(default_factory=default_candidate_generator)
    candidate_generator_kwargs: dict = field(default_factory=dict)
    ner: str = "dictionary"
    ner_kwargs: dict = field(default_factory=dict)
    embedder: str = "hashing-ngram"
    embedder_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check component names against the live registries.

        Raises ``ValueError`` naming the bad component and the options.
        """
        for registry, name in (
            (CANDIDATE_GENERATORS, self.candidate_generator),
            (NERS, self.ner),
            (EMBEDDERS, self.embedder),
            (ENCODERS, self.model.variant),
        ):
            if name not in registry:
                raise ValueError(
                    f"unknown {registry.kind} {name!r}; options: {registry.names()}"
                )
        if not isinstance(self.retrieval, RetrievalConfig):
            raise ValueError(
                "LinkerConfig.retrieval must be a RetrievalConfig, got "
                f"{type(self.retrieval).__name__}"
            )
        # Baseline systems live in the encoder table so `repro evaluate`
        # dispatches through one registry, but they are pair classifiers
        # a Linker cannot construct — a config that parses must construct.
        if getattr(ENCODERS.get(self.model.variant), "baseline_cls", None) is not None:
            raise ValueError(
                f"{self.model.variant!r} is a baseline system, not a GNN "
                f"encoder; train it through repro.eval.run_system / "
                f"`repro evaluate --system {self.model.variant}`"
            )

    def with_overrides(self, **changes) -> "LinkerConfig":
        """A copy with top-level fields replaced (frozen-safe)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": CONFIG_SCHEMA_VERSION,
            "model": model_config_to_dict(self.model),
            "train": train_config_to_dict(self.train),
            "service": asdict(self.service),
            "retrieval": self.retrieval.to_dict(),
            "augment_query_graphs": self.augment_query_graphs,
            "candidate_generator": self.candidate_generator,
            "candidate_generator_kwargs": dict(self.candidate_generator_kwargs),
            "ner": self.ner,
            "ner_kwargs": dict(self.ner_kwargs),
            "embedder": self.embedder,
            "embedder_kwargs": dict(self.embedder_kwargs),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "LinkerConfig":
        if not isinstance(payload, dict):
            raise ValueError("LinkerConfig payload must be a JSON object")
        version = payload.get("schema_version")
        if version != CONFIG_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported LinkerConfig schema_version {version!r} "
                f"(expected {CONFIG_SCHEMA_VERSION})"
            )
        ensure_known_keys(payload, _TOP_LEVEL_KEYS, "LinkerConfig")
        kwargs: dict = {}
        if "model" in payload:
            kwargs["model"] = _nested_from_dict("model", payload["model"], model_config_from_dict)
        if "train" in payload:
            kwargs["train"] = _nested_from_dict("train", payload["train"], train_config_from_dict)
        if "service" in payload:
            kwargs["service"] = _nested_from_dict(
                "service", payload["service"], lambda p: ServiceConfig(**p)
            )
        if "retrieval" in payload:
            kwargs["retrieval"] = _nested_from_dict(
                "retrieval", payload["retrieval"], lambda p: RetrievalConfig(**p)
            )
        for key in (
            "augment_query_graphs",
            "candidate_generator",
            "candidate_generator_kwargs",
            "ner",
            "ner_kwargs",
            "embedder",
            "embedder_kwargs",
        ):
            if key not in payload:
                continue
            value = payload[key]
            # Parse strictly: a config that parses must construct.
            if key.endswith("_kwargs") and not isinstance(value, dict):
                raise ValueError(f"LinkerConfig {key!r} must be an object")
            if key in ("candidate_generator", "ner", "embedder") and not isinstance(value, str):
                raise ValueError(f"LinkerConfig {key!r} must be a component name")
            kwargs[key] = value
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "LinkerConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"LinkerConfig is not valid JSON: {exc}") from None
        return cls.from_dict(payload)
