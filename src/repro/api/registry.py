"""Typed component registries behind the :class:`~repro.api.Linker` facade.

The ED-GNN architecture is explicitly modular — candidate generation,
NER, the text embedder, and the GNN encoder are independent stages — so
each stage is a *named* plugin here rather than a constructor flag:

* :data:`CANDIDATE_GENERATORS` — ``"exact"`` (Section 3.1 inverted-index
  lookup), ``"fuzzy"`` (approximate lexical retrieval on index misses)
  and ``"indexed"`` (the same retrieval through a sublinear shortlist
  index; see :mod:`repro.retrieval`);
* :data:`NERS` — ``"dictionary"`` (the simulated-BioBERT greedy
  longest-match recogniser);
* :data:`EMBEDDERS` — ``"hashing-ngram"`` (the character-n-gram feature
  hasher standing in for BERT initial features);
* :data:`ENCODERS` — a registry *view* over the existing encoder table in
  :mod:`repro.core.model` (GraphSAGE/GAT/RGCN/MAGNN/HAN/HetGNN/GCN), so
  GNN variants registered either way are visible to both
  :class:`~repro.core.model.ModelConfig` and the facade.

Each registry stores a factory with a uniform construction signature
(documented per registry); a :class:`~repro.api.LinkerConfig` names the
component and carries its kwargs, and ``Linker.from_config`` wires the
pieces together.  Registering a duplicate name raises ``ValueError``;
looking up an unknown name raises ``KeyError`` listing the options.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Protocol, runtime_checkable

import numpy as np

from ..core.candidates import ExactCandidateGenerator, FuzzyFallbackCandidateGenerator
from ..core.model import ENCODER_BUILDERS, register_encoder
from ..retrieval.generator import IndexedCandidateGenerator
from ..text.embedder import HashingNgramEmbedder
from ..text.ner import DictionaryNER, Mention

__all__ = [
    "Registry",
    "CANDIDATE_GENERATORS",
    "NERS",
    "EMBEDDERS",
    "ENCODERS",
    "register_candidate_generator",
    "register_ner",
    "register_embedder",
    "register_encoder",
    "CandidateGeneratorProtocol",
    "MentionExtractorProtocol",
    "TextEmbedderProtocol",
]


# ---------------------------------------------------------------------------
# Component protocols (what a plugin must implement)
# ---------------------------------------------------------------------------
@runtime_checkable
class CandidateGeneratorProtocol(Protocol):
    """Candidate-generation stage: surface form -> KB node ids to rank."""

    def candidates_for(
        self,
        surface: str,
        category: Optional[str] = None,
        restrict_to_candidates: bool = True,
    ) -> np.ndarray: ...


@runtime_checkable
class MentionExtractorProtocol(Protocol):
    """NER stage: raw text -> entity mentions with candidate links."""

    def extract(self, text: str) -> List[Mention]: ...


@runtime_checkable
class TextEmbedderProtocol(Protocol):
    """Initial-feature stage: string -> fixed-dimension vector."""

    dim: int

    def embed(self, text: str) -> np.ndarray: ...

    def embed_batch(self, texts) -> np.ndarray: ...


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class Registry:
    """A named table of component factories.

    ``entries`` may be an existing dict to wrap (the encoder registry
    shares :data:`repro.core.model.ENCODER_BUILDERS` so both views stay
    in sync); by default each registry owns its own table.
    """

    def __init__(self, kind: str, entries: Optional[Dict[str, Callable]] = None):
        self.kind = kind
        self._entries: Dict[str, Callable] = entries if entries is not None else {}

    def register(self, name: str, factory: Optional[Callable] = None) -> Callable:
        """Register ``factory`` under ``name``; decorator or direct call.

        Raises ``ValueError`` on a duplicate name — shadowing a component
        silently is how two modules end up fighting over behaviour.
        """

        def _register(fn: Callable) -> Callable:
            if name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._entries[name] = fn
            return fn

        return _register(factory) if factory is not None else _register

    def get(self, name: str) -> Callable:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; options: {self.names()}"
            ) from None

    def names(self) -> tuple:
        return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __getitem__(self, name: str) -> Callable:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self._entries)})"


#: factories called as ``factory(kb, index=..., embedder=..., **kwargs)``
CANDIDATE_GENERATORS = Registry("candidate generator")
#: factories called as ``factory(kb, index=..., **kwargs)``
NERS = Registry("ner")
#: factories called as ``factory(dim=..., **kwargs)``
EMBEDDERS = Registry("embedder")
#: builders called as ``builder(model_config, schema, common)`` — the
#: same table :func:`repro.core.model.build_encoder` dispatches on.
ENCODERS = Registry("encoder", entries=ENCODER_BUILDERS)

register_candidate_generator = CANDIDATE_GENERATORS.register
register_ner = NERS.register
register_embedder = EMBEDDERS.register

register_candidate_generator("exact", ExactCandidateGenerator)
register_candidate_generator("fuzzy", FuzzyFallbackCandidateGenerator)
register_candidate_generator("indexed", IndexedCandidateGenerator)
register_ner("dictionary", DictionaryNER)
register_embedder("hashing-ngram", HashingNgramEmbedder)
