"""Module/Parameter containers, mirroring the slice of ``torch.nn.Module``
that the ED-GNN models need: named parameter traversal, train/eval mode,
and state-dict round trips.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Module:
    """Base class for everything with learnable parameters.

    Subclasses assign :class:`Tensor` objects (with ``requires_grad=True``)
    or other :class:`Module` instances as attributes; those are discovered
    automatically for optimisation and serialisation.
    """

    def __init__(self) -> None:
        self.training = True

    # -- traversal ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, value in vars(self).items():
            if name == "training":
                continue
            path = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{path}.{i}", item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{key}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{path}.{key}", item

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode -----------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # -- grads ----------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state ----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].astype(p.data.dtype).copy()

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of sub-modules."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


class ModuleDict(Module):
    """A string-keyed container of sub-modules."""

    def __init__(self, modules=None):
        super().__init__()
        self.items = dict(modules or {})

    def __getitem__(self, key: str) -> Module:
        return self.items[key]

    def __setitem__(self, key: str, module: Module) -> None:
        self.items[key] = module

    def __contains__(self, key: str) -> bool:
        return key in self.items

    def keys(self):
        return self.items.keys()

    def values(self):
        return self.items.values()
