"""Optimisers.  ED-GNN trains every model with Adam (lr 1e-3, weight decay
1e-3 — Section 4.2); SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor


class Optimizer:
    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with decoupled L2 (PyTorch-style ``weight_decay`` added to the
    gradient, matching the paper's configuration)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most
    ``max_norm``; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
