"""Finite-difference gradient checking for the autograd engine.

Used by the test suite to verify every differentiable primitive against
numerical derivatives, which is the correctness anchor for everything the
GNNs compute.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> None:
    """Assert analytic gradients match central differences for all inputs
    that require grad.  Inputs should be float64 for tight tolerances."""
    out = fn(*inputs)
    for t in inputs:
        t.grad = None
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, i)
        actual = t.grad
        assert actual is not None, f"input {i} got no gradient"
        np.testing.assert_allclose(
            actual,
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
