"""Numpy-backed reverse-mode autodiff — the training substrate that stands
in for PyTorch in this reproduction (see DESIGN.md §2).
"""

from . import functional  # noqa: F401
from .gradcheck import check_gradients, numerical_gradient  # noqa: F401
from .init import (  # noqa: F401
    kaiming_uniform,
    normal_init,
    xavier_normal,
    xavier_uniform,
    zeros_init,
)
from .layers import (  # noqa: F401
    MLP,
    Activation,
    Bilinear,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Sequential,
)
from .module import Module, ModuleDict, ModuleList  # noqa: F401
from .ops import (  # noqa: F401
    concat,
    embedding_lookup,
    gather,
    rows_dot,
    scatter_add,
    scatter_max_data,
    scatter_mean,
    segment_softmax,
    stack,
    where,
)
from .optim import SGD, Adam, Optimizer, clip_grad_norm  # noqa: F401
from .rnn import GRU, GRUCell, SequenceEncoder  # noqa: F401
from .serialization import load_state, save_state, state_allclose  # noqa: F401
from .tensor import (  # noqa: F401
    Tensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    ones,
    tensor,
    zeros,
)

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "ModuleList",
    "ModuleDict",
    "Linear",
    "Embedding",
    "Sequential",
    "Activation",
    "Dropout",
    "MLP",
    "Bilinear",
    "LayerNorm",
    "GRU",
    "GRUCell",
    "SequenceEncoder",
    "Adam",
    "SGD",
    "Optimizer",
    "clip_grad_norm",
    "gather",
    "scatter_add",
    "scatter_mean",
    "scatter_max_data",
    "segment_softmax",
    "concat",
    "stack",
    "where",
    "rows_dot",
    "embedding_lookup",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "normal_init",
    "zeros_init",
    "save_state",
    "load_state",
    "state_allclose",
    "check_gradients",
    "numerical_gradient",
]
