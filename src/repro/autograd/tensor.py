"""Reverse-mode automatic differentiation over numpy arrays.

This module is the substrate that replaces PyTorch in the ED-GNN
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` and records the
operations applied to it on a tape (the ``_parents`` DAG).  Calling
:meth:`Tensor.backward` walks the tape in reverse topological order and
accumulates gradients into every tensor created with ``requires_grad=True``.

Only the operations needed by the GNNs and baselines in this repository are
implemented, but they are implemented completely: broadcasting, reductions,
indexing, gather/scatter message passing, and the usual activations.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


class _GradMode(threading.local):
    """Per-thread tape-recording switch.

    The serving layer's shard workers enter inference mode concurrently;
    a process-global flag would race on the save/restore in ``no_grad``
    and could leave recording off (or on) for unrelated threads.  The
    class attribute is the per-thread default: every new thread starts
    with recording enabled.
    """

    enabled = True


_grad_mode = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording (inference mode) on
    the current thread."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables tape recording on the current
    thread (the inverse of :func:`no_grad`) — needed where parameters
    are *constructed* in a context that may be inference-mode, e.g. a
    shard worker forked from a parent thread inside ``no_grad`` (tensors
    created with recording off silently drop ``requires_grad``)."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = True
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def is_grad_enabled() -> bool:
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum out leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype == np.float16 or np.issubdtype(arr.dtype, np.integer):
        # Keep integers as-is (index tensors); promote half floats.
        if arr.dtype == np.float16:
            arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=None,
        name: str = "",
    ):
        self.data = _as_array(data, dtype=dtype)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            self.data = self.data.astype(np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_mode.enabled
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Tape plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Optional[Callable[[np.ndarray], None]],
    ) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _grad_mode.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, gradient: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``gradient`` defaults to ones (valid for scalar outputs).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient requires a scalar output")
            gradient = np.ones_like(self.data)
        else:
            gradient = _as_array(gradient).astype(self.data.dtype)

        # Topological order over the tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(gradient)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, dtype=self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    if grad.ndim == 0:  # vector @ vector -> scalar
                        other._accumulate(grad * self.data)
                    else:
                        other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split gradient between ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities (primitive where a fused grad is simpler)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable sigmoid.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60))),
            np.exp(np.clip(self.data, -60, 60)) / (1.0 + np.exp(np.clip(self.data, -60, 60))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slope = np.where(self.data > 0, 1.0, negative_slope)
                self._accumulate(grad * slope)

        return Tensor._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        exp_term = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(self.data > 0, self.data, exp_term)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slope = np.where(self.data > 0, 1.0, exp_term + alpha)
                self._accumulate(grad * slope)

        return Tensor._make(out_data, (self,), backward)

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.cos(self.data))

        return Tensor._make(out_data, (self,), backward)

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad * np.sin(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)


def tensor(data: ArrayLike, requires_grad: bool = False, dtype=None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)
