"""Weight initialisation schemes (Glorot/Xavier, Kaiming/He, uniform)."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-bound, bound, size=shape).astype(np.float32)
    return Tensor(data, requires_grad=True)


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    data = (rng.standard_normal(shape) * std).astype(np.float32)
    return Tensor(data, requires_grad=True)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> Tensor:
    """He uniform, appropriate before ReLU non-linearities."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    data = rng.uniform(-bound, bound, size=shape).astype(np.float32)
    return Tensor(data, requires_grad=True)


def zeros_init(shape: tuple) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=True)


def normal_init(shape: tuple, rng: np.random.Generator, std: float = 0.01) -> Tensor:
    return Tensor((rng.standard_normal(shape) * std).astype(np.float32), requires_grad=True)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
