"""Standard trainable layers: Linear, Embedding, MLP, Bilinear, LayerNorm,
and a Sequential container.  These compose into the GNN encoders and the
matching modules of ED-GNN.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .module import Module, ModuleList
from .ops import gather
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((out_features, in_features), rng)
        self.bias = init.zeros_init((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """A learnable lookup table ``[num_embeddings, dim]``."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = init.normal_init((num_embeddings, dim), rng, std=1.0 / np.sqrt(dim))

    def forward(self, ids) -> Tensor:
        return gather(self.weight, ids)


class Sequential(Module):
    def __init__(self, *layers):
        super().__init__()
        self.layers = ModuleList(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Activation(Module):
    """Wraps a functional activation so it can live inside Sequential."""

    def __init__(self, fn: Callable[[Tensor], Tensor]):
        super().__init__()
        self.fn = fn

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)


class Dropout(Module):
    def __init__(self, p: float, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    The paper's matching module option "a multi-layer perceptron with one
    hidden layer" is ``MLP(2 * d, [d], 1, rng)`` applied to concatenated
    pair embeddings.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        dims = [in_features, *hidden, out_features]
        layers: list[Module] = []
        for i, (a, b) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(a, b, rng))
            if i < len(dims) - 2:
                layers.append(Activation(F.relu))
                if dropout > 0:
                    layers.append(Dropout(dropout, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class Bilinear(Module):
    """Log-bilinear pair scorer ``score(a, b) = a^T W b + bias``.

    One of the three matching-module choices in Section 2.2.
    """

    def __init__(self, dim_a: int, dim_b: int, rng: np.random.Generator):
        super().__init__()
        self.weight = init.xavier_uniform((dim_a, dim_b), rng)
        self.bias = init.zeros_init((1,))

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        from .ops import rows_dot

        return rows_dot(a @ self.weight, b) + self.bias


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Tensor(np.ones(dim, dtype=np.float32), requires_grad=True)
        self.beta = Tensor(np.zeros(dim, dtype=np.float32), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) * (x - mu)).mean(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
