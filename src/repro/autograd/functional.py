"""Neural-network functional layer: activations, normalisation, dropout,
and the losses used by ED-GNN and the baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, is_grad_enabled


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return x.leaky_relu(negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return x.elu(alpha)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))  # constant shift
    exp = (x - shift).exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout; identity when not training or when grads are off."""
    if not training or p <= 0.0 or not is_grad_enabled():
        return x
    if rng is None:
        rng = np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return x * Tensor(mask)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    # eps inside the sqrt keeps the backward pass finite for zero rows.
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    pos_weight: float = 1.0,
) -> Tensor:
    """Mean BCE over logits; the Eq. 5 loss is this with targets 1 for the
    positive pairs and 0 for the sampled negatives.

    ``pos_weight`` scales the positive-class term (set it to the
    negatives-per-positive ratio to undo class imbalance).
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    # log(sigmoid(x)) = -softplus(-x); log(1-sigmoid(x)) = -softplus(x)
    pos = softplus(-logits) * Tensor(pos_weight * targets)
    neg = softplus(logits) * Tensor(1.0 - targets)
    return (pos + neg).mean()


def softplus(x: Tensor) -> Tensor:
    """Numerically stable log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|))."""
    out_data = np.maximum(x.data, 0.0) + np.log1p(np.exp(-np.abs(x.data)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))
            x._accumulate(grad * sig)

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, target_ids: np.ndarray) -> Tensor:
    """Mean categorical cross entropy over rows of ``logits``."""
    target_ids = np.asarray(target_ids, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(len(target_ids))
    return -logp[rows, target_ids].mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    diff = prediction - Tensor(np.asarray(target, dtype=prediction.data.dtype))
    return (diff * diff).mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Row-wise cosine similarity of two equally shaped tensors."""
    num = (a * b).sum(axis=axis)
    den = ((a * a).sum(axis=axis).sqrt() * (b * b).sum(axis=axis).sqrt()) + eps
    return num / den
