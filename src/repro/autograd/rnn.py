"""Recurrent cells used by the baseline systems.

NormCo's coherence model is a GRU over the disease mentions of a snippet;
DeepMatcher's attention variant summarises token sequences with a GRU
encoder before soft alignment.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import functional as F
from .layers import Linear
from .module import Module
from .ops import concat, stack
from .tensor import Tensor


class GRUCell(Module):
    """Standard gated recurrent unit cell."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_update = Linear(input_dim + hidden_dim, hidden_dim, rng)
        self.w_reset = Linear(input_dim + hidden_dim, hidden_dim, rng)
        self.w_cand = Linear(input_dim + hidden_dim, hidden_dim, rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = concat([x, h], axis=-1)
        z = F.sigmoid(self.w_update(xh))
        r = F.sigmoid(self.w_reset(xh))
        cand = F.tanh(self.w_cand(concat([x, r * h], axis=-1)))
        return (1.0 - z) * h + z * cand


class GRU(Module):
    """Unidirectional GRU over a ``[batch, time, dim]`` tensor.

    Returns the sequence of hidden states ``[batch, time, hidden]`` and the
    final state ``[batch, hidden]``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, h0: Optional[Tensor] = None):
        batch, time = x.shape[0], x.shape[1]
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_dim), dtype=np.float32))
        states: List[Tensor] = []
        for t in range(time):
            h = self.cell(x[:, t, :], h)
            states.append(h)
        return stack(states, axis=1), h


class SequenceEncoder(Module):
    """GRU encoder that mean-pools hidden states with an attention weighting.

    A compact stand-in for the RNN-with-attention summariser used in
    DeepMatcher's attention model.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.gru = GRU(input_dim, hidden_dim, rng)
        self.attn = Linear(hidden_dim, 1, rng)

    def forward(self, x: Tensor) -> Tensor:
        states, _ = self.gru(x)  # [batch, time, hidden]
        scores = self.attn(states)  # [batch, time, 1]
        weights = F.softmax(scores, axis=1)
        return (states * weights).sum(axis=1)
