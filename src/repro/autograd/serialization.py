"""Model checkpointing: state dicts round-trip through ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module


def save_state(module: Module, path: str) -> None:
    """Serialise a module's parameters to a compressed ``.npz`` file."""
    state = module.state_dict()
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    # Parameter names may contain '.', which numpy preserves as-is.
    np.savez_compressed(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load parameters saved by :func:`save_state` into ``module``."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)


def state_allclose(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray], atol: float = 1e-6) -> bool:
    """True when two state dicts have identical keys and near-equal values."""
    if set(a) != set(b):
        return False
    return all(np.allclose(a[k], b[k], atol=atol) for k in a)
