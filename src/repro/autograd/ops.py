"""Structural differentiable operations: indexing, concatenation, and the
gather/scatter primitives that implement message passing on graphs.

All functions return :class:`~repro.autograd.tensor.Tensor` objects wired
into the autodiff tape.  ``gather`` and ``scatter_add`` are the backbone of
every GNN layer in :mod:`repro.gnn`: a message-passing step is
``gather(h, src) -> transform -> scatter_add(msg, dst, n_nodes)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, _as_array


def _index_array(index) -> np.ndarray:
    idx = index.data if isinstance(index, Tensor) else np.asarray(index)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"index must be integer, got {idx.dtype}")
    return idx


def gather(source: Tensor, index) -> Tensor:
    """Select rows ``source[index]`` along axis 0 (differentiable w.r.t. source)."""
    idx = _index_array(index)
    out_data = source.data[idx]

    def backward(grad: np.ndarray) -> None:
        if source.requires_grad:
            full = np.zeros_like(source.data)
            np.add.at(full, idx, grad)
            source._accumulate(full)

    return Tensor._make(out_data, (source,), backward)


def scatter_add(values: Tensor, index, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets given by ``index``.

    The inverse of :func:`gather`; rows of the output with no incoming index
    are zero.  This is the aggregation half of message passing.
    """
    idx = _index_array(index)
    out_shape = (num_segments,) + values.data.shape[1:]
    out_data = np.zeros(out_shape, dtype=values.data.dtype)
    np.add.at(out_data, idx, values.data)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[idx])

    return Tensor._make(out_data, (values,), backward)


def scatter_mean(values: Tensor, index, num_segments: int) -> Tensor:
    """Mean-pool ``values`` rows per segment; empty segments stay zero."""
    idx = _index_array(index)
    counts = np.bincount(idx, minlength=num_segments).astype(values.data.dtype)
    counts = np.maximum(counts, 1.0)
    summed = scatter_add(values, idx, num_segments)
    denom = counts.reshape((num_segments,) + (1,) * (values.data.ndim - 1))
    return summed / Tensor(denom)


def scatter_max_data(values: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
    """Non-differentiable per-segment max (used as a constant shift in
    segment softmax).  Empty segments get 0."""
    out = np.full((num_segments,) + values.shape[1:], -np.inf, dtype=values.dtype)
    np.maximum.at(out, index, values)
    out[~np.isfinite(out)] = 0.0
    return out


def segment_softmax(scores: Tensor, index, num_segments: int) -> Tensor:
    """Softmax over variable-sized segments (attention over neighbours).

    ``scores`` has shape ``[n_edges, ...]``; entries sharing the same
    ``index`` value form one softmax group.  Used by MAGNN's intra-metapath
    attention and by the GAT extension.
    """
    idx = _index_array(index)
    # Constant max-shift for numerical stability (no gradient through it).
    shift = scatter_max_data(scores.data, idx, num_segments)[idx]
    exp = (scores - Tensor(shift)).exp()
    denom = scatter_add(exp, idx, num_segments)
    denom = denom + Tensor(np.full((), 1e-12, dtype=exp.data.dtype))
    return exp / gather(denom, idx)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable w.r.t. each input)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(_as_array(t)) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(_as_array(t)) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tensors, backward)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; gradient flows to the selected branch only."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a = a if isinstance(a, Tensor) else Tensor(_as_array(a))
    b = b if isinstance(b, Tensor) else Tensor(_as_array(b))
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        from .tensor import _unbroadcast

        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~cond if cond.dtype == bool else 1 - cond), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def rows_dot(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot product of two ``[n, d]`` tensors -> ``[n]``.

    The matching-module "dot product" scorer of ED-GNN (Section 2.2).
    """
    out_data = np.einsum("ij,ij->i", a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        g = grad[:, None]
        if a.requires_grad:
            a._accumulate(g * b.data)
        if b.requires_grad:
            b._accumulate(g * a.data)

    return Tensor._make(out_data, (a, b), backward)


def embedding_lookup(table: Tensor, ids) -> Tensor:
    """Alias of :func:`gather` with embedding-table semantics."""
    return gather(table, ids)
