"""Word tokenisation with character offsets.

The NER stage needs token spans that can be mapped back to character
offsets, because the ground-truth annotation format of Section 4.1 records
``start_offset``/``end_offset`` into the raw snippet text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z]+)?")


@dataclass(frozen=True)
class Token:
    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        return self.text.lower()


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into alphanumeric tokens with [start, end) offsets."""
    return [Token(m.group(0), m.start(), m.end()) for m in _TOKEN_RE.finditer(text)]


def span_text(text: str, tokens: List[Token], start_tok: int, end_tok: int) -> str:
    """The raw text covered by tokens ``[start_tok, end_tok)``."""
    return text[tokens[start_tok].start : tokens[end_tok - 1].end]
