"""Simulated clinical NER (the BioBERT stage of Section 3.1).

The paper uses a fine-tuned BioBERT model only to *extract entity
mentions* from a snippet before graph construction.  This module provides
the equivalent input stage offline: a greedy longest-match dictionary
recogniser over the KB's inverted index (canonical names, synonyms,
acronyms, abbreviations), which reproduces the behaviours the rest of the
pipeline depends on:

* multi-word mentions are found with character offsets,
* known surface forms resolve to their candidate KB nodes,
* ambiguous surface forms ("ARF") return multiple candidates,
* unknown-but-entity-like tokens (capitalised/unmatched medical terms
  registered by the caller) surface as unlinked mentions with a type
  guess, which is what Algorithm 1 needs for its unknown-mention branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.hetero import HeteroGraph
from ..graph.index import InvertedIndex, normalize_surface
from .tokenize import Token, span_text, tokenize


@dataclass
class Mention:
    """An extracted entity mention."""

    surface: str
    start: int
    end: int
    candidates: Tuple[int, ...] = ()
    candidate_types: Tuple[str, ...] = ()
    type_guess: Optional[str] = None

    @property
    def is_linked(self) -> bool:
        """True when the index resolved the surface to exactly one node."""
        return len(self.candidates) == 1

    @property
    def is_ambiguous(self) -> bool:
        return len(self.candidates) > 1

    @property
    def is_unknown(self) -> bool:
        return len(self.candidates) == 0


class DictionaryNER:
    """Greedy longest-match entity recogniser over an inverted index."""

    def __init__(
        self,
        graph: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        max_span_tokens: int = 6,
        extra_vocabulary: Optional[Dict[str, str]] = None,
    ):
        self.graph = graph
        self.index = index if index is not None else InvertedIndex(graph)
        self.max_span_tokens = max_span_tokens
        # surface -> type guess, for terms the caller knows are entities
        # even though they are missing from the KB (unknown mentions).
        self.extra_vocabulary: Dict[str, str] = {
            normalize_surface(k): v for k, v in (extra_vocabulary or {}).items()
        }

    def register_surface(self, surface: str, type_guess: str) -> None:
        """Teach the recogniser an out-of-KB surface form with a type
        guess (the NER model's entity-type output in the paper)."""
        self.extra_vocabulary[normalize_surface(surface)] = type_guess

    # ------------------------------------------------------------------
    def extract(self, text: str) -> List[Mention]:
        """Greedy longest-match extraction, left to right, no overlaps."""
        tokens = tokenize(text)
        mentions: List[Mention] = []
        i = 0
        while i < len(tokens):
            match = self._longest_match(text, tokens, i)
            if match is None:
                i += 1
                continue
            mention, consumed = match
            mentions.append(mention)
            i += consumed
        return mentions

    def _longest_match(
        self, text: str, tokens: List[Token], start: int
    ) -> Optional[Tuple[Mention, int]]:
        limit = min(self.max_span_tokens, len(tokens) - start)
        for width in range(limit, 0, -1):
            surface = span_text(text, tokens, start, start + width)
            key = normalize_surface(surface)
            candidates = self.index.lookup(surface)
            if candidates:
                types = tuple(sorted({self.graph.node_type_name(c) for c in candidates}))
                mention = Mention(
                    surface=surface,
                    start=tokens[start].start,
                    end=tokens[start + width - 1].end,
                    candidates=tuple(candidates),
                    candidate_types=types,
                    type_guess=types[0] if len(types) == 1 else None,
                )
                return mention, width
            if key in self.extra_vocabulary:
                mention = Mention(
                    surface=surface,
                    start=tokens[start].start,
                    end=tokens[start + width - 1].end,
                    candidates=(),
                    candidate_types=(),
                    type_guess=self.extra_vocabulary[key],
                )
                return mention, width
        return None


def link_unambiguous(mentions: Sequence[Mention]) -> Dict[str, int]:
    """Surface -> node id for the mentions the index resolved uniquely
    (the "matched entity mentions" EM_match of Algorithm 1)."""
    return {m.surface: m.candidates[0] for m in mentions if m.is_linked}
