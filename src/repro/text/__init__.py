"""Text substrate: tokenisation, simulated clinical NER, surface-form
variants, the hashing embedder that replaces BERT features, and the
paper's ground-truth snippet format (see DESIGN.md §2).
"""

from .corpus import (  # noqa: F401
    MentionAnnotation,
    Snippet,
    load_snippets,
    mint_cui,
    parse_cui,
    save_snippets,
    validate_snippet,
)
from .embedder import HashingNgramEmbedder, node_features_for_graph  # noqa: F401
from .ner import DictionaryNER, Mention, link_unambiguous  # noqa: F401
from .tokenize import Token, span_text, tokenize  # noqa: F401
from .variants import (  # noqa: F401
    VariantKind,
    applicable_kinds,
    classify_discrepancy,
    edit_distance,
    generate_variant,
    make_abbreviation,
    make_acronym,
    make_simplification,
    make_typo,
)

__all__ = [
    "Token",
    "tokenize",
    "span_text",
    "VariantKind",
    "generate_variant",
    "applicable_kinds",
    "make_acronym",
    "make_abbreviation",
    "make_typo",
    "make_simplification",
    "classify_discrepancy",
    "edit_distance",
    "HashingNgramEmbedder",
    "node_features_for_graph",
    "DictionaryNER",
    "Mention",
    "link_unambiguous",
    "Snippet",
    "MentionAnnotation",
    "mint_cui",
    "parse_cui",
    "save_snippets",
    "load_snippets",
    "validate_snippet",
]
