"""Surface-form variant generators.

The paper's motivating discrepancies between text snippets and KB entries
are "acronyms, abbreviations, typos and colloquial terms" plus synonyms
and simplifications (Sections 1 and 4.1).  The dataset synthesiser uses
these generators to corrupt canonical entity names into realistic mention
surface forms, labelled by discrepancy class so the evaluator can report
per-class behaviour.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

import numpy as np

from ..graph.index import normalize_surface

# Qualifier words that a careless editor drops ("simplification").
_QUALIFIERS = (
    "acute",
    "chronic",
    "severe",
    "mild",
    "recurrent",
    "primary",
    "secondary",
    "congenital",
    "malignant",
    "benign",
)


class VariantKind(str, Enum):
    """Discrepancy classes between a mention and its KB entity."""

    EXACT = "exact"
    ACRONYM = "acronym"
    ABBREVIATION = "abbreviation"
    SYNONYM = "synonym"
    TYPO = "typo"
    SIMPLIFICATION = "simplification"


def make_acronym(name: str) -> Optional[str]:
    """"acute renal failure" -> "ARF". None for single-word names."""
    words = normalize_surface(name).split()
    if len(words) < 2:
        return None
    return "".join(w[0] for w in words).upper()


def make_abbreviation(name: str, rng: np.random.Generator) -> Optional[str]:
    """Truncate one multi-letter word to a 3-4 character prefix with a
    period: "nephrotoxicity" -> "nephr."  None when nothing abbreviates."""
    words = name.split()
    eligible = [i for i, w in enumerate(words) if len(w) > 5]
    if not eligible:
        return None
    i = int(rng.choice(eligible))
    cut = int(rng.integers(3, 5))
    out = list(words)
    out[i] = words[i][:cut] + "."
    return " ".join(out)


def make_typo(name: str, rng: np.random.Generator) -> Optional[str]:
    """One edit: adjacent transposition, deletion, or duplication."""
    if len(name) < 4:
        return None
    chars = list(name)
    # Pick a position inside a word (not a space) for a stable-looking typo.
    positions = [i for i in range(1, len(chars) - 1) if chars[i] != " "]
    if not positions:
        return None
    i = int(rng.choice(positions))
    mode = int(rng.integers(0, 3))
    if mode == 0 and chars[i + 1] != " ":  # transpose
        chars[i], chars[i + 1] = chars[i + 1], chars[i]
    elif mode == 1:  # delete
        del chars[i]
    else:  # duplicate
        chars.insert(i, chars[i])
    typo = "".join(chars)
    return typo if typo != name else None


def make_simplification(name: str) -> Optional[str]:
    """Drop a leading qualifier: "chronic kidney disease" -> "kidney
    disease".  None when the name has no qualifier to drop."""
    words = name.split()
    kept = [w for w in words if w.lower() not in _QUALIFIERS]
    if len(kept) == len(words) or not kept:
        return None
    return " ".join(kept)


def generate_variant(
    name: str,
    kind: VariantKind,
    rng: np.random.Generator,
    synonyms: tuple = (),
) -> Optional[str]:
    """Produce one surface variant of ``name`` of the requested ``kind``;
    returns None when that kind does not apply to this name."""
    if kind == VariantKind.EXACT:
        return name
    if kind == VariantKind.ACRONYM:
        return make_acronym(name)
    if kind == VariantKind.ABBREVIATION:
        return make_abbreviation(name, rng)
    if kind == VariantKind.TYPO:
        return make_typo(name, rng)
    if kind == VariantKind.SIMPLIFICATION:
        return make_simplification(name)
    if kind == VariantKind.SYNONYM:
        if not synonyms:
            return None
        return str(rng.choice(list(synonyms)))
    raise ValueError(f"unknown variant kind {kind}")


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (unit insert/delete/substitute costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,  # delete from a
                    current[j - 1] + 1,  # insert into a
                    previous[j - 1] + (ca != cb),  # substitute
                )
            )
        previous = current
    return previous[-1]


def edit_distances(a: str, others: List[str]) -> np.ndarray:
    """Levenshtein distance from ``a`` to every string in ``others``.

    Vectorised across ``others``: one DP row per character of ``a``,
    updated for all strings at once as numpy arrays.  The in-row
    insertion recurrence ``current[j] = current[j-1] + 1`` unrolls to a
    prefix minimum of ``candidate[j] - j`` (each step right costs exactly
    1), so the whole row update is branch-free array math.  Matches
    :func:`edit_distance` exactly; the candidate-generation rescorer
    calls this once per shortlist instead of once per candidate.
    """
    if not others:
        return np.zeros(0, dtype=np.int64)
    lens = np.asarray([len(b) for b in others], dtype=np.int64)
    width = int(lens.max())
    if not a or width == 0:
        return np.maximum(lens, len(a))
    # Character matrix, zero-padded (codepoint 0 never appears in text).
    chars = np.zeros((len(others), width), dtype=np.int32)
    for row, b in enumerate(others):
        chars[row, : len(b)] = np.frombuffer(
            b.encode("utf-32-le"), dtype=np.int32
        )
    a_codes = np.frombuffer(a.encode("utf-32-le"), dtype=np.int32)
    # The DP runs in "tilted" coordinates T[j] = row[j] - j, which turns
    # the in-row insertion recurrence into a plain prefix minimum and the
    # per-iteration re/un-tilt into a single subtraction hoisted out of
    # the loop.  mismatch1[i] = (cost of substituting a[i]) - 1, the -1
    # being the tilt delta between columns j-1 and j.
    mismatch1 = (chars[None, :, :] != a_codes[:, None, None]).astype(np.int64)
    mismatch1 -= 1
    tilted = np.zeros((len(others), width + 1), dtype=np.int64)
    best = np.empty_like(tilted)
    for i in range(len(a)):
        np.add(tilted[:, :-1], mismatch1[i], out=best[:, 1:])  # substitute
        np.minimum(best[:, 1:], tilted[:, 1:] + 1, out=best[:, 1:])  # delete
        best[:, 0] = i + 1
        # Fold in insertions: min over m <= j of best[m] (already tilted).
        np.minimum.accumulate(best, axis=1, out=tilted)
    return tilted[np.arange(len(others)), lens] + lens


def classify_discrepancy(
    canonical: str,
    surface: str,
    synonyms: tuple = (),
    typo_threshold: int = 2,
) -> Optional[VariantKind]:
    """Infer the discrepancy class between a mention surface and its gold
    entity's canonical name — the inverse of :func:`generate_variant`,
    used by the per-class evaluation breakdown.

    Checks run from most to least specific (an acronym is also far away
    in edit distance; a typo is the catch-all for near-misses).  Returns
    ``None`` when no class explains the surface.
    """
    norm_canonical = normalize_surface(canonical)
    norm_surface = normalize_surface(surface)
    if norm_surface == norm_canonical:
        return VariantKind.EXACT
    # Acronym outranks synonym: a stored alias that *is* the derived
    # acronym ("ARF") presents the acronym-collision difficulty, not the
    # synonym one.
    acronym = make_acronym(canonical)
    if acronym is not None and norm_surface == acronym.lower():
        return VariantKind.ACRONYM
    if any(norm_surface == normalize_surface(s) for s in synonyms):
        return VariantKind.SYNONYM

    surface_words = surface.split()
    canonical_words = canonical.split()
    if len(surface_words) == len(canonical_words):
        # Abbreviation: every word matches except truncated "pref." forms.
        abbreviated = 0
        matched = True
        for sw, cw in zip(surface_words, canonical_words):
            if sw == cw:
                continue
            stem = sw[:-1]
            if sw.endswith(".") and len(stem) >= 3 and cw.startswith(stem) and cw != stem:
                abbreviated += 1
            else:
                matched = False
                break
        if matched and abbreviated:
            return VariantKind.ABBREVIATION

    kept = [w for w in canonical_words if w.lower() not in _QUALIFIERS]
    if kept != canonical_words and norm_surface == normalize_surface(" ".join(kept)):
        return VariantKind.SIMPLIFICATION

    if edit_distance(norm_surface, norm_canonical) <= typo_threshold:
        return VariantKind.TYPO
    return None


def applicable_kinds(name: str, synonyms: tuple = ()) -> List[VariantKind]:
    """All discrepancy classes that can be generated for ``name``."""
    kinds = [VariantKind.EXACT]
    if make_acronym(name):
        kinds.append(VariantKind.ACRONYM)
    if any(len(w) > 5 for w in name.split()):
        kinds.append(VariantKind.ABBREVIATION)
    if len(name) >= 4:
        kinds.append(VariantKind.TYPO)
    if make_simplification(name):
        kinds.append(VariantKind.SIMPLIFICATION)
    if synonyms:
        kinds.append(VariantKind.SYNONYM)
    return kinds
