"""Snippet corpora and the paper's ground-truth annotation format.

Section 4.1 shows the public-dataset ground truth layout::

    {"Text": "A common human skin tumour is caused by activating mutations.",
     "Mentions": [{"mention": "skin tumor", "start_offset": 15,
                   "end_offset": 26, "category": "Disease",
                   "link_id": "C0037286"}]}

This module models snippets and annotations with that exact JSON round
trip.  ``link_id`` carries a concept identifier string; the synthetic
datasets mint UMLS-style CUIs ("C" + 7 digits) per KB node.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class MentionAnnotation:
    """One gold mention: its span, category, and the linked concept id."""

    mention: str
    start_offset: int
    end_offset: int
    category: str
    link_id: str

    def to_dict(self) -> dict:
        return {
            "mention": self.mention,
            "start_offset": self.start_offset,
            "end_offset": self.end_offset,
            "category": self.category,
            "link_id": self.link_id,
        }

    @staticmethod
    def from_dict(payload: dict) -> "MentionAnnotation":
        return MentionAnnotation(
            mention=payload["mention"],
            start_offset=int(payload["start_offset"]),
            end_offset=int(payload["end_offset"]),
            category=payload["category"],
            link_id=payload["link_id"],
        )


@dataclass
class Snippet:
    """A text snippet with its gold mention annotations.

    Per Section 4.1 each snippet carries exactly one mention *to be
    disambiguated* (``ambiguous_index``); the remaining annotations are
    context mentions the query-graph builder may resolve directly.
    """

    text: str
    mentions: List[MentionAnnotation] = field(default_factory=list)
    ambiguous_index: int = 0

    @property
    def ambiguous_mention(self) -> MentionAnnotation:
        return self.mentions[self.ambiguous_index]

    def to_dict(self) -> dict:
        return {
            "Text": self.text,
            "Mentions": [m.to_dict() for m in self.mentions],
            "AmbiguousIndex": self.ambiguous_index,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Snippet":
        return Snippet(
            text=payload["Text"],
            mentions=[MentionAnnotation.from_dict(m) for m in payload["Mentions"]],
            ambiguous_index=int(payload.get("AmbiguousIndex", 0)),
        )


def mint_cui(node_id: int) -> str:
    """UMLS-style concept unique identifier for a synthetic KB node."""
    return f"C{node_id:07d}"


def parse_cui(link_id: str) -> int:
    if not link_id.startswith("C"):
        raise ValueError(f"not a synthetic CUI: {link_id!r}")
    return int(link_id[1:])


def save_snippets(snippets: Sequence[Snippet], path: str) -> None:
    """One JSON object per line, in the paper's ground-truth layout."""
    with open(path, "w", encoding="utf-8") as fh:
        for snippet in snippets:
            fh.write(json.dumps(snippet.to_dict()) + "\n")


def load_snippets(path: str) -> List[Snippet]:
    snippets: List[Snippet] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                snippets.append(Snippet.from_dict(json.loads(line)))
    return snippets


def validate_snippet(snippet: Snippet) -> List[str]:
    """Consistency checks: spans inside the text, mention text matches the
    span, ambiguous index in range.  Returns a list of problems (empty
    when valid) — used by dataset tests and failure-injection tests."""
    problems: List[str] = []
    if not snippet.mentions:
        problems.append("snippet has no mentions")
        return problems
    if not (0 <= snippet.ambiguous_index < len(snippet.mentions)):
        problems.append(f"ambiguous_index {snippet.ambiguous_index} out of range")
    for i, m in enumerate(snippet.mentions):
        if not (0 <= m.start_offset < m.end_offset <= len(snippet.text)):
            problems.append(f"mention {i} span [{m.start_offset}, {m.end_offset}) invalid")
            continue
        covered = snippet.text[m.start_offset : m.end_offset]
        if covered != m.mention:
            problems.append(
                f"mention {i} text {m.mention!r} != span text {covered!r}"
            )
    return problems
