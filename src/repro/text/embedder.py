"""Deterministic character-n-gram hashing embedder.

Stands in for the BERT/BioBERT initial node features of the paper
(Section 3.2: "initial node embeddings can be obtained using language
models such as BERT on each node").  The property the paper actually
relies on is that *lexically similar strings receive similar vectors* —
that is what makes ``sim_se`` rank "malignant hyperthermia" close to
"malignant hyperpyrexia".  Feature hashing over character n-grams (plus
whole-word hashes) delivers exactly that, offline, with no model weights:
two strings sharing most of their trigrams land in mostly the same
buckets and get high cosine similarity.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np


def _stable_hash(data: str) -> int:
    """Process-independent 64-bit hash (python's builtin hash is salted)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingNgramEmbedder:
    """Maps strings to fixed-dimension unit vectors via feature hashing.

    Character n-grams of the padded lowercase string and whole words are
    each hashed to a (bucket, sign) pair and accumulated; the result is
    L2-normalised.  Deterministic across processes and runs.
    """

    def __init__(
        self,
        dim: int = 128,
        ngram_range: tuple = (3, 5),
        use_words: bool = True,
        seed: int = 0x5EED,
    ):
        if dim <= 0:
            raise ValueError("dim must be positive")
        lo, hi = ngram_range
        if lo < 1 or hi < lo:
            raise ValueError(f"bad ngram_range {ngram_range}")
        self.dim = dim
        self.ngram_range = (lo, hi)
        self.use_words = use_words
        self.seed = seed

    # ------------------------------------------------------------------
    def _features(self, text: str) -> List[str]:
        normalized = " ".join(text.lower().split())
        padded = f"<{normalized}>"
        lo, hi = self.ngram_range
        feats: List[str] = []
        for n in range(lo, hi + 1):
            if len(padded) < n:
                continue
            feats.extend(padded[i : i + n] for i in range(len(padded) - n + 1))
        if self.use_words:
            feats.extend(f"w:{w}" for w in normalized.split())
        return feats

    def embed(self, text: str) -> np.ndarray:
        """Embed one string into a unit vector of ``self.dim`` floats."""
        vec = np.zeros(self.dim, dtype=np.float32)
        for feat in self._features(text):
            h = _stable_hash(f"{self.seed}:{feat}")
            bucket = h % self.dim
            sign = 1.0 if (h >> 63) & 1 else -1.0
            vec[bucket] += sign
        norm = float(np.linalg.norm(vec))
        if norm > 0:
            vec /= norm
        return vec

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many strings into an ``[n, dim]`` matrix."""
        out = np.zeros((len(texts), self.dim), dtype=np.float32)
        cache: dict[str, np.ndarray] = {}
        for i, text in enumerate(texts):
            if text not in cache:
                cache[text] = self.embed(text)
            out[i] = cache[text]
        return out

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two strings' embeddings."""
        return float(self.embed(a) @ self.embed(b))


def node_features_for_graph(graph, embedder: HashingNgramEmbedder) -> np.ndarray:
    """Initial features for every node: the embedding of its name, with
    its node type hashed in as a weak extra signal (mirrors the paper's
    use of typed node attributes in the node list)."""
    names = [graph.node_name(v) for v in range(graph.num_nodes)]
    feats = embedder.embed_batch(names)
    # Small additive type marker so identically named nodes of different
    # types stay distinguishable, then re-normalise.
    for v in range(graph.num_nodes):
        h = _stable_hash(f"type:{graph.node_type_name(v)}") % embedder.dim
        feats[v, h] += 0.25
    norms = np.linalg.norm(feats, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return feats / norms
