"""Corpus-side characterisation: snippet structure and discrepancy mix.

The paper's error analysis ties "insufficient structural information"
to short snippets (MIMIC-III's "Graft failure due to FSGS recurrence"
has a single context mention); the Section 4.1 protocol ties evaluation
difficulty to the mix of discrepancy classes.  Both are measured here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..graph.hetero import HeteroGraph
from ..text.corpus import Snippet, parse_cui
from ..text.variants import VariantKind, classify_discrepancy

__all__ = [
    "ContextStats",
    "context_stats",
    "DiscrepancyMix",
    "discrepancy_mix",
    "summarize_corpus",
]


@dataclass(frozen=True)
class ContextStats:
    """How much structure the query graphs will have to work with."""

    mean_mentions: float  # mentions per snippet (incl. the ambiguous one)
    min_mentions: int
    max_mentions: int
    single_context_fraction: float  # snippets with exactly 1 context mention
    mean_chars: float

    def __str__(self) -> str:
        return (
            f"mentions/snippet mean={self.mean_mentions:.2f} "
            f"[{self.min_mentions}, {self.max_mentions}], "
            f"single-context={self.single_context_fraction:.1%}, "
            f"chars mean={self.mean_chars:.0f}"
        )


def context_stats(snippets: Sequence[Snippet]) -> ContextStats:
    """Mention-count and length profile of a snippet corpus."""
    if not snippets:
        raise ValueError("empty corpus")
    counts = np.asarray([len(s.mentions) for s in snippets])
    chars = np.asarray([len(s.text) for s in snippets])
    return ContextStats(
        mean_mentions=float(counts.mean()),
        min_mentions=int(counts.min()),
        max_mentions=int(counts.max()),
        single_context_fraction=float((counts <= 2).mean()),
        mean_chars=float(chars.mean()),
    )


@dataclass(frozen=True)
class DiscrepancyMix:
    """Fraction of ambiguous mentions per inferred discrepancy class."""

    fractions: Dict[str, float]
    n_classified: int
    n_unknown: int

    def fraction(self, kind: VariantKind) -> float:
        return self.fractions.get(kind.value, 0.0)


def discrepancy_mix(
    snippets: Sequence[Snippet],
    kb: HeteroGraph,
) -> DiscrepancyMix:
    """Classify every ambiguous mention against its gold entity name.

    Snippets without a resolvable gold are skipped; surfaces no variant
    generator explains count as unknown.
    """
    counts: Dict[str, int] = {}
    unknown = 0
    total = 0
    for snippet in snippets:
        link_id = snippet.ambiguous_mention.link_id
        if not link_id:
            continue
        gold = parse_cui(link_id)
        if not 0 <= gold < kb.num_nodes:
            continue
        total += 1
        kind = classify_discrepancy(
            kb.node_name(gold),
            snippet.ambiguous_mention.mention,
            kb.node_aliases(gold),
        )
        if kind is None:
            unknown += 1
        else:
            counts[kind.value] = counts.get(kind.value, 0) + 1
    if total == 0:
        return DiscrepancyMix({}, 0, 0)
    fractions = {kind: c / total for kind, c in sorted(counts.items())}
    return DiscrepancyMix(fractions, total - unknown, unknown)


def summarize_corpus(
    snippets: Sequence[Snippet],
    kb: Optional[HeteroGraph] = None,
) -> Dict:
    """One-call corpus characterisation."""
    summary: Dict = {
        "snippets": len(snippets),
        "context": context_stats(snippets),
    }
    if kb is not None:
        summary["discrepancies"] = discrepancy_mix(snippets, kb)
    return summary
