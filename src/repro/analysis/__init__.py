"""Dataset characterisation: the measurable properties behind the
paper's qualitative claims.

Section 4.3 attributes results to "graph complexity and semantic
richness"; Section 4.5's error analysis leans on snippet length and KB
density.  This subpackage quantifies those notions for any KB + corpus —
degree/density profiles, surface-form ambiguity, same-type structural
similarity ("highly similar nodes"), snippet-length and
discrepancy-class mixes — so the claims are checkable numbers instead
of prose.
"""

from .corpus_stats import (  # noqa: F401
    ContextStats,
    DiscrepancyMix,
    context_stats,
    discrepancy_mix,
    summarize_corpus,
)
from .kb_stats import (  # noqa: F401
    AmbiguityProfile,
    DegreeStats,
    ambiguity_profile,
    degree_statistics,
    edges_per_node,
    sibling_similarity,
    summarize_kb,
)

__all__ = [
    "DegreeStats",
    "degree_statistics",
    "edges_per_node",
    "AmbiguityProfile",
    "ambiguity_profile",
    "sibling_similarity",
    "summarize_kb",
    "ContextStats",
    "context_stats",
    "DiscrepancyMix",
    "discrepancy_mix",
    "summarize_corpus",
]
