"""KB-side characterisation: degrees, density, ambiguity, sibling
similarity.

These are the levers the dataset profiles control (DESIGN.md §2) and
the factors the paper's discussion invokes: MIMIC-III's density drives
its "highly similar nodes" errors; MDX's editorial aliasing drives its
acronym ambiguity; NCBI/BioCDR are "simpler" on every axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.hetero import HeteroGraph
from ..graph.index import InvertedIndex
from ..graph.kernels import make_structural_metric

__all__ = [
    "DegreeStats",
    "degree_statistics",
    "edges_per_node",
    "AmbiguityProfile",
    "ambiguity_profile",
    "sibling_similarity",
    "summarize_kb",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of the (undirected) degree distribution."""

    mean: float
    median: float
    p90: float
    max: int
    isolated_fraction: float  # degree-0 nodes
    hub_fraction: float  # nodes holding the top 10% of incident edges

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.2f} median={self.median:.0f} p90={self.p90:.0f} "
            f"max={self.max} isolated={self.isolated_fraction:.1%} "
            f"hubs={self.hub_fraction:.1%}"
        )


def _degrees(graph: HeteroGraph) -> np.ndarray:
    degrees = np.zeros(graph.num_nodes, dtype=np.int64)
    src, dst, _ = graph.edges()
    np.add.at(degrees, src, 1)
    np.add.at(degrees, dst, 1)
    return degrees


def degree_statistics(graph: HeteroGraph) -> DegreeStats:
    """Degree distribution summary over the undirected view."""
    if graph.num_nodes == 0:
        raise ValueError("empty graph")
    degrees = _degrees(graph)
    total = int(degrees.sum())
    if total > 0:
        ranked = np.sort(degrees)[::-1]
        cumulative = np.cumsum(ranked)
        hub_count = int(np.searchsorted(cumulative, 0.1 * total) + 1)
        hub_fraction = hub_count / graph.num_nodes
    else:
        hub_fraction = 0.0
    return DegreeStats(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        p90=float(np.percentile(degrees, 90)),
        max=int(degrees.max()),
        isolated_fraction=float((degrees == 0).mean()),
        hub_fraction=hub_fraction,
    )


def edges_per_node(graph: HeteroGraph) -> float:
    """Table 2's density figure (#edges / #nodes) — the axis on which
    MIMIC-III (≈12.6) dwarfs MDX (≈2.1)."""
    if graph.num_nodes == 0:
        raise ValueError("empty graph")
    return graph.num_edges / graph.num_nodes


@dataclass(frozen=True)
class AmbiguityProfile:
    """How contested the KB's surface forms are."""

    num_surfaces: int
    ambiguous_surfaces: int  # surfaces with >= 2 candidate entities
    max_candidates: int
    top_ambiguous: List[Tuple[str, int]]  # (surface, candidate count)

    @property
    def ambiguous_fraction(self) -> float:
        return self.ambiguous_surfaces / self.num_surfaces if self.num_surfaces else 0.0


def ambiguity_profile(
    graph: HeteroGraph,
    index: Optional[InvertedIndex] = None,
    top_k: int = 5,
) -> AmbiguityProfile:
    """Profile surface-form ambiguity through the Section 3.1 index.

    Counts every indexed surface (names, aliases, derived acronyms) and
    ranks the most contested ones — the "ARF"-style collisions ED-GNN
    exists to resolve.
    """
    index = index or InvertedIndex(graph)
    counts: Dict[str, int] = {}
    for surface in index.known_surfaces():
        counts[surface] = len(index.lookup(surface))
    # Derived acronym keys ("arf") are indexed separately and hold most
    # of the genuine collisions; merge them through the same lookup.
    for surface in index.acronym_surfaces():
        if surface not in counts:
            counts[surface] = len(index.lookup(surface))
    ambiguous = {s: c for s, c in counts.items() if c >= 2}
    ranked = sorted(ambiguous.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    return AmbiguityProfile(
        num_surfaces=len(counts),
        ambiguous_surfaces=len(ambiguous),
        max_candidates=max(counts.values(), default=0),
        top_ambiguous=ranked,
    )


def sibling_similarity(
    graph: HeteroGraph,
    metric: str = "star_ged",
    sample_pairs: int = 200,
    seed: int = 0,
) -> float:
    """Mean structural similarity of random same-type node pairs — the
    "highly similar nodes" factor of the Section 4.5 error analysis.

    Dense, sibling-heavy KBs (the MIMIC-III profile) score high; sparse
    curated ones score low.
    """
    if graph.num_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    measure = make_structural_metric(metric, graph)
    types = graph.node_types
    by_type: Dict[int, np.ndarray] = {}
    for type_id in np.unique(types):
        members = np.nonzero(types == type_id)[0]
        if len(members) >= 2:
            by_type[int(type_id)] = members
    if not by_type:
        return 0.0
    type_ids = list(by_type)
    total = 0.0
    for _ in range(sample_pairs):
        members = by_type[type_ids[int(rng.integers(len(type_ids)))]]
        u, v = rng.choice(members, size=2, replace=False)
        total += measure.similarity(int(u), int(v))
    return total / sample_pairs


def summarize_kb(graph: HeteroGraph, sample_pairs: int = 200, seed: int = 0) -> Dict:
    """One-call characterisation used by ``examples/dataset_report.py``."""
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "edges_per_node": edges_per_node(graph),
        "types": graph.type_histogram(),
        "relations": graph.relation_histogram(),
        "degrees": degree_statistics(graph),
        "ambiguity": ambiguity_profile(graph),
        "sibling_similarity": sibling_similarity(
            graph, sample_pairs=sample_pairs, seed=seed
        ),
    }
