"""Fuzzy candidate generation for surfaces the inverted index misses.

Section 3.1's inverted index covers exact names, synonyms, acronyms and
abbreviations — but a typo'd mention ("protienuria") has *no* index key.
The paper's pipeline then falls back to all type-compatible entities,
which makes ranking needlessly hard on large KBs.  This module adds the
standard production remedy: approximate lexical retrieval.

Two stages, both offline-friendly:

1. **n-gram retrieval** — cosine similarity between the surface's
   character-n-gram hash embedding and every entity name (the same
   embedder that builds the initial node features, so no extra state);
2. **edit-distance re-ranking** — Levenshtein distance breaks cosine
   ties and filters implausible matches.

Candidate generation is a registered pipeline component: pick one by
name via ``LinkerConfig(candidate_generator="exact" | "fuzzy" |
"indexed")`` or the :data:`repro.api.CANDIDATE_GENERATORS` registry
(``"exact"`` is the default; the ``REPRO_CANDIDATES`` environment
variable overrides it).  The evaluation protocol uses ``"exact"``, so
benchmark numbers are unaffected by the fallback generators.  The
``"indexed"`` generator (:mod:`repro.retrieval`) replaces this module's
linear n-gram scan with a sublinear shortlist and then reruns the same
scoring restricted to it — :class:`FuzzyCandidateGenerator` stays the
correctness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph.hetero import HeteroGraph
from ..graph.index import InvertedIndex, normalize_surface
from ..text.embedder import HashingNgramEmbedder
from ..text.variants import edit_distances

__all__ = [
    "Candidate",
    "FuzzyCandidateGenerator",
    "ExactCandidateGenerator",
    "FuzzyFallbackCandidateGenerator",
]


@dataclass(frozen=True)
class Candidate:
    """One candidate entity with its retrieval provenance."""

    node: int
    score: float
    source: str  # "index" | "ngram"


class FuzzyCandidateGenerator:
    """Index lookup first, approximate lexical retrieval as fallback."""

    def __init__(
        self,
        kb: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        embedder: Optional[HashingNgramEmbedder] = None,
        min_similarity: float = 0.25,
        max_edit_ratio: float = 0.6,
        name_matrix: Optional[np.ndarray] = None,
    ):
        """``min_similarity`` floors the n-gram cosine; ``max_edit_ratio``
        rejects candidates whose edit distance exceeds that fraction of
        the longer string (1.0 disables the filter).  ``name_matrix``
        lets callers that already embedded every canonical name share
        the matrix instead of re-embedding the KB."""
        self.kb = kb
        self.index = index or InvertedIndex(kb)
        self.embedder = embedder or HashingNgramEmbedder(dim=128)
        self.min_similarity = min_similarity
        self.max_edit_ratio = max_edit_ratio
        names = [kb.node_name(v) for v in range(kb.num_nodes)]
        self._normalized = [normalize_surface(n) for n in names]
        if name_matrix is not None:
            self._name_matrix = name_matrix
        else:
            self._name_matrix = self.embedder.embed_batch(names)

    # ------------------------------------------------------------------
    def candidates(
        self,
        surface: str,
        top_k: int = 10,
        within: Optional[np.ndarray] = None,
        query_vec: Optional[np.ndarray] = None,
    ) -> List[Candidate]:
        """Ranked candidates for a surface form.

        Index hits (exact / alias / acronym) come first with score 1.0;
        when the index has nothing, the n-gram + edit-distance fallback
        fills up to ``top_k`` candidates.  ``within`` restricts the
        fallback to a shortlist of node ids (the sublinear retrieval
        backends produce one) — scores and filters are identical to the
        unrestricted scan, so when the shortlist covers the scan's
        survivors the output matches exactly.  ``query_vec`` skips
        re-embedding when the caller already embedded the surface.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        exact = self.index.lookup(surface)
        if exact:
            return [Candidate(node, 1.0, "index") for node in exact[:top_k]]
        return self._fuzzy(surface, top_k, within=within, query_vec=query_vec)

    def _fuzzy(
        self,
        surface: str,
        top_k: int,
        within: Optional[np.ndarray] = None,
        query_vec: Optional[np.ndarray] = None,
    ) -> List[Candidate]:
        query = self.embedder.embed(surface) if query_vec is None else query_vec
        if within is None:
            nodes = None
            sims = self._name_matrix @ query
        else:
            nodes = np.asarray(within, dtype=np.int64)
            if nodes.size == 0:
                return []
            sims = self._name_matrix[nodes] @ query
        # Over-fetch so the edit filter still leaves top_k survivors.
        fetch = min(len(sims), max(4 * top_k, 16))
        order = np.argpartition(-sims, fetch - 1)[:fetch]
        norm_surface = normalize_surface(surface)

        positions = order[sims[order].astype(np.float64) >= self.min_similarity]
        kept = positions if nodes is None else nodes[positions]
        # Rank first (the final sort key: score desc, node asc), then run
        # the edit filter lazily over ranked chunks — one batched DP per
        # chunk — stopping as soon as top_k candidates survive.  The
        # survivors (in rank order) are exactly what filter-everything-
        # then-sort-then-cut would produce, without paying the DP for
        # low-ranked candidates that can never make the cut.
        srt = np.lexsort((kept, -sims[positions]))
        positions, kept = positions[srt], kept[srt]
        if self.max_edit_ratio >= 1.0:
            positions, kept = positions[:top_k], kept[:top_k]
            return [
                Candidate(int(node), float(sims[pos]), "ngram")
                for pos, node in zip(positions.tolist(), kept.tolist())
            ]
        scored: List[Candidate] = []
        start = 0
        while start < len(kept) and len(scored) < top_k:
            stop = min(len(kept), start + max(top_k - len(scored) + 8, 16))
            chunk_pos = positions[start:stop]
            chunk_nodes = kept[start:stop]
            names = [self._normalized[int(node)] for node in chunk_nodes]
            longest = np.maximum(
                [len(n) for n in names], len(norm_surface)
            ).astype(np.float64)
            distances = edit_distances(norm_surface, names)
            ratios = distances / np.maximum(longest, 1.0)
            ok = (longest == 0) | (ratios <= self.max_edit_ratio)
            scored.extend(
                Candidate(int(node), float(sims[pos]), "ngram")
                for pos, node in zip(chunk_pos[ok].tolist(), chunk_nodes[ok].tolist())
            )
            start = stop
        return scored[:top_k]

    def candidate_ids(
        self,
        surface: str,
        top_k: int = 10,
        within: Optional[np.ndarray] = None,
        query_vec: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Just the node ids (the pipeline's consumption format)."""
        return [
            c.node
            for c in self.candidates(surface, top_k, within=within, query_vec=query_vec)
        ]


class ExactCandidateGenerator:
    """The paper's Section 3.1 candidate-generation stage as a component.

    Inverted-index lookup first; on a miss, :meth:`_fallback` (a hook for
    subclasses — no-op here), then all type-compatible entities, then the
    whole KB.  Registered as ``"exact"`` in
    :data:`repro.api.CANDIDATE_GENERATORS`; the behaviour is bit-identical
    to the pre-registry ``EDPipeline.candidate_ids``.
    """

    name = "exact"

    def __init__(
        self,
        kb: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        embedder: Optional[HashingNgramEmbedder] = None,
    ):
        self.kb = kb
        self.index = index if index is not None else InvertedIndex(kb)
        self.embedder = embedder
        # Telemetry: how often the inverted index answered outright vs
        # the fallback path ran.  ServiceStats snapshots these per
        # request into the repro_candidates_* series.
        self.index_hits = 0
        self.fallback_hits = 0

    def _fallback(self, surface: str) -> List[int]:
        """Candidates for an index miss; subclasses widen the retrieval."""
        return []

    def candidates_for(
        self,
        surface: str,
        category: Optional[str] = None,
        restrict_to_candidates: bool = True,
    ) -> np.ndarray:
        """KB node ids to rank for a surface form."""
        candidates = self.index.lookup(surface) if restrict_to_candidates else []
        if candidates:
            self.index_hits += 1
        elif restrict_to_candidates:
            self.fallback_hits += 1
            candidates = self._fallback(surface)
        if not candidates and category is not None and category in self.kb.schema.node_types:
            candidates = self.kb.nodes_of_type(category).tolist()
        if not candidates:
            # Whole-KB fallthrough: arange, not a 10^5-element Python list.
            return np.arange(self.kb.num_nodes, dtype=np.int64)
        return np.asarray(candidates, dtype=np.int64)


class FuzzyFallbackCandidateGenerator(ExactCandidateGenerator):
    """``"fuzzy"``: exact lookup with approximate lexical retrieval on a
    miss (the production remedy for typo'd surfaces; see
    :class:`FuzzyCandidateGenerator` for the retrieval itself)."""

    name = "fuzzy"

    def __init__(
        self,
        kb: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        embedder: Optional[HashingNgramEmbedder] = None,
        top_k: int = 20,
        min_similarity: float = 0.25,
        max_edit_ratio: float = 0.6,
        name_matrix: Optional[np.ndarray] = None,
    ):
        super().__init__(kb, index=index, embedder=embedder)
        self.top_k = top_k
        self._fuzzy = FuzzyCandidateGenerator(
            kb,
            index=self.index,
            embedder=embedder,
            min_similarity=min_similarity,
            max_edit_ratio=max_edit_ratio,
            name_matrix=name_matrix,
        )

    def _fallback(self, surface: str) -> List[int]:
        return self._fuzzy.candidate_ids(surface, top_k=self.top_k)
