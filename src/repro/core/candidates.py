"""Fuzzy candidate generation for surfaces the inverted index misses.

Section 3.1's inverted index covers exact names, synonyms, acronyms and
abbreviations — but a typo'd mention ("protienuria") has *no* index key.
The paper's pipeline then falls back to all type-compatible entities,
which makes ranking needlessly hard on large KBs.  This module adds the
standard production remedy: approximate lexical retrieval.

Two stages, both offline-friendly:

1. **n-gram retrieval** — cosine similarity between the surface's
   character-n-gram hash embedding and every entity name (the same
   embedder that builds the initial node features, so no extra state);
2. **edit-distance re-ranking** — Levenshtein distance breaks cosine
   ties and filters implausible matches.

The generator is opt-in from :class:`~repro.core.pipeline.EDPipeline`
(``fuzzy_candidates=True``); the evaluation protocol never uses it, so
benchmark numbers are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph.hetero import HeteroGraph
from ..graph.index import InvertedIndex, normalize_surface
from ..text.embedder import HashingNgramEmbedder
from ..text.variants import edit_distance

__all__ = [
    "Candidate",
    "FuzzyCandidateGenerator",
    "ExactCandidateGenerator",
    "FuzzyFallbackCandidateGenerator",
]


@dataclass(frozen=True)
class Candidate:
    """One candidate entity with its retrieval provenance."""

    node: int
    score: float
    source: str  # "index" | "ngram"


class FuzzyCandidateGenerator:
    """Index lookup first, approximate lexical retrieval as fallback."""

    def __init__(
        self,
        kb: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        embedder: Optional[HashingNgramEmbedder] = None,
        min_similarity: float = 0.25,
        max_edit_ratio: float = 0.6,
    ):
        """``min_similarity`` floors the n-gram cosine; ``max_edit_ratio``
        rejects candidates whose edit distance exceeds that fraction of
        the longer string (1.0 disables the filter)."""
        self.kb = kb
        self.index = index or InvertedIndex(kb)
        self.embedder = embedder or HashingNgramEmbedder(dim=128)
        self.min_similarity = min_similarity
        self.max_edit_ratio = max_edit_ratio
        names = [kb.node_name(v) for v in range(kb.num_nodes)]
        self._normalized = [normalize_surface(n) for n in names]
        self._name_matrix = self.embedder.embed_batch(names)

    # ------------------------------------------------------------------
    def candidates(self, surface: str, top_k: int = 10) -> List[Candidate]:
        """Ranked candidates for a surface form.

        Index hits (exact / alias / acronym) come first with score 1.0;
        when the index has nothing, the n-gram + edit-distance fallback
        fills up to ``top_k`` candidates.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        exact = self.index.lookup(surface)
        if exact:
            return [Candidate(node, 1.0, "index") for node in exact[:top_k]]
        return self._fuzzy(surface, top_k)

    def _fuzzy(self, surface: str, top_k: int) -> List[Candidate]:
        query = self.embedder.embed(surface)
        sims = self._name_matrix @ query
        # Over-fetch so the edit filter still leaves top_k survivors.
        fetch = min(len(sims), max(4 * top_k, 16))
        order = np.argpartition(-sims, fetch - 1)[:fetch]
        norm_surface = normalize_surface(surface)

        scored: List[Candidate] = []
        for node in order.tolist():
            similarity = float(sims[node])
            if similarity < self.min_similarity:
                continue
            name = self._normalized[node]
            longest = max(len(norm_surface), len(name))
            if longest and self.max_edit_ratio < 1.0:
                ratio = edit_distance(norm_surface, name) / longest
                if ratio > self.max_edit_ratio:
                    continue
            scored.append(Candidate(node, similarity, "ngram"))
        scored.sort(key=lambda c: (-c.score, c.node))
        return scored[:top_k]

    def candidate_ids(self, surface: str, top_k: int = 10) -> List[int]:
        """Just the node ids (the pipeline's consumption format)."""
        return [c.node for c in self.candidates(surface, top_k)]


class ExactCandidateGenerator:
    """The paper's Section 3.1 candidate-generation stage as a component.

    Inverted-index lookup first; on a miss, :meth:`_fallback` (a hook for
    subclasses — no-op here), then all type-compatible entities, then the
    whole KB.  Registered as ``"exact"`` in
    :data:`repro.api.CANDIDATE_GENERATORS`; the behaviour is bit-identical
    to the pre-registry ``EDPipeline.candidate_ids``.
    """

    name = "exact"

    def __init__(
        self,
        kb: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        embedder: Optional[HashingNgramEmbedder] = None,
    ):
        self.kb = kb
        self.index = index if index is not None else InvertedIndex(kb)
        self.embedder = embedder

    def _fallback(self, surface: str) -> List[int]:
        """Candidates for an index miss; subclasses widen the retrieval."""
        return []

    def candidates_for(
        self,
        surface: str,
        category: Optional[str] = None,
        restrict_to_candidates: bool = True,
    ) -> np.ndarray:
        """KB node ids to rank for a surface form."""
        candidates = self.index.lookup(surface) if restrict_to_candidates else []
        if not candidates and restrict_to_candidates:
            candidates = self._fallback(surface)
        if not candidates and category is not None and category in self.kb.schema.node_types:
            candidates = self.kb.nodes_of_type(category).tolist()
        if not candidates:
            candidates = list(range(self.kb.num_nodes))
        return np.asarray(candidates, dtype=np.int64)


class FuzzyFallbackCandidateGenerator(ExactCandidateGenerator):
    """``"fuzzy"``: exact lookup with approximate lexical retrieval on a
    miss (the production remedy for typo'd surfaces; see
    :class:`FuzzyCandidateGenerator` for the retrieval itself)."""

    name = "fuzzy"

    def __init__(
        self,
        kb: HeteroGraph,
        index: Optional[InvertedIndex] = None,
        embedder: Optional[HashingNgramEmbedder] = None,
        top_k: int = 20,
        min_similarity: float = 0.25,
        max_edit_ratio: float = 0.6,
    ):
        super().__init__(kb, index=index, embedder=embedder)
        self.top_k = top_k
        self._fuzzy = FuzzyCandidateGenerator(
            kb,
            index=self.index,
            embedder=embedder,
            min_similarity=min_similarity,
            max_edit_ratio=max_edit_ratio,
        )

    def _fallback(self, surface: str) -> List[int]:
        return self._fuzzy.candidate_ids(surface, top_k=self.top_k)
