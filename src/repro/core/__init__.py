"""ED-GNN core: the paper's primary contribution.

Query-graph construction with semantic augmentation (Section 3.1),
semantic-driven negative sampling (Section 3.2), the Siamese model and
matching modules (Section 2.2), the trainer (Section 4.2), the end-to-end
pipeline, and the GNN-Explainer (Section 4.4).
"""

from .candidates import (  # noqa: F401
    Candidate,
    ExactCandidateGenerator,
    FuzzyCandidateGenerator,
    FuzzyFallbackCandidateGenerator,
)
from .explainer import EdgeAttribution, Explanation, GNNExplainer  # noqa: F401
from .matching import (  # noqa: F401
    BilinearMatcher,
    DotProductMatcher,
    Matcher,
    MLPMatcher,
    make_matcher,
)
from .model import (  # noqa: F401
    EDGNN,
    ENCODER_BUILDERS,
    VARIANTS,
    ModelConfig,
    build_encoder,
    encoder_names,
    register_encoder,
)
from .negative_sampling import (  # noqa: F401
    ConstantSchedule,
    CurriculumSchedule,
    HardNegativePool,
    NegativeSampler,
    SemanticNegativeSampler,
    UniformNegativeSampler,
)
from .pipeline import EDPipeline, Prediction  # noqa: F401
from .serialization import CHECKPOINT_FILES, load_pipeline, save_pipeline  # noqa: F401
from .query_graph import (  # noqa: F401
    RELATED,
    QueryGraph,
    build_query_graph,
    build_query_graphs,
    related_relation_id,
    with_related_relation,
)
from .trainer import (  # noqa: F401
    EDGNNTrainer,
    EpochStats,
    PairRecord,
    SplitPack,
    TrainConfig,
    TrainResult,
)

__all__ = [
    "QueryGraph",
    "build_query_graph",
    "build_query_graphs",
    "with_related_relation",
    "related_relation_id",
    "RELATED",
    "Matcher",
    "DotProductMatcher",
    "MLPMatcher",
    "BilinearMatcher",
    "make_matcher",
    "UniformNegativeSampler",
    "SemanticNegativeSampler",
    "NegativeSampler",
    "CurriculumSchedule",
    "ConstantSchedule",
    "HardNegativePool",
    "EDGNN",
    "ModelConfig",
    "VARIANTS",
    "ENCODER_BUILDERS",
    "build_encoder",
    "encoder_names",
    "register_encoder",
    "EDGNNTrainer",
    "TrainConfig",
    "TrainResult",
    "EpochStats",
    "PairRecord",
    "SplitPack",
    "EDPipeline",
    "Prediction",
    "save_pipeline",
    "load_pipeline",
    "CHECKPOINT_FILES",
    "GNNExplainer",
    "Explanation",
    "EdgeAttribution",
    "FuzzyCandidateGenerator",
    "Candidate",
    "ExactCandidateGenerator",
    "FuzzyFallbackCandidateGenerator",
]
