"""Training loop for ED-GNN (Section 2.2 "Model Training" + Section 4.2).

Defaults mirror the paper: Adam with learning rate 1e-3 and weight decay
1e-3, dropout 0.5, 100 epochs with early stopping at patience 30, and
Eq. 5's negative-sampling cross entropy.

The Siamese structure is realised by two forward passes through the same
encoder per epoch: one over ``G_ref`` (compiled once), one over the
disjoint union of all training query graphs (batched and compiled once —
the query graphs are fixed, only the parameters move).  Validation/test
pairs follow the Section 4.1 protocol: each positive (mention, gold) pair
is accompanied by hard negative pairs from the semantic sampler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Adam, Tensor, clip_grad_norm, no_grad
from ..eval.metrics import PRF, classify_logits, precision_recall_f1
from ..graph.batch import batch_graphs
from ..graph.hetero import HeteroGraph
from .model import EDGNN
from .negative_sampling import CurriculumSchedule, EvaluationProtocol, NegativeSampler
from .query_graph import QueryGraph


@dataclass
class TrainConfig:
    """Section 4.2 defaults."""

    epochs: int = 100
    patience: int = 30
    lr: float = 1e-3
    weight_decay: float = 1e-3
    negatives_per_positive: int = 4
    eval_negatives: int = 1  # "the same number of negative node pairs"
    grad_clip: float = 5.0
    threshold: float = 0.5
    use_hard_negatives: bool = True
    curriculum: CurriculumSchedule = field(default_factory=CurriculumSchedule)
    #: ``sim_st`` metric for hard-negative ranking — "star_ged" (paper),
    #: "mcs", "wl", "hungarian_ged" or "jaccard" (Section 3.2 survey).
    structural_metric: str = "star_ged"
    seed: int = 0
    verbose: bool = False


@dataclass
class PairRecord:
    """One evaluated pair with the metadata error analysis needs."""

    query_graph: QueryGraph
    ref_entity: int
    label: int
    logit: float = 0.0
    prediction: bool = False


@dataclass
class SplitPack:
    """A compiled split: union of query graphs + flat evaluation pairs."""

    query_graphs: List[QueryGraph]
    union: HeteroGraph
    offsets: List[int]
    compiled: object
    features: np.ndarray
    pairs: List[PairRecord]
    mention_union_ids: np.ndarray  # per pair
    ref_ids: np.ndarray  # per pair
    labels: np.ndarray  # per pair


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    val: PRF


@dataclass
class TrainResult:
    best_epoch: int
    best_val: PRF
    test: PRF
    history: List[EpochStats]
    test_records: List[PairRecord]

    @property
    def convergence_curve(self) -> List[Tuple[int, float]]:
        """(epoch, validation F1) series — Figure 4(b)."""
        return [(s.epoch, s.val.f1) for s in self.history]


class EDGNNTrainer:
    """Trains one :class:`EDGNN` on one dataset's query graphs."""

    def __init__(
        self,
        model: EDGNN,
        ref_graph: HeteroGraph,
        train_graphs: Sequence[QueryGraph],
        val_graphs: Sequence[QueryGraph],
        test_graphs: Sequence[QueryGraph],
        config: Optional[TrainConfig] = None,
    ):
        if ref_graph.features is None:
            raise ValueError("ref_graph needs features (see node_features_for_graph)")
        self.model = model
        self.ref_graph = ref_graph
        self.config = config or TrainConfig()
        self.rng = np.random.default_rng(self.config.seed)

        self.ref_compiled = model.compile(ref_graph)
        self.ref_features = ref_graph.features

        # Training-time negative sampler (Eq. 5 / Section 3.2).
        self.sampler = NegativeSampler(
            ref_graph,
            self.rng,
            initial_embeddings=ref_graph.features,
            use_hard_negatives=self.config.use_hard_negatives,
            schedule=self.config.curriculum,
            structural_metric=self.config.structural_metric,
        )
        # Evaluation negatives always follow the fixed Section 4.1
        # protocol, regardless of the training sampler, so all systems
        # with the same seed classify identical pairs.
        self._protocol = EvaluationProtocol(
            ref_graph, self.config.eval_negatives, self.config.seed
        )

        self.train_pack = self._pack(list(train_graphs), with_eval_pairs=False)
        self.val_pack = self._pack(list(val_graphs), with_eval_pairs=True)
        self.test_pack = self._pack(list(test_graphs), with_eval_pairs=True)

        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )

    # ------------------------------------------------------------------
    def _pack(self, graphs: List[QueryGraph], with_eval_pairs: bool) -> SplitPack:
        if not graphs:
            raise ValueError("split has no query graphs")
        union, offsets = batch_graphs([qg.graph for qg in graphs])
        compiled = self.model.compile(union)
        features = union.features
        assert features is not None

        pairs: List[PairRecord] = []
        if with_eval_pairs:
            for i, qg in enumerate(graphs):
                if qg.gold_entity is None:
                    raise ValueError("evaluation query graph lacks a gold entity")
                pairs.append(PairRecord(qg, qg.gold_entity, 1))
                for neg in self._protocol.negatives(qg.gold_entity):
                    pairs.append(PairRecord(qg, int(neg), 0))

        mention_ids: List[int] = []
        ref_ids: List[int] = []
        labels: List[int] = []
        if with_eval_pairs:
            index_of = {id(qg): i for i, qg in enumerate(graphs)}
            for record in pairs:
                g_idx = index_of[id(record.query_graph)]
                mention_ids.append(offsets[g_idx] + record.query_graph.mention_node)
                ref_ids.append(record.ref_entity)
                labels.append(record.label)

        return SplitPack(
            query_graphs=graphs,
            union=union,
            offsets=offsets,
            compiled=compiled,
            features=features,
            pairs=pairs,
            mention_union_ids=np.asarray(mention_ids, dtype=np.int64),
            ref_ids=np.asarray(ref_ids, dtype=np.int64),
            labels=np.asarray(labels, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def _training_pairs(self, epoch: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(mention union ids, ref ids, labels) for one epoch, with fresh
        negatives per Eq. 5."""
        pack = self.train_pack
        k = self.config.negatives_per_positive
        mention_ids: List[int] = []
        ref_ids: List[int] = []
        labels: List[int] = []
        for i, qg in enumerate(pack.query_graphs):
            if qg.gold_entity is None:
                continue
            mention = pack.offsets[i] + qg.mention_node
            mention_ids.append(mention)
            ref_ids.append(qg.gold_entity)
            labels.append(1)
            for neg in self.sampler.sample(qg.gold_entity, k, epoch):
                mention_ids.append(mention)
                ref_ids.append(int(neg))
                labels.append(0)
        return (
            np.asarray(mention_ids, dtype=np.int64),
            np.asarray(ref_ids, dtype=np.int64),
            np.asarray(labels, dtype=np.float32),
        )

    def train_epoch(self, epoch: int) -> float:
        self.model.train()
        self.optimizer.zero_grad()
        x_ref = Tensor(self.ref_features)
        x_qry = Tensor(self.train_pack.features)
        h_ref = self.model.embed(self.ref_compiled, x_ref)
        h_qry = self.model.embed(self.train_pack.compiled, x_qry)
        mention_ids, ref_ids, labels = self._training_pairs(epoch)
        logits = self.model.score_pairs(
            h_qry, mention_ids, h_ref, ref_ids, x_query=x_qry, x_ref=x_ref
        )
        loss = self.model.pair_loss(
            logits, labels, pos_weight=float(self.config.negatives_per_positive)
        )
        loss.backward()
        clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return float(loss.item())

    def evaluate(self, pack: SplitPack, record: bool = False) -> Tuple[PRF, List[PairRecord]]:
        self.model.eval()
        with no_grad():
            x_ref = Tensor(self.ref_features)
            x_qry = Tensor(pack.features)
            h_ref = self.model.embed(self.ref_compiled, x_ref)
            h_qry = self.model.embed(pack.compiled, x_qry)
            logits = self.model.score_pairs(
                h_qry,
                pack.mention_union_ids,
                h_ref,
                pack.ref_ids,
                x_query=x_qry,
                x_ref=x_ref,
            ).data
        predictions = classify_logits(logits, self.config.threshold)
        prf = precision_recall_f1(pack.labels.astype(bool), predictions)
        records: List[PairRecord] = []
        if record:
            for pair, logit, pred in zip(pack.pairs, logits.tolist(), predictions.tolist()):
                pair.logit = float(logit)
                pair.prediction = bool(pred)
                records.append(pair)
        return prf, records

    # ------------------------------------------------------------------
    def fit(self) -> TrainResult:
        best_val = PRF(0.0, 0.0, 0.0)
        best_epoch = -1
        best_state = self.model.state_dict()
        history: List[EpochStats] = []
        stale = 0

        for epoch in range(self.config.epochs):
            loss = self.train_epoch(epoch)
            val, _ = self.evaluate(self.val_pack)
            history.append(EpochStats(epoch, loss, val))
            if self.config.verbose:
                print(f"epoch {epoch:3d} loss {loss:.4f} val {val}")
            if val.f1 > best_val.f1:
                best_val = val
                best_epoch = epoch
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= self.config.patience:
                    break

        self.model.load_state_dict(best_state)
        test, records = self.evaluate(self.test_pack, record=True)
        return TrainResult(
            best_epoch=best_epoch,
            best_val=best_val,
            test=test,
            history=history,
            test_records=records,
        )
